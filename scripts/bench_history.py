#!/usr/bin/env python
"""Append the current ``BENCH_*.json`` numbers to ``BENCH_history.jsonl``.

Run after regenerating any benchmark file (the CI bench jobs do)::

    PYTHONPATH=src python scripts/bench_history.py [--only BENCH_obs.json]

Skips the append when it would exactly duplicate the latest entry
(same sha, same numbers) unless ``--force`` is given.  Compare the two
newest entries with ``repro bench-diff``.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.benchtrack import HISTORY_NAME, append_history  # noqa: E402


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repo root holding the BENCH_*.json files",
    )
    ap.add_argument(
        "--history", default=None,
        help=f"history file (default: ROOT/{HISTORY_NAME})",
    )
    ap.add_argument(
        "--only", action="append", default=None, metavar="FILE",
        help="restrict to the named BENCH_*.json file (repeatable)",
    )
    ap.add_argument("--sha", default=None, help="override the recorded sha")
    ap.add_argument(
        "--force", action="store_true",
        help="append even if identical to the latest entry",
    )
    args = ap.parse_args()
    entry = append_history(
        args.root,
        history_path=args.history,
        only=args.only,
        sha=args.sha,
        force=args.force,
    )
    history = args.history or os.path.join(args.root, HISTORY_NAME)
    if entry is None:
        print(f"bench-history: no new numbers to append to {history}")
        return 0
    n = sum(len(v) for v in entry["benchmarks"].values())
    print(
        f"bench-history: appended {entry['sha'][:12]} "
        f"({len(entry['benchmarks'])} benchmark file(s), {n} metrics) "
        f"to {history}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
