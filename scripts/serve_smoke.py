#!/usr/bin/env python
"""CI smoke for ``repro serve``: start the real server process, drive
three concurrent editing sessions through the JSONL protocol — checks
plus ``run`` executions under the codegen backend — and assert a clean
shutdown.

Exits non-zero (with a diagnostic on stderr) on any protocol error,
non-incremental edit, stale codegen result after an edit, cross-session
leak, or unclean server exit.

Run from the repo root::

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import threading

from repro.serve import ServeClient

SRC = """\
class app {
  class A {
    int x;
    int get() { return x; }
  }
  class B extends A {
    int twice() { return get() + get(); }
  }
}
"""

MAIN = """\
class Main {
  int main() {
    app.B b = new app.B();
    b.x = 20;
    return b.twice();
  }
}
"""

EDITS_PER_SESSION = 4


def drive(host: str, port: int, name: str, marker: int, errors: list) -> None:
    client = ServeClient(host, port)
    try:
        src = SRC.replace("class app {", f"class app{marker} {{") + \
            MAIN.replace("app.", f"app{marker}.")
        resp = client.request("open", session=name, source=src,
                              file=f"{name}.jns")
        assert resp["ok"], resp
        resp = client.request("check", session=name)
        assert resp["ok"] and resp["diagnostics"] == [], resp
        # run under the codegen backend: twice() = 2 * (x=20) on a warm,
        # kept-alive interpreter
        resp = client.request("run", session=name)
        assert resp["ok"] and resp["backend"] == "codegen", resp
        assert resp["result"] == 40, resp
        for i in range(1, EDITS_PER_SESSION + 1):
            edited = src.replace("return x;", f"return x + {i};")
            resp = client.request("edit", session=name, source=edited)
            assert resp["ok"], resp
            assert resp["stats"]["strategy"] == "incremental", resp
            assert resp["stats"]["dirty"] == [f"app{marker}.A"], resp
            resp = client.request("check", session=name)
            assert resp["ok"], resp
            acct = resp["stats"]["check"]
            assert acct["recomputed"] >= 1, resp
            # the edit must evict the cached emitted closures: the same
            # warm interpreter now computes 2 * (20 + i), never stale 40
            resp = client.request("run", session=name)
            assert resp["ok"] and resp["backend"] == "codegen", resp
            assert resp["result"] == 40 + 2 * i, resp
        # a broken edit stays inside this session
        resp = client.request(
            "edit", session=name,
            source=src.replace("return x;", "return nosuch;"),
        )
        assert resp["ok"], resp
        resp = client.request("check", session=name)
        assert not resp["ok"] and resp["diagnostics"], resp
        # a broken program refuses to run instead of executing stale code
        resp = client.request("run", session=name)
        assert not resp["ok"] and "check error" in resp["error"], resp
        resp = client.request("close", session=name)
        assert resp["ok"], resp
    except Exception as exc:
        errors.append(f"{name}: {type(exc).__name__}: {exc}")
    finally:
        client.close()


def main() -> int:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        ready_line = proc.stdout.readline()
        ready = json.loads(ready_line)
        assert ready.get("event") == "ready", ready
        host, port = ready["host"], ready["port"]
        print(f"server ready on {host}:{port}")

        errors: list = []
        threads = [
            threading.Thread(
                target=drive, args=(host, port, f"sess{i}", i, errors)
            )
            for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        alive = [t.name for t in threads if t.is_alive()]
        if alive:
            errors.append(f"threads still alive: {alive}")
        if errors:
            for e in errors:
                print(f"FAIL {e}", file=sys.stderr)
            return 1

        control = ServeClient(host, port)
        stats = control.request("stats")
        assert stats["ok"], stats
        assert stats["sessions"] == [], stats  # every session closed
        print(f"requests served: {stats['requests']}")
        resp = control.request("shutdown")
        assert resp["ok"], resp
        control.close()

        code = proc.wait(timeout=15)
        if code != 0:
            print(f"FAIL server exited {code}", file=sys.stderr)
            print(proc.stderr.read(), file=sys.stderr)
            return 1
        print("clean shutdown")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    raise SystemExit(main())
