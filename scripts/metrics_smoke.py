#!/usr/bin/env python
"""CI smoke for the metrics exposition path: start the real ``repro
serve`` process with ``--metrics-port``, drive an editing session, then
scrape the HTTP endpoint and validate the Prometheus text format with
:func:`repro.telemetry.validate_exposition`.

Also checks the ``metrics`` op snapshot agrees with the scrape (same
request counts) and that every response carries a ``trace`` field.

Exits non-zero (with a diagnostic on stderr) on any problem.

Run from the repo root::

    PYTHONPATH=src python scripts/metrics_smoke.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import urllib.request

from repro.serve import ServeClient
from repro.telemetry import validate_exposition

SRC = """\
class app {
  class A {
    int x;
    int get() { return x; }
  }
}
"""


def fail(msg: str) -> int:
    print(f"FAIL {msg}", file=sys.stderr)
    return 1


def main() -> int:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--metrics-port", "0", "--seed", "7",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        ready = json.loads(proc.stdout.readline())
        assert ready.get("event") == "ready", ready
        host, port = ready["host"], ready["port"]
        metrics_port = ready.get("metrics_port")
        if not metrics_port:
            return fail(f"no metrics_port on ready line: {ready}")
        print(f"server ready on {host}:{port}, metrics on :{metrics_port}")

        client = ServeClient(host, port)
        traces = []
        for op, kw in [
            ("open", dict(session="s", source=SRC, file="app.jns")),
            ("check", dict(session="s")),
            ("edit", dict(session="s",
                          source=SRC.replace("return x;", "return x + 1;"))),
            ("check", dict(session="s")),
        ]:
            resp = client.request(op, **kw)
            assert resp["ok"], resp
            traces.append(resp.get("trace", ""))
        if not all(t.startswith("00-") for t in traces):
            return fail(f"missing/malformed trace fields: {traces}")
        if len(set(traces)) != len(traces):
            return fail(f"trace contexts not unique per request: {traces}")

        url = f"http://{host}:{metrics_port}/metrics"
        with urllib.request.urlopen(url, timeout=10) as r:
            assert r.status == 200, r.status
            ctype = r.headers["Content-Type"]
            text = r.read().decode()
        if not ctype.startswith("text/plain"):
            return fail(f"wrong content type {ctype!r}")
        problems = validate_exposition(text)
        if problems:
            for p in problems:
                print(f"  exposition problem: {p}", file=sys.stderr)
            return fail(f"{len(problems)} exposition problems")
        for needle in (
            "# TYPE serve_requests_total counter",
            'serve_requests_total{op="check",outcome="ok"} 2',
            'serve_requests_total{op="edit",outcome="ok"} 1',
            "# TYPE serve_request_seconds histogram",
            'repro_query_cache_misses{session="s"}',
        ):
            if needle not in text:
                return fail(f"scrape missing {needle!r}")
        print(f"scrape ok: {len(text.splitlines())} lines, 0 problems")

        # The metrics op must agree with the HTTP scrape.
        snap = client.request("metrics")
        assert snap["ok"], snap
        op_check = [
            c for c in snap["metrics"]["counters"]
            if c["name"] == "serve_requests_total"
            and c["labels"].get("op") == "check"
        ]
        if not op_check or op_check[0]["value"] != 2:
            return fail(f"metrics op disagrees with scrape: {op_check}")

        resp = client.request("shutdown")
        assert resp["ok"], resp
        client.close()
        code = proc.wait(timeout=15)
        if code != 0:
            print(proc.stderr.read(), file=sys.stderr)
            return fail(f"server exited {code}")
        print("clean shutdown")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    raise SystemExit(main())
