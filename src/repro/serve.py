"""``repro serve`` — a long-lived check service over a local socket.

The batch pipeline re-parses, re-resolves, and re-checks the whole
program on every invocation; an editor or test harness that checks after
each keystroke pays the cold cost every time.  This module keeps the
warm state alive instead: one :class:`~repro.lang.incremental.IncrementalChecker`
per *session*, held in a long-lived process, so an edit re-checks only
the classes whose interface or bodies actually changed (the red/green
engine under ``lang/queries.py`` revalidates the rest).

Wire protocol — JSON Lines over a local TCP socket
--------------------------------------------------

One JSON object per line in each direction; every request gets exactly
one response line.  Requests carry ``op`` plus op-specific fields, and
an optional ``id`` that is echoed verbatim in the response (clients
pipelining requests over one connection match responses by it).

========  =============================  =====================================
op        request fields                 response fields (beyond ``ok``/``id``)
========  =============================  =====================================
ping      —                              ``pong: true``
open      ``session, source,             ``session``, ``stats`` (build stats)
          file?, strict?``
edit      ``session, source``            ``stats`` (strategy/reason/dirty/ms)
check     ``session``                    ``diagnostics`` (list of diagnostic
                                         dicts), ``stats`` (incremental
                                         accounting), ``ok`` = no errors
explain   ``session, query``             ``explain`` (the ``repro explain
                                         --json`` payload)
stats     ``session?``                   per-session or service-wide stats
close     ``session``                    —
shutdown  —                              stops the server after responding
========  =============================  =====================================

Error responses are ``{"ok": false, "error": "..."}`` with the request
``id`` echoed; a malformed line (bad JSON, no ``op``) also gets an error
response rather than dropping the connection.

Sessions are created by ``open``, keyed by a client-chosen name, and
serialized per-session by a lock (two clients editing one session
interleave whole operations, never partial state).  A reaper thread
evicts sessions idle longer than ``--idle-timeout`` seconds.  The
``explain`` op deliberately runs on a *fresh* table built from the
session's current source (see :mod:`repro.lang.explain`) so the
provenance capture never wipes the session's warm incremental state.

Observability: every request bumps the ``serve.request`` counter (when
tracing is enabled), alongside the ``incr.dirty`` / ``incr.revalidated``
/ ``incr.reused`` counters the incremental checker itself maintains.
"""

from __future__ import annotations

import json
import socket
import socketserver
import sys
import threading
import time
from typing import Any, Dict, Optional

from .lang.incremental import IncrementalChecker
from .obs import TRACER


class _Session:
    """One named editing session: the warm incremental checker plus the
    lock that serializes operations against it."""

    __slots__ = ("name", "checker", "lock", "last_used")

    def __init__(self, name: str, checker: IncrementalChecker) -> None:
        self.name = name
        self.checker = checker
        self.lock = threading.Lock()
        self.last_used = time.monotonic()


class CheckService:
    """The op dispatcher: session table, lifecycle, and one
    ``handle(request) -> response`` entry point shared by every client
    connection.  Transport-free, so tests can drive it directly."""

    def __init__(self, idle_timeout: float = 300.0) -> None:
        self.idle_timeout = idle_timeout
        self.sessions: Dict[str, _Session] = {}
        self._sessions_lock = threading.Lock()
        self.requests = 0
        self.started = time.monotonic()
        self.shutdown_requested = threading.Event()

    # ------------------------------------------------------------------
    # session table
    # ------------------------------------------------------------------

    def _get(self, name: Any) -> _Session:
        if not isinstance(name, str) or not name:
            raise KeyError("missing session name")
        with self._sessions_lock:
            sess = self.sessions.get(name)
        if sess is None:
            raise KeyError(f"no such session {name!r} (open it first)")
        sess.last_used = time.monotonic()
        return sess

    def reap_idle(self, now: Optional[float] = None) -> int:
        """Evict sessions idle longer than the timeout; returns how many
        were dropped (the reaper thread calls this periodically)."""
        if now is None:
            now = time.monotonic()
        dropped = 0
        with self._sessions_lock:
            for name in [
                n for n, s in self.sessions.items()
                if now - s.last_used > self.idle_timeout
            ]:
                del self.sessions[name]
                dropped += 1
        return dropped

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------

    def handle(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one request object to its op handler; every failure
        mode becomes an error *response* (the connection survives)."""
        self.requests += 1
        if TRACER.enabled:
            TRACER.count("serve.request")
        rid = req.get("id")
        op = req.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            resp = {"ok": False, "error": f"unknown op {op!r}"}
        else:
            try:
                resp = handler(req)
            except KeyError as exc:
                resp = {"ok": False, "error": str(exc.args[0])}
            except Exception as exc:  # never kill the connection
                resp = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        if rid is not None:
            resp["id"] = rid
        return resp

    def _op_ping(self, req: Dict[str, Any]) -> Dict[str, Any]:
        return {"ok": True, "pong": True}

    def _op_open(self, req: Dict[str, Any]) -> Dict[str, Any]:
        name = req.get("session")
        if not isinstance(name, str) or not name:
            raise KeyError("open requires a non-empty 'session' name")
        source = req.get("source")
        if not isinstance(source, str):
            raise KeyError("open requires 'source' (the program text)")
        checker = IncrementalChecker(
            source,
            file=req.get("file") or f"<{name}>",
            strict_sharing=bool(req.get("strict", False)),
        )
        sess = _Session(name, checker)
        with self._sessions_lock:
            self.sessions[name] = sess  # re-open replaces
        return {"ok": True, "session": name, "stats": checker.last_stats}

    def _op_edit(self, req: Dict[str, Any]) -> Dict[str, Any]:
        sess = self._get(req.get("session"))
        source = req.get("source")
        if not isinstance(source, str):
            raise KeyError("edit requires 'source' (the full new text)")
        with sess.lock:
            stats = sess.checker.apply_edit(source)
        return {"ok": True, "stats": stats}

    def _op_check(self, req: Dict[str, Any]) -> Dict[str, Any]:
        sess = self._get(req.get("session"))
        with sess.lock:
            sink = sess.checker.check()
            stats = sess.checker.last_stats
        return {
            "ok": not sink.has_errors,
            "diagnostics": [d.to_dict() for d in sink.diagnostics],
            "stats": stats,
        }

    def _op_explain(self, req: Dict[str, Any]) -> Dict[str, Any]:
        from .lang.classtable import JnsError
        from .lang.explain import ExplainError, run_explain

        sess = self._get(req.get("session"))
        query = req.get("query")
        if not isinstance(query, str):
            raise KeyError("explain requires 'query'")
        with sess.lock:
            source = sess.checker.source
            file = sess.checker.file
        try:
            result = run_explain(source, file, query)
        except (ExplainError, JnsError) as exc:
            return {"ok": False, "error": str(exc)}
        return {"ok": True, "explain": result.payload}

    def _op_stats(self, req: Dict[str, Any]) -> Dict[str, Any]:
        name = req.get("session")
        if name is not None:
            sess = self._get(name)
            with sess.lock:
                return {
                    "ok": True,
                    "session": sess.name,
                    "stats": sess.checker.last_stats,
                }
        with self._sessions_lock:
            names = sorted(self.sessions)
        return {
            "ok": True,
            "sessions": names,
            "requests": self.requests,
            "uptime_s": time.monotonic() - self.started,
        }

    def _op_close(self, req: Dict[str, Any]) -> Dict[str, Any]:
        name = req.get("session")
        with self._sessions_lock:
            existed = self.sessions.pop(name, None) is not None
        if not existed:
            raise KeyError(f"no such session {name!r} (open it first)")
        return {"ok": True, "session": name}

    def _op_shutdown(self, req: Dict[str, Any]) -> Dict[str, Any]:
        self.shutdown_requested.set()
        return {"ok": True, "shutdown": True}


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        service: CheckService = self.server.service  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                req = json.loads(line)
                if not isinstance(req, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                resp = {"ok": False, "error": f"bad request line: {exc}"}
            else:
                resp = service.handle(req)
            try:
                self.wfile.write(
                    (json.dumps(resp, sort_keys=True) + "\n").encode("utf-8")
                )
                self.wfile.flush()
            except OSError:
                return  # client went away mid-response
            if service.shutdown_requested.is_set():
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
                return


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class ServeHandle:
    """A running service bound to a socket — tests start one in-process
    via :func:`start_server` and tear it down with :meth:`stop`."""

    def __init__(self, server: _Server, service: CheckService,
                 thread: threading.Thread, reaper: threading.Thread) -> None:
        self.server = server
        self.service = service
        self.thread = thread
        self.reaper = reaper
        self.host, self.port = server.server_address[:2]

    def stop(self) -> None:
        self.service.shutdown_requested.set()
        self.server.shutdown()
        self.server.server_close()
        self.thread.join(timeout=5)


def start_server(
    host: str = "127.0.0.1",
    port: int = 0,
    idle_timeout: float = 300.0,
) -> ServeHandle:
    """Bind, start the accept loop and the idle reaper (both daemon
    threads), and return a handle exposing the chosen port (``port=0``
    binds an ephemeral one)."""
    service = CheckService(idle_timeout=idle_timeout)
    server = _Server((host, port), _Handler)
    server.service = service  # type: ignore[attr-defined]
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()

    def _reap() -> None:
        interval = max(0.05, min(idle_timeout / 4.0, 30.0))
        while not service.shutdown_requested.wait(interval):
            service.reap_idle()

    reaper = threading.Thread(target=_reap, name="repro-serve-reaper",
                              daemon=True)
    reaper.start()
    return ServeHandle(server, service, thread, reaper)


class ServeClient:
    """A minimal synchronous JSONL client (used by the smoke script and
    the tests; editor integrations speak the same five-line protocol)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self.sock.makefile("rb")
        self._next_id = 0
        self._lock = threading.Lock()

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one op and block for its response; ids are checked so a
        protocol desync fails loudly instead of mismatching results."""
        with self._lock:
            self._next_id += 1
            rid = self._next_id
            req = {"id": rid, "op": op}
            req.update(fields)
            self.sock.sendall((json.dumps(req) + "\n").encode("utf-8"))
            raw = self._rfile.readline()
            if not raw:
                raise ConnectionError("server closed the connection")
            resp = json.loads(raw.decode("utf-8"))
            if resp.get("id") != rid:
                raise ConnectionError(
                    f"response id {resp.get('id')!r} != request id {rid!r}"
                )
            return resp

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self.sock.close()


def main(args) -> int:
    """``repro serve`` entry point: bind, print the ready line (JSON, so
    wrappers can scrape the ephemeral port), serve until a ``shutdown``
    op or Ctrl-C."""
    handle = start_server(
        host=args.host, port=args.port, idle_timeout=args.idle_timeout
    )
    print(
        json.dumps(
            {"event": "ready", "host": handle.host, "port": handle.port}
        ),
        flush=True,
    )
    try:
        while not handle.service.shutdown_requested.wait(0.2):
            pass
    except KeyboardInterrupt:
        pass
    finally:
        handle.stop()
        print(
            json.dumps(
                {
                    "event": "stopped",
                    "requests": handle.service.requests,
                }
            ),
            file=sys.stderr,
        )
    return 0
