"""``repro serve`` — a long-lived check service over a local socket.

The batch pipeline re-parses, re-resolves, and re-checks the whole
program on every invocation; an editor or test harness that checks after
each keystroke pays the cold cost every time.  This module keeps the
warm state alive instead: one :class:`~repro.lang.incremental.IncrementalChecker`
per *session*, held in a long-lived process, so an edit re-checks only
the classes whose interface or bodies actually changed (the red/green
engine under ``lang/queries.py`` revalidates the rest).

Wire protocol — JSON Lines over a local TCP socket
--------------------------------------------------

One JSON object per line in each direction; every request gets exactly
one response line.  Requests carry ``op`` plus op-specific fields, and
an optional ``id`` that is echoed verbatim in the response (clients
pipelining requests over one connection match responses by it).

========  =============================  =====================================
op        request fields                 response fields (beyond ``ok``/``id``)
========  =============================  =====================================
ping      —                              ``pong: true``
open      ``session, source,             ``session``, ``stats`` (build stats)
          file?, strict?``
edit      ``session, source``            ``stats`` (strategy/reason/dirty/ms)
check     ``session``                    ``diagnostics`` (list of diagnostic
                                         dicts), ``stats`` (incremental
                                         accounting), ``ok`` = no errors
run       ``session, entry?,             ``result``, ``output`` (printed
          backend?``                     lines), ``backend`` (resolved name)
profile   ``session, entry?,             ``profile`` (the per-line attribution
          backend?, args?``              table, ``repro profile --json``
                                         shape), ``backend``
explain   ``session, query``             ``explain`` (the ``repro explain
                                         --json`` payload)
stats     ``session?``                   per-session or service-wide stats
metrics   ``exposition?``                cumulative labeled-metrics snapshot
                                         (+ Prometheus text when requested)
close     ``session``                    —
shutdown  —                              stops the server after responding
========  =============================  =====================================

Every response additionally carries ``trace``: the request's W3C-style
``traceparent`` (deterministic per server seed, or a child of the
client's inbound ``traceparent`` field when one was supplied).

Error responses are ``{"ok": false, "error": "..."}`` with the request
``id`` echoed; a malformed line (bad JSON, no ``op``) also gets an error
response rather than dropping the connection.

Sessions are created by ``open``, keyed by a client-chosen name, and
serialized per-session by a lock (two clients editing one session
interleave whole operations, never partial state).  A reaper thread
evicts sessions idle longer than ``--idle-timeout`` seconds.  The
``explain`` op deliberately runs on a *fresh* table built from the
session's current source (see :mod:`repro.lang.explain`) so the
provenance capture never wipes the session's warm incremental state.

Observability (request-scoped — see :mod:`repro.telemetry`): every
request gets a deterministic :class:`~repro.telemetry.TraceContext`
(drawn from a seeded ``Rng``, or adopted from an inbound ``traceparent``
field) whose W3C-style rendering is echoed as ``trace`` in the response;
when tracing is enabled each request runs under a ``serve.request`` span
tagged with the op / session / trace ids, the ``serve.request.{ok,error}``
counters bump, and per-op latencies land in ``serve.latency.<op>``
histograms.  Independently of the tracer, a labeled
:class:`~repro.telemetry.MetricsRegistry` is always on: per-op
request counters and latency histograms (``run`` and ``profile``
requests are additionally labeled with the resolved ``backend=``, so
per-backend rates and latencies stay separable), session gauges, and
per-session
query-cache gauges (hits / misses / green revalidations) refreshed after
every ``check``.  The ``metrics`` op returns the cumulative snapshot
(scrapes never reset state), and ``repro serve --metrics-port`` exposes
the same registry in Prometheus text format over HTTP for scrapers and
``repro top``.
"""

from __future__ import annotations

import json
import socket
import socketserver
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional

from .chaos import Rng
from .lang.incremental import IncrementalChecker
from .obs import TRACER
from .telemetry import MetricsRegistry, TraceContext


class _Session:
    """One named editing session: the warm incremental checker plus the
    lock that serializes operations against it."""

    __slots__ = ("name", "checker", "lock", "last_used", "interps")

    def __init__(self, name: str, checker: IncrementalChecker) -> None:
        self.name = name
        self.checker = checker
        self.lock = threading.Lock()
        self.last_used = time.monotonic()
        #: per-backend interpreters for the ``run`` op, kept warm across
        #: edits — they subscribe to the session table's EditNotices, so
        #: an edit evicts their specialization/codegen caches in place
        self.interps: Dict[str, Any] = {}


class CheckService:
    """The op dispatcher: session table, lifecycle, and one
    ``handle(request) -> response`` entry point shared by every client
    connection.  Transport-free, so tests can drive it directly."""

    def __init__(self, idle_timeout: float = 300.0, seed: int = 0) -> None:
        self.idle_timeout = idle_timeout
        self.sessions: Dict[str, _Session] = {}
        self._sessions_lock = threading.Lock()
        self.requests = 0
        self.started = time.monotonic()
        self.shutdown_requested = threading.Event()
        #: always-on labeled metrics (cumulative; scraped, never reset)
        self.metrics = MetricsRegistry()
        #: deterministic per-request trace ids — a seeded stream, so a
        #: given (seed, request ordinal) always names the same trace
        self._trace_rng = Rng(seed).fork("serve.trace")
        self._trace_lock = threading.Lock()

    def _next_trace(self, req: Dict[str, Any]) -> TraceContext:
        """The request's trace context: adopt the client's inbound
        ``traceparent`` (propagation) or draw a fresh deterministic root
        from the service's seeded stream."""
        parent = req.get("traceparent")
        if isinstance(parent, str):
            try:
                return TraceContext.parse(parent).child("serve")
            except ValueError:
                pass  # malformed inbound context: fall through to a root
        with self._trace_lock:
            return TraceContext.from_rng(self._trace_rng)

    # ------------------------------------------------------------------
    # session table
    # ------------------------------------------------------------------

    def _get(self, name: Any) -> _Session:
        if not isinstance(name, str) or not name:
            raise KeyError("missing session name")
        with self._sessions_lock:
            sess = self.sessions.get(name)
        if sess is None:
            raise KeyError(f"no such session {name!r} (open it first)")
        sess.last_used = time.monotonic()
        return sess

    def reap_idle(self, now: Optional[float] = None) -> int:
        """Evict sessions idle longer than the timeout; returns how many
        were dropped (the reaper thread calls this periodically)."""
        if now is None:
            now = time.monotonic()
        dropped = 0
        with self._sessions_lock:
            for name in [
                n for n, s in self.sessions.items()
                if now - s.last_used > self.idle_timeout
            ]:
                del self.sessions[name]
                dropped += 1
            count = len(self.sessions)
        if dropped:
            self.metrics.inc("serve_sessions_reaped_total", dropped,
                             help="sessions evicted by the idle reaper")
            self.metrics.set_gauge("serve_sessions", count,
                                   help="live sessions")
        return dropped

    # ------------------------------------------------------------------
    # ops
    # ------------------------------------------------------------------

    def handle(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """Dispatch one request object to its op handler; every failure
        mode becomes an error *response* (the connection survives).

        Every request gets a trace context (echoed as ``trace`` in the
        response), a per-op latency observation, and an outcome counter;
        when tracing is enabled the dispatch runs under a
        ``serve.request`` span carrying the trace identity."""
        self.requests += 1
        rid = req.get("id")
        op = req.get("op")
        opname = op if isinstance(op, str) else "invalid"
        ctx = self._next_trace(req)
        session = req.get("session")
        span = (
            TRACER.span(
                "serve.request",
                op=opname,
                session=session if isinstance(session, str) else "",
                request=ctx.hex_span,
                trace_id=ctx.hex_trace,
                span_id=ctx.hex_span,
            )
            if TRACER.enabled
            else None
        )
        start = time.perf_counter()
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        try:
            if span is not None:
                span.__enter__()
            if handler is None:
                resp = {"ok": False, "error": f"unknown op {op!r}"}
            else:
                try:
                    resp = handler(req)
                except KeyError as exc:
                    resp = {"ok": False, "error": str(exc.args[0])}
                except Exception as exc:  # never kill the connection
                    resp = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        finally:
            if span is not None:
                span.__exit__(None, None, None)
        elapsed = time.perf_counter() - start
        # `check` answers ok=False for mere diagnostics; only a missing
        # handler or a raised error counts as a failed *request*.
        outcome = "error" if "error" in resp else "ok"
        labels: Dict[str, str] = {"op": opname, "outcome": outcome}
        if isinstance(resp.get("backend"), str):
            # `run` and `profile` answer with the resolved backend name;
            # labeling the request metrics by it keeps per-backend request
            # rates and latency separable (4 backends x 2 outcomes stays
            # far inside the per-family series cap)
            labels["backend"] = resp["backend"]
        self.metrics.inc("serve_requests_total",
                         help="serve requests by op and outcome", **labels)
        self.metrics.observe("serve_request_seconds", elapsed,
                             help="serve request latency by op", **labels)
        if TRACER.enabled:
            TRACER.count("serve.request")
            TRACER.count(f"serve.request.{outcome}")
            TRACER.observe(f"serve.latency.{opname}", elapsed * 1000.0)
        resp["trace"] = ctx.traceparent
        if rid is not None:
            resp["id"] = rid
        return resp

    def _op_ping(self, req: Dict[str, Any]) -> Dict[str, Any]:
        return {"ok": True, "pong": True}

    def _op_open(self, req: Dict[str, Any]) -> Dict[str, Any]:
        name = req.get("session")
        if not isinstance(name, str) or not name:
            raise KeyError("open requires a non-empty 'session' name")
        source = req.get("source")
        if not isinstance(source, str):
            raise KeyError("open requires 'source' (the program text)")
        checker = IncrementalChecker(
            source,
            file=req.get("file") or f"<{name}>",
            strict_sharing=bool(req.get("strict", False)),
        )
        sess = _Session(name, checker)
        with self._sessions_lock:
            self.sessions[name] = sess  # re-open replaces
            count = len(self.sessions)
        self.metrics.inc("serve_sessions_opened_total",
                         help="sessions opened since start")
        self.metrics.set_gauge("serve_sessions", count,
                               help="live sessions")
        return {"ok": True, "session": name, "stats": checker.last_stats}

    def _op_edit(self, req: Dict[str, Any]) -> Dict[str, Any]:
        sess = self._get(req.get("session"))
        source = req.get("source")
        if not isinstance(source, str):
            raise KeyError("edit requires 'source' (the full new text)")
        with sess.lock:
            stats = sess.checker.apply_edit(source)
        return {"ok": True, "stats": stats}

    def _op_check(self, req: Dict[str, Any]) -> Dict[str, Any]:
        sess = self._get(req.get("session"))
        with sess.lock:
            sink = sess.checker.check()
            stats = sess.checker.last_stats
            self._refresh_session_gauges(sess)
        return {
            "ok": not sink.has_errors,
            "diagnostics": [d.to_dict() for d in sink.diagnostics],
            "stats": stats,
        }

    def _op_run(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """Execute an entry point against the session's *current* program
        under a kept-warm interpreter.  The interpreter (and with it the
        codegen backend's emitted-closure cache) survives across ``run``
        calls; ``edit`` notices evict its per-table caches, so a run after
        an edit re-specializes against the new bodies — never stale ones."""
        from .errors import JnsError
        from .runtime.interp import BACKENDS, Interp

        sess = self._get(req.get("session"))
        entry = req.get("entry", "Main.main")
        if not isinstance(entry, str) or "." not in entry:
            raise KeyError("run requires 'entry' of the form Class.method")
        backend = req.get("backend", "codegen")
        if backend not in BACKENDS:
            raise KeyError(
                f"unknown backend {backend!r} (choices: {', '.join(BACKENDS)})"
            )
        with sess.lock:
            sink = sess.checker.check()
            if sink.has_errors:
                return {
                    "ok": False,
                    "error": f"program has {len(sink.errors)} check error(s)",
                }
            table = sess.checker.table
            interp = sess.interps.get(backend)
            if interp is None or interp.table is not table:
                # first run, or a from-scratch rebuild replaced the table
                interp = Interp(table, mode="jns", backend=backend)
                sess.interps[backend] = interp
            printed_before = len(interp.output)
            try:
                result = interp.run(entry)
            except JnsError as exc:
                return {
                    "ok": False,
                    "error": str(exc),
                    "output": interp.output[printed_before:],
                    "backend": interp.backend,
                }
            return {
                "ok": True,
                "result": result
                if isinstance(result, (int, float, bool, str, type(None)))
                else repr(result),
                "output": interp.output[printed_before:],
                "backend": interp.backend,
            }

    def _op_profile(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """Line-level profile of an entry point against the session's
        *current* source: the deterministic per-line event counters
        (statement hits, dispatches, view changes, mask checks) on the
        requested tier.  The profiler's counters are process-global, so
        :data:`repro.profiler.PROFILE_LOCK` serializes concurrent
        profile requests across sessions — they queue, never blend.
        Sampling is deliberately off here (a wall-clock sampler thread
        per request is the wrong shape for a shared service)."""
        from . import profiler
        from .errors import JnsError
        from .runtime.interp import BACKENDS

        sess = self._get(req.get("session"))
        entry = req.get("entry", "Main.main")
        if not isinstance(entry, str) or "." not in entry:
            raise KeyError("profile requires 'entry' of the form Class.method")
        backend = req.get("backend", "specialized")
        if backend not in BACKENDS:
            raise KeyError(
                f"unknown backend {backend!r} (choices: {', '.join(BACKENDS)})"
            )
        pargs = req.get("args", [])
        if not isinstance(pargs, list) or not all(
            isinstance(a, int) and not isinstance(a, bool) for a in pargs
        ):
            raise KeyError("profile 'args' must be a list of integers")
        with sess.lock:
            sink = sess.checker.check()
            if sink.has_errors:
                return {
                    "ok": False,
                    "error": f"program has {len(sink.errors)} check error(s)",
                }
            source = sess.checker.source
            file = sess.checker.file
        try:
            report = profiler.profile_source(
                source,
                file=file,
                entry=entry,
                args=tuple(pargs),
                det_backend=backend,
                sample=False,
            )
        except JnsError as exc:
            return {"ok": False, "error": str(exc)}
        return {"ok": True, "backend": backend, "profile": report.to_dict()}

    def _refresh_session_gauges(self, sess: _Session) -> None:
        """Publish the session's query-cache and incremental-accounting
        levels as labeled gauges (caller holds the session lock)."""
        m = self.metrics
        table = sess.checker.table
        if table is not None:
            cs = table.queries.stats()
            m.set_gauge("repro_query_cache_hits", cs.hits, session=sess.name,
                        help="query-cache hits per session")
            m.set_gauge("repro_query_cache_misses", cs.misses,
                        session=sess.name,
                        help="query-cache misses per session")
            m.set_gauge("repro_query_cache_revalidations", cs.revalidations,
                        session=sess.name,
                        help="green revalidations per session")
        acct = sess.checker.last_stats.get("check")
        if isinstance(acct, dict):
            for kind in ("recomputed", "revalidated", "reused"):
                if kind in acct:
                    m.set_gauge("repro_incr_check_classes", acct[kind],
                                session=sess.name, kind=kind,
                                help="incremental check accounting")

    def _op_explain(self, req: Dict[str, Any]) -> Dict[str, Any]:
        from .lang.classtable import JnsError
        from .lang.explain import ExplainError, run_explain

        sess = self._get(req.get("session"))
        query = req.get("query")
        if not isinstance(query, str):
            raise KeyError("explain requires 'query'")
        with sess.lock:
            source = sess.checker.source
            file = sess.checker.file
        try:
            result = run_explain(source, file, query)
        except (ExplainError, JnsError) as exc:
            return {"ok": False, "error": str(exc)}
        return {"ok": True, "explain": result.payload}

    def _op_stats(self, req: Dict[str, Any]) -> Dict[str, Any]:
        name = req.get("session")
        if name is not None:
            sess = self._get(name)
            with sess.lock:
                return {
                    "ok": True,
                    "session": sess.name,
                    "stats": sess.checker.last_stats,
                }
        with self._sessions_lock:
            names = sorted(self.sessions)
        return {
            "ok": True,
            "sessions": names,
            "requests": self.requests,
            "uptime_s": time.monotonic() - self.started,
        }

    def _op_close(self, req: Dict[str, Any]) -> Dict[str, Any]:
        name = req.get("session")
        with self._sessions_lock:
            existed = self.sessions.pop(name, None) is not None
            count = len(self.sessions)
        if not existed:
            raise KeyError(f"no such session {name!r} (open it first)")
        self.metrics.set_gauge("serve_sessions", count, help="live sessions")
        return {"ok": True, "session": name}

    def _op_metrics(self, req: Dict[str, Any]) -> Dict[str, Any]:
        """Cumulative telemetry snapshot for scrapers and ``repro top``;
        pass ``"exposition": true`` to also get the Prometheus text."""
        with self._sessions_lock:
            names = sorted(self.sessions)
        resp = {
            "ok": True,
            "uptime_s": time.monotonic() - self.started,
            "requests": self.requests,
            "sessions": names,
            "metrics": self.metrics.snapshot(),
        }
        if req.get("exposition"):
            resp["exposition"] = self.metrics.exposition()
        return resp

    def _op_shutdown(self, req: Dict[str, Any]) -> Dict[str, Any]:
        self.shutdown_requested.set()
        return {"ok": True, "shutdown": True}


class _Handler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        service: CheckService = self.server.service  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                req = json.loads(line)
                if not isinstance(req, dict):
                    raise ValueError("request must be a JSON object")
            except ValueError as exc:
                resp = {"ok": False, "error": f"bad request line: {exc}"}
            else:
                resp = service.handle(req)
            try:
                self.wfile.write(
                    (json.dumps(resp, sort_keys=True) + "\n").encode("utf-8")
                )
                self.wfile.flush()
            except OSError:
                return  # client went away mid-response
            if service.shutdown_requested.is_set():
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()
                return


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class _MetricsHandler(BaseHTTPRequestHandler):
    """``GET /metrics`` → the registry in Prometheus text format.
    Anything else is 404; access logging is suppressed (scrapers poll)."""

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        service: CheckService = self.server.service  # type: ignore[attr-defined]
        if self.path.split("?", 1)[0].rstrip("/") in ("", "/metrics"):
            body = service.metrics.exposition().encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self.send_error(404, "try /metrics")

    def log_message(self, format: str, *args: Any) -> None:
        pass


class _MetricsServer(ThreadingHTTPServer):
    allow_reuse_address = True
    daemon_threads = True


class ServeHandle:
    """A running service bound to a socket — tests start one in-process
    via :func:`start_server` and tear it down with :meth:`stop`."""

    def __init__(self, server: _Server, service: CheckService,
                 thread: threading.Thread, reaper: threading.Thread,
                 metrics_server: Optional[_MetricsServer] = None,
                 metrics_thread: Optional[threading.Thread] = None) -> None:
        self.server = server
        self.service = service
        self.thread = thread
        self.reaper = reaper
        self.host, self.port = server.server_address[:2]
        self.metrics_server = metrics_server
        self.metrics_thread = metrics_thread
        self.metrics_port: Optional[int] = (
            metrics_server.server_address[1] if metrics_server else None
        )

    def stop(self) -> None:
        self.service.shutdown_requested.set()
        self.server.shutdown()
        self.server.server_close()
        if self.metrics_server is not None:
            self.metrics_server.shutdown()
            self.metrics_server.server_close()
            if self.metrics_thread is not None:
                self.metrics_thread.join(timeout=5)
        self.thread.join(timeout=5)


def start_server(
    host: str = "127.0.0.1",
    port: int = 0,
    idle_timeout: float = 300.0,
    metrics_port: Optional[int] = None,
    seed: int = 0,
) -> ServeHandle:
    """Bind, start the accept loop and the idle reaper (both daemon
    threads), and return a handle exposing the chosen port (``port=0``
    binds an ephemeral one).  ``metrics_port`` additionally binds an
    HTTP endpoint (same host; 0 = ephemeral) serving ``GET /metrics``
    in Prometheus text format."""
    service = CheckService(idle_timeout=idle_timeout, seed=seed)
    server = _Server((host, port), _Handler)
    server.service = service  # type: ignore[attr-defined]
    thread = threading.Thread(
        target=server.serve_forever, name="repro-serve", daemon=True
    )
    thread.start()

    def _reap() -> None:
        interval = max(0.05, min(idle_timeout / 4.0, 30.0))
        while not service.shutdown_requested.wait(interval):
            service.reap_idle()

    reaper = threading.Thread(target=_reap, name="repro-serve-reaper",
                              daemon=True)
    reaper.start()
    metrics_server = metrics_thread = None
    if metrics_port is not None:
        metrics_server = _MetricsServer((host, metrics_port), _MetricsHandler)
        metrics_server.service = service  # type: ignore[attr-defined]
        metrics_thread = threading.Thread(
            target=metrics_server.serve_forever,
            name="repro-serve-metrics", daemon=True,
        )
        metrics_thread.start()
    return ServeHandle(server, service, thread, reaper,
                       metrics_server, metrics_thread)


class ServeClient:
    """A minimal synchronous JSONL client (used by the smoke script and
    the tests; editor integrations speak the same five-line protocol)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self._rfile = self.sock.makefile("rb")
        self._next_id = 0
        self._lock = threading.Lock()

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one op and block for its response; ids are checked so a
        protocol desync fails loudly instead of mismatching results."""
        with self._lock:
            self._next_id += 1
            rid = self._next_id
            req = {"id": rid, "op": op}
            req.update(fields)
            self.sock.sendall((json.dumps(req) + "\n").encode("utf-8"))
            raw = self._rfile.readline()
            if not raw:
                raise ConnectionError("server closed the connection")
            resp = json.loads(raw.decode("utf-8"))
            if resp.get("id") != rid:
                raise ConnectionError(
                    f"response id {resp.get('id')!r} != request id {rid!r}"
                )
            return resp

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self.sock.close()


def main(args) -> int:
    """``repro serve`` entry point: bind, print the ready line (JSON, so
    wrappers can scrape the ephemeral port), serve until a ``shutdown``
    op or Ctrl-C."""
    handle = start_server(
        host=args.host, port=args.port, idle_timeout=args.idle_timeout,
        metrics_port=getattr(args, "metrics_port", None),
        seed=getattr(args, "seed", 0),
    )
    ready = {"event": "ready", "host": handle.host, "port": handle.port}
    if handle.metrics_port is not None:
        ready["metrics_port"] = handle.metrics_port
    print(json.dumps(ready), flush=True)
    try:
        while not handle.service.shutdown_requested.wait(0.2):
            pass
    except KeyboardInterrupt:
        pass
    finally:
        handle.stop()
        print(
            json.dumps(
                {
                    "event": "stopped",
                    "requests": handle.service.requests,
                }
            ),
            file=sys.stderr,
        )
    return 0
