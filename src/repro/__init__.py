"""Reproduction of "Sharing Classes Between Families" (Qi & Myers, 2009).

The package implements J&s — Java-like family inheritance (nested
inheritance and nested intersection) extended with *class sharing*:
sharing declarations, views and view changes, view-dependent types, and
masked types protecting unshared state — together with the paper's formal
calculus and its complete evaluation suite.

Public entry points:

* :func:`repro.compile_program` / :func:`repro.run_program` — compile and
  execute J&s source in any of the four execution modes of Table 1;
* :mod:`repro.calculus` — the formal small-step calculus used by the
  soundness property tests;
* :mod:`repro.programs` — the evaluation programs (jolden, binary trees,
  the lambda compiler, CorONA).
"""

from . import obs
from .lang import provenance
from .api import (
    Program,
    cache_stats,
    caches_enabled,
    check_source,
    clear_caches,
    compile_program,
    run_program,
    set_caches_enabled,
)
from .diagnostics import Diagnostic, DiagnosticSink, Span
from .lang.queries import CacheStats, QueryEngine
from .errors import JnsResourceError
from .lang.classtable import ClassTable, JnsError, ResolveError, TypeError_
from .lang.typecheck import CheckReport
from .runtime.interp import Interp
from .runtime.values import (
    JnsFailure,
    JnsRuntimeError,
    NullDereference,
    UninitializedFieldError,
)

__version__ = "0.1.0"

__all__ = [
    "obs",
    "provenance",
    "Program",
    "compile_program",
    "check_source",
    "run_program",
    "CacheStats",
    "QueryEngine",
    "cache_stats",
    "caches_enabled",
    "clear_caches",
    "set_caches_enabled",
    "ClassTable",
    "CheckReport",
    "Diagnostic",
    "DiagnosticSink",
    "Span",
    "Interp",
    "JnsError",
    "JnsResourceError",
    "ResolveError",
    "TypeError_",
    "JnsRuntimeError",
    "JnsFailure",
    "NullDereference",
    "UninitializedFieldError",
    "__version__",
]
