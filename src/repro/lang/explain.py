"""Reusable core of ``repro explain``: evaluate one semantic judgment
with the derivation recorder on and package the proof tree.

``repro explain`` (the CLI) and the ``explain`` op of the check service
(:mod:`repro.serve`) both go through :func:`run_explain`, so the JSON
payload — and therefore the HTML rendering built from it — is identical
no matter which front end asked.  The function builds its *own* class
table from the source text: the service must never run a
provenance-capturing judgment against a session's live incremental
table, because ``table.queries.clear()`` (needed for a complete proof
tree rather than a forest of "(cached)" leaves) would wipe the warm
incremental state the session exists to preserve.

:func:`render_html` turns a result into a standalone HTML document whose
derivation nodes are ``<details>`` elements — collapsible without any
script — built recursively from :meth:`Derivation.to_dict` payloads.
"""

from __future__ import annotations

import html as _html
import json
from typing import Any, Dict, List, Optional, Tuple

from . import provenance
from .classtable import ClassTable, JnsError
from .resolve import resolve_program, resolve_type
from .sharing import SharingChecker
from .subtype import Env, path_str, subtype
from .types import ClassType
from ..source.parser import parse_program, parse_type_text


class ExplainError(Exception):
    """A query the explainer cannot run: bad query syntax (``exit_code``
    2) or an operand that does not resolve (``exit_code`` 1).  The
    message is ready for ``error: ...`` display."""

    def __init__(self, message: str, exit_code: int = 1) -> None:
        super().__init__(message)
        self.exit_code = exit_code


def parse_explain_query(text: str) -> Tuple[str, Tuple[str, ...]]:
    """Split an ``--query`` string into (kind, operands).

    Raises :class:`ExplainError` with ``exit_code`` 2 when the text does
    not match one of the query forms."""
    parts = text.split()
    if len(parts) == 3 and parts[0] in ("subtype", "shares"):
        return parts[0], (parts[1], parts[2])
    if len(parts) == 2 and parts[0] in ("masks", "mem"):
        return parts[0], (parts[1],)
    if len(parts) == 3 and parts[0] == "fclass":
        return parts[0], (parts[1], parts[2])
    raise ExplainError(
        f"bad query {text!r}: expected 'subtype T1 T2', 'shares T1 T2', "
        "'masks P.C', 'mem T', or 'fclass P.C f'",
        exit_code=2,
    )


class ExplainResult:
    """One explained judgment: the ``--json`` payload plus the captured
    derivations (for text/HTML rendering)."""

    __slots__ = ("query", "kind", "header", "payload", "derivations",
                 "refutation", "result_lines")

    def __init__(self, query, kind, header, payload, derivations,
                 refutation, result_lines) -> None:
        self.query = query
        self.kind = kind
        self.header = header
        self.payload = payload
        self.derivations = derivations
        self.refutation = refutation
        self.result_lines = result_lines

    def format_text(self) -> str:
        lines = [self.header]
        lines.extend(self.result_lines)
        if self.derivations:
            lines.append("")
            lines.append("derivation:")
            for d in self.derivations:
                lines.append(d.format("  "))
        if self.refutation is not None:
            lines.append("")
            lines.append("refutation (failing premises only):")
            lines.append(self.refutation.format("  "))
        return "\n".join(lines)


def _resolve_query_type(text: str, table: ClassTable):
    """Resolve one type operand of an explain query at the top level."""
    return resolve_type(parse_type_text(text), table, ctx=())


def run_explain(source: str, file: Optional[str], query: str) -> ExplainResult:
    """Parse + resolve ``source`` into a fresh class table and run one
    judgment with provenance capture.

    Raises :class:`ExplainError` for a malformed query or an operand
    that does not resolve, and :class:`JnsError` when the *program*
    itself fails to parse or resolve (the caller renders that against
    the source)."""
    kind, operands = parse_explain_query(query)
    unit = parse_program(source, file=file)
    table = ClassTable(unit)
    resolve_program(table)

    # Resolution warms the memo tables; clear them so the proof tree is
    # complete rather than a forest of "(cached)" leaves.
    table.queries.clear()
    provenance.enable()
    result: Optional[bool] = None
    extra: Dict[str, Any] = {}
    result_lines: List[str] = []
    try:
        if kind in ("subtype", "shares"):
            try:
                t1 = _resolve_query_type(operands[0], table)
                t2 = _resolve_query_type(operands[1], table)
            except JnsError as exc:
                raise ExplainError(str(exc)) from exc
            env = Env(table, ())
            env.vars["this"] = ClassType(())
            with provenance.PROVENANCE.capture() as cap:
                if kind == "subtype":
                    holds = subtype(env, t1, t2)
                else:
                    holds, _how = SharingChecker(table).sharing_judgment(
                        env, t1, t2
                    )
            header = f"query: {kind} {t1!r} {t2!r}"
            result = bool(holds)
            result_lines.append(f"result: {'holds' if result else 'fails'}")
        elif kind == "mem":
            try:
                t1 = _resolve_query_type(operands[0], table)
            except JnsError as exc:
                raise ExplainError(str(exc)) from exc
            with provenance.PROVENANCE.capture() as cap:
                evaluated = table.eval_type_static(t1, ())
                members = table._mem(evaluated)
            header = f"query: mem {t1!r}"
            extra["evaluated"] = repr(evaluated)
            extra["members"] = [path_str(p) for p in members]
            result_lines.append(
                f"result: {{{', '.join(path_str(p) for p in members)}}}"
            )
        elif kind == "fclass":
            path = tuple(operands[0].split("."))
            if not table.class_exists(path):
                raise ExplainError(f"unknown class {operands[0]}")
            fname = operands[1]
            with provenance.PROVENANCE.capture() as cap:
                owner = table.fclass(path, fname)
            header = f"query: fclass {path_str(path)} {fname}"
            extra["owner"] = path_str(owner)
            result_lines.append(f"result: {path_str(owner)}.{fname}")
        else:  # masks
            path = tuple(operands[0].split("."))
            if not table.class_exists(path):
                raise ExplainError(f"unknown class {operands[0]}")
            target = table.share_target(path)
            checker = SharingChecker(table)
            with provenance.PROVENANCE.capture() as cap:
                fwd = checker.required_masks(path, target)
                bwd = checker.required_masks(target, path)
            header = f"query: masks {path_str(path)}"
            extra["share_target"] = path_str(target)
            extra["declared_masks"] = sorted(table.share_masks(path))
            extra["required_masks"] = {
                f"{path_str(path)} -> {path_str(target)}": sorted(fwd),
                f"{path_str(target)} -> {path_str(path)}": sorted(bwd),
            }
            if target == path:
                result_lines.append(
                    f"result: {path_str(path)} declares no sharing"
                )
            else:
                masks = sorted(table.share_masks(path))
                result_lines.append(
                    f"result: shares {path_str(target)}"
                    + (f" \\ {{{', '.join(masks)}}}" if masks else "")
                )
                result_lines.append(
                    f"  required masks {path_str(path)} -> {path_str(target)}: "
                    + ("{" + ", ".join(sorted(fwd)) + "}" if fwd else "{}")
                )
                result_lines.append(
                    f"  required masks {path_str(target)} -> {path_str(path)}: "
                    + ("{" + ", ".join(sorted(bwd)) + "}" if bwd else "{}")
                )
    finally:
        # Leave the process-wide recorder exactly as pristine as we found
        # it: callers (the CLI, but also every `explain` op on a
        # long-lived serve session) must not accumulate stored
        # derivations or counters across invocations.  ``cap.derivations``
        # is a snapshot tuple, so clearing here cannot lose the tree.
        provenance.disable()
        provenance.PROVENANCE.clear()

    payload: Dict[str, Any] = {
        "query": query,
        "derivations": [d.to_dict() for d in cap.derivations],
    }
    if result is not None:
        payload["holds"] = result
    failed = cap.failed()
    refutation = failed.refutation() if failed is not None else None
    if failed is not None:
        payload["refutation"] = (
            refutation.to_dict() if refutation is not None else None
        )
    payload.update(extra)
    return ExplainResult(
        query, kind, header, payload, list(cap.derivations), refutation,
        result_lines,
    )


# ----------------------------------------------------------------------
# HTML rendering
# ----------------------------------------------------------------------

_HTML_STYLE = """\
body { font-family: ui-monospace, Menlo, Consolas, monospace;
       margin: 2rem auto; max-width: 72rem; color: #24292f; }
h1 { font-size: 1.1rem; }
.result { margin: .4rem 0 1.2rem; white-space: pre-wrap; }
details { margin-left: 1.1rem; border-left: 1px solid #d0d7de;
          padding-left: .6rem; }
details.root { margin-left: 0; }
summary { cursor: pointer; padding: .1rem 0; }
summary:hover { background: #f6f8fa; }
.rule { color: #0550ae; font-weight: 600; }
.holds { color: #1a7f37; }
.fails { color: #cf222e; }
.cached { color: #6e7781; font-style: italic; }
.loc { color: #6e7781; }
.refutation { border: 1px solid #cf222e; border-radius: 6px;
              padding: .6rem; margin-top: 1.2rem; }
.refutation > p { color: #cf222e; font-weight: 600; margin: 0 0 .4rem; }
"""


def _node_html(node: Dict[str, Any], out: List[str], depth: int,
               root: bool = False) -> None:
    """One ``Derivation.to_dict`` payload as a ``<details>`` element;
    the first two levels start open, deeper ones collapsed."""
    esc = _html.escape
    result = node.get("result")
    cls = "holds" if result in (True, "True") else (
        "fails" if result in (False, "False", None, "None") else "holds"
    )
    bits = [f"<span class=\"{cls}\">{esc(str(node.get('judgment', '?')))}"
            f"</span> {esc(str(node.get('subject', '')))}"]
    if node.get("rule"):
        bits.append(f"<span class=\"rule\">[{esc(str(node['rule']))}]</span>")
    bits.append(f"&rarr; {esc(json.dumps(result))}")
    if node.get("cached"):
        bits.append('<span class="cached">(cached)</span>')
    if node.get("loc"):
        bits.append(f"<span class=\"loc\">@ {esc(str(node['loc']))}</span>")
    premises = node.get("premises") or []
    opened = " open" if depth < 2 else ""
    rootcls = ' class="root"' if root else ""
    if premises:
        out.append(f"<details{rootcls}{opened}><summary>"
                   + " ".join(bits) + "</summary>")
        for p in premises:
            _node_html(p, out, depth + 1)
        out.append("</details>")
    else:
        out.append(f"<details{rootcls}><summary>" + " ".join(bits)
                   + "</summary></details>")


def render_html(result: ExplainResult) -> str:
    """A standalone, script-free HTML document for one explain result:
    the header and result lines, then every derivation as a collapsible
    tree, then (when the judgment failed) the refutation slice."""
    esc = _html.escape
    out: List[str] = [
        "<!DOCTYPE html>",
        "<html><head><meta charset=\"utf-8\">",
        f"<title>{esc(result.header)}</title>",
        f"<style>{_HTML_STYLE}</style>",
        "</head><body>",
        f"<h1>{esc(result.header)}</h1>",
        "<div class=\"result\">"
        + "<br>".join(esc(ln) for ln in result.result_lines) + "</div>",
    ]
    for d in result.payload["derivations"]:
        _node_html(d, out, 0, root=True)
    ref = result.payload.get("refutation")
    if ref is not None:
        out.append("<div class=\"refutation\">")
        out.append("<p>refutation (failing premises only)</p>")
        _node_html(ref, out, 0, root=True)
        out.append("</div>")
    out.append("</body></html>")
    return "\n".join(out) + "\n"
