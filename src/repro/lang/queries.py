"""Memoized query engine for the semantic core.

The checker and the runtime recompute the same judgments — ancestor
linearizations, ``mem``, field/method lookup, subtyping, sharing-group
closure — thousands of times per program.  This module gives every
subsystem a uniform memo-table abstraction with observability:

* :class:`Query` — one named memo table with hit/miss counters.  The hot
  path (:meth:`Query.get`) is a single dict lookup plus a counter
  increment (and, for bounded queries, an LRU re-append); enabling/
  disabling caching is implemented by making :meth:`Query.put` a no-op
  and dropping the tables, so ``get`` never branches on a flag.  Every
  query is bounded by :data:`DEFAULT_MAXSIZE` unless it opts out, with
  least-recently-used eviction, so long-lived sessions cannot grow
  memory without limit.
* :class:`QueryEngine` — a named collection of queries owned by one
  component (a ``ClassTable``, a ``SharingChecker``, an ``Interp``).
  Engines register themselves in a process-wide weak registry so
  :func:`clear_caches` / :func:`set_caches_enabled` reach every live
  cache from one entry point.
* :class:`CacheStats` — an immutable snapshot of per-query counters,
  with ``to_dict()`` for JSON and ``format()`` for ``--stats`` output.

Keys must be hashable and — for type-valued keys — interned via
:func:`repro.lang.types.intern_type` so equality degenerates to a
pointer comparison on the hot path.

Correctness ground rules (see docs/IMPLEMENTATION.md):

* memo tables are *not* cycle guards.  Judgments that need in-progress
  detection (``parents``, ``has_member``, coinductive sharing) keep an
  explicit guard set; with caches disabled the guard still works.
* state-dependent judgments only cache in the quiescent state (e.g.
  ``type_shares`` is not cached while a coinductive assumption is
  active, ``eval_type_static`` is not cached mid-resolution).

Set ``REPRO_DISABLE_CACHES=1`` in the environment to start the process
with all query caches off (used by the differential correctness tests
and the benchmark "before" measurements).
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "DEFAULT_MAXSIZE",
    "Query",
    "QueryEngine",
    "QueryStat",
    "CacheStats",
    "set_caches_enabled",
    "caches_enabled",
    "clear_caches",
    "collect_stats",
    "MISS",
]

#: Sentinel distinguishing "not cached" from a cached ``None`` result.
MISS: Any = object()

#: Default per-query size bound.  Generous enough that no tier-1 or
#: benchmark workload ever evicts (the largest observed table is a few
#: thousand entries), while keeping long-lived REPL sessions and fuzzing
#: runs from growing memory without bound.  Pass ``maxsize=None`` for a
#: genuinely unbounded query, or a small bound for true LRU caches
#: (e.g. the program compile cache).
DEFAULT_MAXSIZE = 1 << 16

#: Sentinel for "use DEFAULT_MAXSIZE" (distinct from explicit None).
_DEFAULT: Any = object()

# Process-wide enabled flag.  Individual engines mirror it into each
# Query's ``put`` behavior so the get/put fast paths stay branch-free.
_ENABLED: bool = os.environ.get("REPRO_DISABLE_CACHES", "") not in ("1", "true", "yes")

# Weak registry of every live engine, so clear_caches()/set_caches_enabled()
# can reach caches owned by long-lived objects (session-scoped fixtures,
# the program cache) without those objects registering callbacks.
_ENGINES: "weakref.WeakSet[QueryEngine]" = weakref.WeakSet()


class Query:
    """One named memo table with hit/miss accounting.

    ``get`` returns :data:`MISS` when the key is absent.  ``put`` stores
    the value; bounded queries (the default — see :data:`DEFAULT_MAXSIZE`)
    evict the **least recently used** entry, exploiting dict insertion
    order: a hit moves its key to the back, so the front is always the
    coldest entry.  When caching is disabled the table is empty and
    ``put`` is a no-op, so every ``get`` is a miss — the judgment
    recomputes from scratch.
    """

    __slots__ = ("name", "table", "hits", "misses", "maxsize", "_enabled")

    def __init__(self, name: str, maxsize: Optional[int] = _DEFAULT) -> None:
        self.name = name
        self.table: Dict[Any, Any] = {}
        self.hits = 0
        self.misses = 0
        self.maxsize = DEFAULT_MAXSIZE if maxsize is _DEFAULT else maxsize
        self._enabled = _ENABLED

    def get(self, key: Any) -> Any:
        table = self.table
        value = table.get(key, MISS)
        if value is MISS:
            self.misses += 1
        else:
            self.hits += 1
            if self.maxsize is not None:
                # LRU bookkeeping: re-append so eviction order tracks use.
                table[key] = table.pop(key)
        return value

    def put(self, key: Any, value: Any) -> Any:
        if self._enabled:
            table = self.table
            if self.maxsize is not None:
                # Re-putting an existing key must refresh its position
                # (plain __setitem__ keeps the old dict slot).
                table.pop(key, None)
                if len(table) >= self.maxsize:
                    table.pop(next(iter(table)))
            table[key] = value
        return value

    def touch(self, key: Any) -> None:
        """Refresh ``key``'s eviction position in a bounded query.
        Redundant after a hit (``get`` refreshes); kept for callers that
        probe via ``__contains__``."""
        if self.maxsize is not None and key in self.table:
            self.table[key] = self.table.pop(key)

    def clear(self) -> None:
        self.table.clear()

    def set_enabled(self, enabled: bool) -> None:
        self._enabled = enabled
        if not enabled:
            self.table.clear()

    def __contains__(self, key: Any) -> bool:
        return key in self.table

    def __len__(self) -> int:
        return len(self.table)


@dataclass(frozen=True)
class QueryStat:
    """Counters for one query at snapshot time."""

    engine: str
    name: str
    hits: int
    misses: int
    size: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "engine": self.engine,
            "query": self.name,
            "hits": self.hits,
            "misses": self.misses,
            "size": self.size,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of cache counters across one or more engines."""

    stats: Tuple[QueryStat, ...]

    @property
    def hits(self) -> int:
        return sum(s.hits for s in self.stats)

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self.stats)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def query(self, name: str, engine: Optional[str] = None) -> Optional[QueryStat]:
        for s in self.stats:
            if s.name == name and (engine is None or s.engine == engine):
                return s
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "enabled": caches_enabled(),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "queries": [s.to_dict() for s in self.stats],
        }

    def format(self) -> str:
        """Human-readable table for ``repro check/run --stats``."""
        lines = [
            "cache stats ({}): {} hits / {} misses ({:.1%} hit rate)".format(
                "enabled" if caches_enabled() else "disabled",
                self.hits,
                self.misses,
                self.hit_rate,
            )
        ]
        width = max((len(f"{s.engine}.{s.name}") for s in self.stats), default=0)
        for s in sorted(self.stats, key=lambda s: -s.lookups):
            if not s.lookups and not s.size:
                continue
            lines.append(
                "  {:<{w}}  {:>8} hits  {:>8} misses  {:>7} entries  {:>6.1%}".format(
                    f"{s.engine}.{s.name}",
                    s.hits,
                    s.misses,
                    s.size,
                    s.hit_rate,
                    w=width,
                )
            )
        return "\n".join(lines)


class QueryEngine:
    """A named group of queries owned by one component."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.queries: Dict[str, Query] = {}
        _ENGINES.add(self)

    def query(self, name: str, maxsize: Optional[int] = _DEFAULT) -> Query:
        q = self.queries.get(name)
        if q is None:
            q = self.queries[name] = Query(name, maxsize=maxsize)
        return q

    def clear(self) -> None:
        for q in self.queries.values():
            q.clear()

    def set_enabled(self, enabled: bool) -> None:
        for q in self.queries.values():
            q.set_enabled(enabled)

    def stats(self) -> CacheStats:
        return CacheStats(
            tuple(
                QueryStat(self.name, q.name, q.hits, q.misses, len(q.table))
                for q in self.queries.values()
            )
        )

    def reset_counters(self) -> None:
        for q in self.queries.values():
            q.hits = 0
            q.misses = 0


def caches_enabled() -> bool:
    """True when query memoization is globally enabled."""
    return _ENABLED


def set_caches_enabled(enabled: bool) -> None:
    """Globally enable/disable all query caches.

    Disabling clears every live memo table (so stale entries can't leak
    back in when re-enabled) and makes subsequent ``put`` calls no-ops.
    Type interning (`types.intern_type`) is *not* affected — interning is
    a representation invariant, not a cache.
    """
    global _ENABLED
    _ENABLED = enabled
    for engine in list(_ENGINES):
        engine.set_enabled(enabled)


def clear_caches() -> None:
    """Drop every live memo table (the single invalidation entry point).

    Also clears the type-interning table — safe because interning is
    self-repopulating — so long test runs can't grow memory without
    bound.
    """
    for engine in list(_ENGINES):
        engine.clear()
    # Imported lazily to avoid an import cycle (types.py does not import
    # queries.py; the intern table lives there).
    from . import types as _types

    _types._INTERN.clear()


def reset_counters() -> None:
    """Zero the hit/miss counters of every live engine without touching
    the memo tables.  Benchmarks call this after warm-up so reported hit
    rates describe the steady state, not the warming traffic."""
    for engine in list(_ENGINES):
        engine.reset_counters()


def collect_stats(engines: Iterable[Optional[QueryEngine]]) -> CacheStats:
    """Aggregate a CacheStats snapshot across several engines."""
    stats: List[QueryStat] = []
    for engine in engines:
        if engine is not None:
            stats.extend(engine.stats().stats)
    return CacheStats(tuple(stats))


def global_stats() -> CacheStats:
    """Snapshot every live engine in the process."""
    return collect_stats(list(_ENGINES))


def memoized(query: Query) -> Callable:
    """Decorator form for module-level single-argument-tuple functions.

    The wrapped function must accept hashable positional arguments; the
    key is the argument tuple.  Used for helpers where threading a table
    through call sites would obscure the logic.
    """

    def wrap(fn: Callable) -> Callable:
        def wrapper(*args: Any) -> Any:
            value = query.get(args)
            if value is not MISS:
                return value
            return query.put(args, fn(*args))

        wrapper.__name__ = getattr(fn, "__name__", "memoized")
        wrapper.__doc__ = fn.__doc__
        return wrapper

    return wrap
