"""Memoized query engine for the semantic core.

The checker and the runtime recompute the same judgments — ancestor
linearizations, ``mem``, field/method lookup, subtyping, sharing-group
closure — thousands of times per program.  This module gives every
subsystem a uniform memo-table abstraction with observability:

* :class:`Query` — one named memo table with hit/miss counters.  The hot
  path (:meth:`Query.get`) is a single dict lookup plus a counter
  increment (and, for bounded queries, an LRU re-append); enabling/
  disabling caching is implemented by making :meth:`Query.put` a no-op
  and dropping the tables, so ``get`` never branches on a flag.  Every
  query is bounded by :data:`DEFAULT_MAXSIZE` unless it opts out, with
  least-recently-used eviction, so long-lived sessions cannot grow
  memory without limit.
* :class:`QueryEngine` — a named collection of queries owned by one
  component (a ``ClassTable``, a ``SharingChecker``, an ``Interp``).
  Engines register themselves in a process-wide weak registry so
  :func:`clear_caches` / :func:`set_caches_enabled` reach every live
  cache from one entry point.
* :class:`CacheStats` — an immutable snapshot of per-query counters,
  with ``to_dict()`` for JSON and ``format()`` for ``--stats`` output.

Keys must be hashable and — for type-valued keys — interned via
:func:`repro.lang.types.intern_type` so equality degenerates to a
pointer comparison on the hot path.

Correctness ground rules (see docs/IMPLEMENTATION.md):

* memo tables are *not* cycle guards.  Judgments that need in-progress
  detection (``parents``, ``has_member``, coinductive sharing) keep an
  explicit guard set; with caches disabled the guard still works.
* state-dependent judgments only cache in the quiescent state (e.g.
  ``type_shares`` is not cached while a coinductive assumption is
  active, ``eval_type_static`` is not cached mid-resolution).

Set ``REPRO_DISABLE_CACHES=1`` in the environment to start the process
with all query caches off (used by the differential correctness tests
and the benchmark "before" measurements).
"""

from __future__ import annotations

import os
import threading
import weakref
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Set, Tuple

__all__ = [
    "DEFAULT_MAXSIZE",
    "Query",
    "QueryEngine",
    "QueryStat",
    "CacheStats",
    "VersionStore",
    "set_caches_enabled",
    "caches_enabled",
    "clear_caches",
    "collect_stats",
    "read_input",
    "reset_tracker",
    "MISS",
]

#: Sentinel distinguishing "not cached" from a cached ``None`` result.
MISS: Any = object()

#: Default per-query size bound.  Generous enough that no tier-1 or
#: benchmark workload ever evicts (the largest observed table is a few
#: thousand entries), while keeping long-lived REPL sessions and fuzzing
#: runs from growing memory without bound.  Pass ``maxsize=None`` for a
#: genuinely unbounded query, or a small bound for true LRU caches
#: (e.g. the program compile cache).
DEFAULT_MAXSIZE = 1 << 16

#: Sentinel for "use DEFAULT_MAXSIZE" (distinct from explicit None).
_DEFAULT: Any = object()

# Process-wide enabled flag.  Individual engines mirror it into each
# Query's ``put`` behavior so the get/put fast paths stay branch-free.
_ENABLED: bool = os.environ.get("REPRO_DISABLE_CACHES", "") not in ("1", "true", "yes")

# Weak registry of every live engine, so clear_caches()/set_caches_enabled()
# can reach caches owned by long-lived objects (session-scoped fixtures,
# the program cache) without those objects registering callbacks.
_ENGINES: "weakref.WeakSet[QueryEngine]" = weakref.WeakSet()


class VersionStore:
    """Versioned base inputs for dependency-tracked engines.

    Each *input key* names one editable fact of the program — the
    conventional keys (see ``lang/incremental.py``) are::

        ('iface', path)   # a class's interface: extends/shares/adapts,
                          # field and method signatures, nested names
        ('body',  path)   # a class's method/ctor bodies and field inits
        ('sharing',)      # the derived sharing relation (union-find,
                          # masks) — bumped on any hierarchy change
        ('classset',)     # the set of class paths (add/remove/rename)

    ``rev`` is the global revision counter; ``changed[k]`` records the
    revision at which input ``k`` last changed (absent means "never
    changed", i.e. revision 0).  A cached entry verified at revision
    ``r`` is still valid iff every input it consumed satisfies
    ``changed.get(k, 0) <= r``.
    """

    __slots__ = ("rev", "changed", "engines", "__weakref__")

    def __init__(self) -> None:
        self.rev = 1
        self.changed: Dict[Any, int] = {}
        # Every engine validating against this store — one invalidation
        # domain.  ``invalidate_all`` must reach them all: version bumps
        # alone cannot invalidate entries with empty dependency sets.
        self.engines: "weakref.WeakSet[QueryEngine]" = weakref.WeakSet()

    def bump(self, keys: Iterable[Any]) -> int:
        """Advance the revision, marking ``keys`` as changed at it."""
        self.rev += 1
        rev = self.rev
        changed = self.changed
        for k in keys:
            changed[k] = rev
        return rev

    def version(self, key: Any) -> int:
        return self.changed.get(key, 0)

    def invalidate_all(self) -> None:
        """Drop every entry in every attached engine (the global hammer;
        counters survive — see :meth:`QueryEngine.stats`)."""
        self.rev += 1
        self.changed.clear()
        for engine in list(self.engines):
            engine.clear()


class _DepTracker(threading.local):
    """Per-thread stack of dependency-capture frames.

    A frame is ``[tag, key_set]`` where ``tag`` identifies the
    (query, key) computation that pushed it on a cache miss.  Input
    reads (:func:`read_input`) and absorbed hit dependencies land in the
    top frame; :meth:`Query.put` pops down to its own frame, folding any
    orphan frames above it (computations that never cached — exception
    unwinds, conservative no-cache paths) into the entry's dependency
    set, which over-approximates and therefore stays sound.
    """

    def __init__(self) -> None:
        self.frames: List[List[Any]] = []


_TRACKER = _DepTracker()

#: Frame-stack depth bound.  On overflow the two outermost frames merge
#: (sound: dependencies bubble outward), so unbalanced no-cache paths
#: can never grow the stack without limit.
_MAX_FRAMES = 256

#: Marker for "consumed a value whose dependencies are unknown"; an
#: entry whose capture contains it stores ``deps=None`` and is trusted
#: only at the revision it was computed at.
_UNKNOWN_DEP: Any = ("*unknown*",)


def read_input(key: Any) -> None:
    """Record that the computation in flight consumed input ``key``."""
    frames = _TRACKER.frames
    if frames:
        frames[-1][1].add(key)


def reset_tracker() -> None:
    """Drop any leftover capture frames (top-of-operation hygiene)."""
    _TRACKER.frames.clear()


class Query:
    """One named memo table with hit/miss accounting.

    ``get`` returns :data:`MISS` when the key is absent.  ``put`` stores
    the value; bounded queries (the default — see :data:`DEFAULT_MAXSIZE`)
    evict the **least recently used** entry, exploiting dict insertion
    order: a hit moves its key to the back, so the front is always the
    coldest entry.  When caching is disabled the table is empty and
    ``put`` is a no-op, so every ``get`` is a miss — the judgment
    recomputes from scratch.

    A query attached to a :class:`VersionStore` (``versions`` argument)
    becomes *dependency tracked*: each stored entry is a mutable triple
    ``[value, deps, verified_rev]`` where ``deps`` is the set of input
    keys the computation consumed (``None`` when unknown — such entries
    are only trusted within the revision they were stored at).  A hit at
    the entry's verified revision costs one extra integer compare; after
    an edit, the first hit re-validates the entry against the store and
    either green-marks it or drops it (the red/green discipline).
    """

    __slots__ = (
        "name",
        "table",
        "hits",
        "misses",
        "revalidations",
        "retired_hits",
        "retired_misses",
        "retired_revalidations",
        "maxsize",
        "_enabled",
        "_versions",
    )

    def __init__(
        self,
        name: str,
        maxsize: Optional[int] = _DEFAULT,
        versions: Optional[VersionStore] = None,
    ) -> None:
        self.name = name
        self.table: Dict[Any, Any] = {}
        self.hits = 0
        self.misses = 0
        # Hits that required a green-revalidation pass first (entry was
        # stale but all inputs unchanged) — the "revalidate" slice of the
        # red/green discipline, surfaced per query in labeled metrics.
        self.revalidations = 0
        # Counters folded in from a retired/cleared incarnation of this
        # query so ``--stats`` never under-reports across an invalidation
        # (see CacheStats; live hits/misses keep accumulating on top).
        self.retired_hits = 0
        self.retired_misses = 0
        self.retired_revalidations = 0
        self.maxsize = DEFAULT_MAXSIZE if maxsize is _DEFAULT else maxsize
        self._enabled = _ENABLED
        self._versions = versions

    def get(self, key: Any) -> Any:
        store = self._versions
        if store is None:
            table = self.table
            value = table.get(key, MISS)
            if value is MISS:
                self.misses += 1
            else:
                self.hits += 1
                if self.maxsize is not None:
                    # LRU bookkeeping: re-append so eviction order tracks use.
                    table[key] = table.pop(key)
            return value
        return self._get_tracked(key, store)

    def _get_tracked(self, key: Any, store: VersionStore) -> Any:
        table = self.table
        entry = table.get(key, MISS)
        if entry is not MISS:
            if entry[2] != store.rev:
                deps = entry[1]
                changed = store.changed
                if deps is not None and all(
                    changed.get(k, 0) <= entry[2] for k in deps
                ):
                    entry[2] = store.rev  # green: inputs unchanged
                    self.revalidations += 1
                else:
                    del table[key]  # red: recompute
                    entry = MISS
        if entry is MISS:
            self.misses += 1
            if self._enabled:
                self._push_frame(key)
            return MISS
        self.hits += 1
        if self.maxsize is not None:
            table[key] = table.pop(key)
        frames = _TRACKER.frames
        if frames:
            deps = entry[1]
            if deps is None:
                # Unknown provenance: poison the consumer so its own
                # entry is trusted only within the current revision.
                frames[-1][1].add(_UNKNOWN_DEP)
            else:
                # The consumer inherits everything this entry depends on.
                frames[-1][1].update(deps)
        return entry[0]

    def _push_frame(self, key: Any) -> None:
        frames = _TRACKER.frames
        if len(frames) >= _MAX_FRAMES:
            # Merge the two outermost frames; dependencies bubbling
            # outward only widens dependency sets, never narrows them.
            frames[0][1].update(frames[1][1])
            frames[0][0] = frames[1][0]
            del frames[1]
        frames.append([(id(self), key), set()])

    def get_status(self, key: Any) -> str:
        """Non-mutating probe for incremental accounting: ``'reused'``
        (entry verified at the current revision), ``'revalidate'``
        (entry present but needs validation), or ``'miss'``."""
        store = self._versions
        entry = self.table.get(key, MISS)
        if entry is MISS:
            return "miss"
        if store is None or entry[2] == store.rev:
            return "reused"
        return "revalidate"

    def put(self, key: Any, value: Any) -> Any:
        if self._enabled:
            store = self._versions
            table = self.table
            if self.maxsize is not None:
                # Re-putting an existing key must refresh its position
                # (plain __setitem__ keeps the old dict slot).
                table.pop(key, None)
                if len(table) >= self.maxsize:
                    table.pop(next(iter(table)))
            if store is None:
                table[key] = value
            else:
                table[key] = self._entry_for(key, value, store)
        return value

    def _entry_for(self, key: Any, value: Any, store: VersionStore) -> List[Any]:
        frames = _TRACKER.frames
        tag = (id(self), key)
        deps: Optional[Set[Any]] = None
        for i in range(len(frames) - 1, -1, -1):
            if frames[i][0] == tag:
                deps = frames[i][1]
                # Fold orphan frames above the match: computations that
                # started but never cached (exceptions, quiescent-only
                # rules).  Over-approximating their reads is sound.
                for j in range(i + 1, len(frames)):
                    deps.update(frames[j][1])
                del frames[i:]
                break
        if frames and deps is not None:
            frames[-1][1].update(deps)
        # deps is None when no matching capture frame exists (put without
        # a prior tracked miss) or when the computation consumed a value
        # of unknown provenance: trust the entry only at this revision.
        if deps is not None and _UNKNOWN_DEP in deps:
            deps = None
        return [value, deps, store.rev]

    def touch(self, key: Any) -> None:
        """Refresh ``key``'s eviction position in a bounded query.
        Redundant after a hit (``get`` refreshes); kept for callers that
        probe via ``__contains__``."""
        if self.maxsize is not None and key in self.table:
            self.table[key] = self.table.pop(key)

    def clear(self) -> None:
        self.table.clear()

    def set_enabled(self, enabled: bool) -> None:
        self._enabled = enabled
        if not enabled:
            self.table.clear()

    def __contains__(self, key: Any) -> bool:
        return key in self.table

    def __len__(self) -> int:
        return len(self.table)


@dataclass(frozen=True)
class QueryStat:
    """Counters for one query at snapshot time."""

    engine: str
    name: str
    hits: int
    misses: int
    size: int
    #: hits that first green-revalidated a stale entry (subset of hits)
    revalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "engine": self.engine,
            "query": self.name,
            "hits": self.hits,
            "misses": self.misses,
            "revalidations": self.revalidations,
            "size": self.size,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass(frozen=True)
class CacheStats:
    """Immutable snapshot of cache counters across one or more engines."""

    stats: Tuple[QueryStat, ...]

    @property
    def hits(self) -> int:
        return sum(s.hits for s in self.stats)

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self.stats)

    @property
    def revalidations(self) -> int:
        return sum(s.revalidations for s in self.stats)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def query(self, name: str, engine: Optional[str] = None) -> Optional[QueryStat]:
        for s in self.stats:
            if s.name == name and (engine is None or s.engine == engine):
                return s
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "enabled": caches_enabled(),
            "hits": self.hits,
            "misses": self.misses,
            "revalidations": self.revalidations,
            "hit_rate": round(self.hit_rate, 4),
            "queries": [s.to_dict() for s in self.stats],
        }

    def format(self) -> str:
        """Human-readable table for ``repro check/run --stats``."""
        lines = [
            "cache stats ({}): {} hits / {} misses ({:.1%} hit rate)".format(
                "enabled" if caches_enabled() else "disabled",
                self.hits,
                self.misses,
                self.hit_rate,
            )
        ]
        width = max((len(f"{s.engine}.{s.name}") for s in self.stats), default=0)
        for s in sorted(self.stats, key=lambda s: -s.lookups):
            if not s.lookups and not s.size:
                continue
            lines.append(
                "  {:<{w}}  {:>8} hits  {:>8} misses  {:>7} entries  {:>6.1%}".format(
                    f"{s.engine}.{s.name}",
                    s.hits,
                    s.misses,
                    s.size,
                    s.hit_rate,
                    w=width,
                )
            )
        return "\n".join(lines)


class QueryEngine:
    """A named group of queries owned by one component.

    Pass a :class:`VersionStore` to make every query in the engine
    dependency-tracked (red/green validation against versioned inputs);
    engines sharing one store form one invalidation domain.
    """

    def __init__(self, name: str, versions: Optional[VersionStore] = None) -> None:
        self.name = name
        self.versions = versions
        self.queries: Dict[str, Query] = {}
        _ENGINES.add(self)
        if versions is not None:
            versions.engines.add(self)

    def query(self, name: str, maxsize: Optional[int] = _DEFAULT) -> Query:
        q = self.queries.get(name)
        if q is None:
            q = self.queries[name] = Query(
                name, maxsize=maxsize, versions=self.versions
            )
        return q

    def clear(self) -> None:
        for q in self.queries.values():
            q.clear()

    def set_enabled(self, enabled: bool) -> None:
        for q in self.queries.values():
            q.set_enabled(enabled)

    def stats(self) -> CacheStats:
        return CacheStats(
            tuple(
                QueryStat(
                    self.name,
                    q.name,
                    q.hits + q.retired_hits,
                    q.misses + q.retired_misses,
                    len(q.table),
                    q.revalidations + q.retired_revalidations,
                )
                for q in self.queries.values()
            )
        )

    def reset_counters(self) -> None:
        for q in self.queries.values():
            q.hits = 0
            q.misses = 0
            q.revalidations = 0
            q.retired_hits = 0
            q.retired_misses = 0
            q.retired_revalidations = 0

    def absorb_counters(self, other: "QueryEngine") -> None:
        """Fold ``other``'s counters into this engine's retired totals.

        Used when an engine is about to be discarded mid-run (e.g. a
        per-check ``SharingChecker`` replaced across an edit) so
        ``--stats`` snapshots stay monotone instead of silently dropping
        the retired engine's work."""
        for name, q in other.queries.items():
            mine = self.query(name, maxsize=q.maxsize)
            mine.retired_hits += q.hits + q.retired_hits
            mine.retired_misses += q.misses + q.retired_misses
            mine.retired_revalidations += q.revalidations + q.retired_revalidations


def caches_enabled() -> bool:
    """True when query memoization is globally enabled."""
    return _ENABLED


def set_caches_enabled(enabled: bool) -> None:
    """Globally enable/disable all query caches.

    Disabling clears every live memo table (so stale entries can't leak
    back in when re-enabled) and makes subsequent ``put`` calls no-ops.
    Type interning (`types.intern_type`) is *not* affected — interning is
    a representation invariant, not a cache.
    """
    global _ENABLED
    _ENABLED = enabled
    for engine in list(_ENGINES):
        engine.set_enabled(enabled)


def clear_caches() -> None:
    """Drop every live memo table (the single invalidation entry point).

    Also clears the type-interning table — safe because interning is
    self-repopulating — so long test runs can't grow memory without
    bound.
    """
    for engine in list(_ENGINES):
        engine.clear()
    # Imported lazily to avoid an import cycle (types.py does not import
    # queries.py; the intern table lives there).
    from . import types as _types

    _types._INTERN.clear()


def reset_counters() -> None:
    """Zero the hit/miss counters of every live engine without touching
    the memo tables.  Benchmarks call this after warm-up so reported hit
    rates describe the steady state, not the warming traffic."""
    for engine in list(_ENGINES):
        engine.reset_counters()


def collect_stats(engines: Iterable[Optional[QueryEngine]]) -> CacheStats:
    """Aggregate a CacheStats snapshot across several engines."""
    stats: List[QueryStat] = []
    for engine in engines:
        if engine is not None:
            stats.extend(engine.stats().stats)
    return CacheStats(tuple(stats))


def global_stats() -> CacheStats:
    """Snapshot every live engine in the process."""
    return collect_stats(list(_ENGINES))


def memoized(query: Query) -> Callable:
    """Decorator form for module-level single-argument-tuple functions.

    The wrapped function must accept hashable positional arguments; the
    key is the argument tuple.  Used for helpers where threading a table
    through call sites would obscure the logic.
    """

    def wrap(fn: Callable) -> Callable:
        def wrapper(*args: Any) -> Any:
            value = query.get(args)
            if value is not MISS:
                return value
            return query.put(args, fn(*args))

        wrapper.__name__ = getattr(fn, "__name__", "memoized")
        wrapper.__doc__ = fn.__doc__
        return wrapper

    return wrap
