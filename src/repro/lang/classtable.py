"""The J&s class table: families, further binding, implicit classes,
prefix types, and class sharing.

This module implements the semantic machinery of Section 4.3-4.5 of the
paper:

* ``CT`` / ``CT'`` — explicit class lookup and implicit (inherited but not
  overridden) classes, synthesized on demand (rule CT'-IMP);
* subclassing ``@sc`` and further binding ``@fb`` and their closure ``@``;
* ``mem`` and ordered ``supers`` linearization;
* prefix types ``P[T]`` (Section 4.5);
* sharing declarations, the sharing equivalence relation (union-find over
  class paths, Section 2.2), the ``adapts`` shorthand, and the ``fclass``
  function selecting which copy of a possibly-duplicated field a view uses
  (Section 4.15).

Late binding of type names: a name like ``Exp`` written inside family
``AST`` resolves to the sugar ``AST[this.class].Exp`` (Section 2.1); the
resolver produces such types and :meth:`ClassTable.eval_type` interprets
them against a concrete view.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..errors import JnsError
from ..source import ast
from . import types as T
from .provenance import PROVENANCE as _PROV
from .queries import MISS, QueryEngine, VersionStore, read_input
from .types import ClassType, Path, Type, View, exact_class, intern_type


class ResolveError(JnsError):
    """A name or type could not be resolved."""

    code = "JNS-RESOLVE-006"


class TypeError_(JnsError):
    """A static type error (named with a trailing underscore to avoid
    shadowing the builtin)."""

    code = "JNS-TYPE-001"


def path_str(path: Path) -> str:
    return ".".join(path) if path else "o"


class ClassInfo:
    """Metadata for one explicit class declaration."""

    def __init__(self, path: Path, decl: ast.ClassDecl) -> None:
        self.path = path
        self.decl = decl
        # Filled in lazily by the table:
        self.super_types: Optional[List[Type]] = None  # resolved extends
        self.shares_type: Optional[Type] = None  # resolved shares clause
        self.adapts_path: Optional[Path] = None  # resolved adapts target

    @property
    def name(self) -> str:
        return self.path[-1]

    def __repr__(self) -> str:
        return f"ClassInfo({path_str(self.path)})"


class EditNotice:
    """What an incremental edit changed, for runtime-product eviction.

    ``dirty`` — class paths whose inputs were bumped; ``affected`` —
    ``dirty`` plus every class inheriting from one (their synthesized
    runtime classes embed inherited members); ``retired_ids`` — ``id()``
    of every member declaration object that was spliced out (body/init
    compilation caches key on member identity, and a stale entry under a
    recycled id must never survive); ``structural`` — True when the
    program was rebuilt wholesale."""

    __slots__ = ("dirty", "affected", "retired_ids", "structural")

    def __init__(
        self,
        dirty: Sequence[Path],
        affected: Set[Path],
        retired_ids: Set[int],
        structural: bool = False,
    ) -> None:
        self.dirty = tuple(dirty)
        self.affected = affected
        self.retired_ids = retired_ids
        self.structural = structural


class ClassTable:
    """All family/sharing machinery for one program."""

    def __init__(self, unit: ast.CompilationUnit) -> None:
        self.unit = unit
        self.explicit: Dict[Path, ClassInfo] = {}
        self._register((), unit.classes)

        # Versioned base inputs (see queries.py): every engine attached
        # to this store — the table itself, its persistent sharing
        # checker — validates cached judgments against per-class decl
        # versions, so an edit invalidates only the affected slice.
        self.versions = VersionStore()

        # Memoized queries (see queries.py).  Cycle guards are explicit
        # sets — never the memo tables themselves — so the judgments stay
        # correct when caching is globally disabled.
        self.queries = QueryEngine("table", versions=self.versions)
        q = self.queries.query
        self._q_has_member = q("has_member")
        self._q_parents = q("parents")
        self._q_ancestors = q("ancestors")
        self._q_member_names = q("member_names")
        self._q_all_paths = q("all_paths")
        self._q_fields = q("all_fields")
        self._q_find_field = q("find_field")
        self._q_method = q("find_method")
        self._q_method_names = q("all_method_names")
        self._q_ctor = q("find_ctor")
        self._q_mem = q("mem")
        self._q_eval_static = q("eval_type_static")
        self._q_subclasses = q("subclasses_of")
        self._q_group = q("sharing_group")
        self._q_view_of = q("view_of")
        # used by subtype.py (keyed on this table's lifetime)
        self._q_subtype = q("subtype")
        self._q_bound = q("bound")
        self._q_class_subtype = q("class_subtype")
        # ahead-of-time specialization queries (runtime/specialize.py):
        # sealed dispatch targets, fclass slot universes, and closed-world
        # conformance sets.  They live on the table — not the interpreter —
        # so their cost amortizes across every interpreter sharing it.
        self._q_sealed = q("sealed_target")
        self._q_mono = q("monomorphic_target")
        self._q_slot_univ = q("slot_universe")
        self._q_conforming = q("conforming_paths")

        # cycle guards (explicit, cache-independent)
        self._parents_in_progress: Set[Path] = set()
        self._has_member_active: Set[Tuple[Path, str]] = set()

        # derived sharing relation (program state, rebuilt by invalidate())
        self._share_parent: Dict[Path, Path] = {}
        self._share_masks: Dict[Path, FrozenSet[str]] = {}
        self._groups_built = False
        self._group_find: Dict[Path, Path] = {}

        # Persistent sharing checker (lazy): shared across check runs so
        # its caches — and their hit/miss counters — survive edits.
        self._sharing_checker = None

        # Runtime artifacts (loaders, interpreters, specializers) keyed
        # off this table register here to evict per-class products when
        # an incremental edit splices declarations (weakly — the table
        # must never keep an interpreter alive).
        self._edit_listeners: List[Any] = []

    def invalidate(self) -> None:
        """Drop every memoized result and derived sharing state.

        The global invalidation hammer: after this, all judgments
        recompute from ``self.explicit`` (and re-resolve extends/shares
        clauses) on next use.  Used when the program changes wholesale
        under the table and by the cache-disabled differential/benchmark
        modes; incremental edits go through
        :mod:`repro.lang.incremental` instead, which bumps only the
        affected input versions.  Hit/miss counters survive (``--stats``
        stays monotone across invalidation); recorded derivations are
        purged so a later ``explain`` can never splice a stale proof."""
        self.versions.invalidate_all()
        self.reset_sharing_state()
        self._parents_in_progress.clear()
        self._has_member_active.clear()
        _PROV.purge()

    def reset_sharing_state(self) -> None:
        """Drop the derived sharing relation (union-find, masks) and the
        cached extends resolutions so they rebuild from current decls."""
        self._share_parent.clear()
        self._share_masks.clear()
        self._group_find.clear()
        self._groups_built = False
        for info in self.explicit.values():
            info.super_types = None
            info.adapts_path = None

    def sharing_checker(self):
        """The table's persistent :class:`~repro.lang.sharing.SharingChecker`.

        One checker per table, attached to the same version store, so
        sharing-judgment caches revalidate across edits instead of being
        discarded with each throwaway checker."""
        if self._sharing_checker is None:
            from .sharing import SharingChecker  # local import to avoid cycle

            self._sharing_checker = SharingChecker(self)
        return self._sharing_checker

    # ------------------------------------------------------------------
    # incremental edits (see lang/incremental.py)
    # ------------------------------------------------------------------

    def iface_info(self, path: Path) -> Optional[ClassInfo]:
        """Tracked read of a class declaration (``None`` when implicit):
        records an ``('iface', path)`` dependency so cached judgments
        that consulted this decl are invalidated when it changes."""
        read_input(("iface", path))
        return self.explicit.get(path)

    def replace_decl(self, path: Path, decl: ast.ClassDecl) -> None:
        """Splice an edited declaration for an existing class in place.

        Only the decl reference changes; callers are responsible for
        bumping the matching version-store keys (and for resetting the
        sharing state when the class's interface changed)."""
        info = self.explicit[path]
        info.decl = decl
        info.super_types = None
        info.shares_type = None
        info.adapts_path = None

    def add_edit_listener(self, method: Any) -> None:
        """Register a bound method called with an :class:`EditNotice`
        after every incremental splice.  Held weakly."""
        import weakref

        self._edit_listeners.append(weakref.WeakMethod(method))

    def notify_edit(self, notice: "EditNotice") -> None:
        live = []
        for ref in self._edit_listeners:
            cb = ref()
            if cb is not None:
                cb(notice)
                live.append(ref)
        self._edit_listeners[:] = live

    def add_decl(self, path: Path, decl: ast.ClassDecl) -> None:
        if path in self.explicit:
            raise ResolveError(
                f"duplicate class {path_str(path)}", code="JNS-RESOLVE-005"
            )
        self.explicit[path] = ClassInfo(path, decl)

    def remove_decl(self, path: Path) -> None:
        del self.explicit[path]

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def _register(self, prefix: Path, decls: Sequence[ast.ClassDecl]) -> None:
        for decl in decls:
            path = prefix + (decl.name,)
            if path in self.explicit:
                raise ResolveError(
                    f"duplicate class {path_str(path)}", code="JNS-RESOLVE-005"
                )
            self.explicit[path] = ClassInfo(path, decl)
            self._register(path, decl.nested_classes)

    # ------------------------------------------------------------------
    # membership / existence (CT and CT')
    # ------------------------------------------------------------------

    def has_member(self, owner: Path, name: str) -> bool:
        """Whether class ``owner`` has a member class ``name`` (explicit or
        inherited), i.e. whether CT'(owner.name) is defined."""
        key = (owner, name)
        cached = self._q_has_member.get(key)
        if cached is not MISS:
            return cached
        if key in self._has_member_active:
            return False  # cycle: assume no (never cached)
        self._has_member_active.add(key)
        try:
            read_input(("iface", owner + (name,)))
            result = owner + (name,) in self.explicit
            if not result and owner not in self._parents_in_progress:
                # While a class's own extends clause is being resolved, only
                # its explicit members are visible (prevents the extends
                # clause from resolving through the inheritance it is
                # introducing).
                for parent in self.parents(owner):
                    if self.has_member(parent, name):
                        result = True
                        break
                self._q_has_member.put(key, result)
            elif result:
                self._q_has_member.put(key, result)
            # else: conservative negative during resolution — never cached
            return result
        finally:
            self._has_member_active.discard(key)

    def class_exists(self, path: Path) -> bool:
        """CT'(path) != bottom: the class exists explicitly or implicitly."""
        if not path:
            return True
        if path in self.explicit:
            return self.class_exists(path[:-1])
        return self.class_exists(path[:-1]) and self.has_member(path[:-1], path[-1])

    def is_explicit(self, path: Path) -> bool:
        return path in self.explicit

    def member_names(self, owner: Path) -> Tuple[str, ...]:
        """All member-class names of ``owner``, explicit and inherited."""
        cached = self._q_member_names.get(owner)
        if cached is not MISS:
            return cached
        names: List[str] = []
        seen: Set[str] = set()
        read_input(("classset",))
        for path, info in self.explicit.items():
            if len(path) == len(owner) + 1 and path[: len(owner)] == owner:
                if path[-1] not in seen:
                    seen.add(path[-1])
                    names.append(path[-1])
        for parent in self.parents(owner):
            for name in self.member_names(parent):
                if name not in seen:
                    seen.add(name)
                    names.append(name)
        return self._q_member_names.put(owner, tuple(names))

    def all_class_paths(self) -> Tuple[Path, ...]:
        """Every class path in the program, explicit and implicit.

        This is the 'locally closed world' enumeration that sharing checks
        (SH-CLS) rely on; the calculus assumes all classes are known."""
        cached = self._q_all_paths.get(())
        if cached is not MISS:
            return cached
        out: List[Path] = []

        def walk(owner: Path) -> None:
            for name in self.member_names(owner):
                path = owner + (name,)
                out.append(path)
                walk(path)

        walk(())
        return self._q_all_paths.put((), tuple(out))

    # ------------------------------------------------------------------
    # inheritance graph: @sc, @fb, parents, ancestors
    # ------------------------------------------------------------------

    def parents(self, path: Path) -> Tuple[Path, ...]:
        """Direct parents of a class: declared superclasses (``@sc``) then
        further-bound classes (``@fb``)."""
        if not path:
            return ()
        cached = self._q_parents.get(path)
        if cached is not MISS:
            return cached
        if path in self._parents_in_progress:
            raise ResolveError(
                f"cyclic inheritance involving {path_str(path)}",
                code="JNS-RESOLVE-004",
            )
        self._parents_in_progress.add(path)
        try:
            result: List[Path] = []
            # declared superclasses: interpret the extends descriptors of the
            # defining explicit class(es) in the context of `path`
            for desc in self._super_descriptors(path):
                evaled = self.eval_type_static(desc, this=path)
                for cls in self._mem(evaled):
                    if cls != path and cls not in result:
                        result.append(cls)
            # further-bound classes: path = Q + (C,), parents(Q) with member C
            owner, name = path[:-1], path[-1]
            if owner or name:
                for enc_parent in self.parents(owner):
                    if self.has_member(enc_parent, name):
                        fb = enc_parent + (name,)
                        if fb != path and fb not in result:
                            result.append(fb)
            return self._q_parents.put(path, tuple(result))
        finally:
            self._parents_in_progress.discard(path)

    def _super_descriptors(self, path: Path) -> List[Type]:
        """Resolved extends-clause types that apply to ``path``: its own
        declared ones (if explicit) *plus* those of the explicit classes it
        further binds, reinterpreted in its context (rule CT'-IMP, applied
        to explicit overriding classes as well: overriding refines the
        inherited supertype, it never removes it — otherwise late binding
        would be unsound, e.g. ``class B shares F0.B { }`` must still be a
        subtype of its family's ``A`` when the base ``B`` extends ``A``)."""
        descs: List[Type] = []
        info = self.iface_info(path)
        if info is not None:
            if info.super_types is None:
                from .resolve import resolve_type  # local import to avoid cycle

                info.super_types = [
                    resolve_type(t, self, path) for t in info.decl.extends
                ]
            descs.extend(info.super_types)
        # gather from the nearest explicit further-bound classes
        owner, name = path[:-1], path[-1]
        seen: Set[Path] = set()
        frontier = [
            enc + (name,)
            for enc in self.parents(owner)
            if self.has_member(enc, name)
        ]
        while frontier:
            fb = frontier.pop(0)
            if fb in seen:
                continue
            seen.add(fb)
            if fb in self.explicit:
                descs.extend(self._super_descriptors(fb))
            else:
                fb_owner, fb_name = fb[:-1], fb[-1]
                frontier.extend(
                    enc + (fb_name,)
                    for enc in self.parents(fb_owner)
                    if self.has_member(enc, fb_name)
                )
        return descs

    def ancestors(self, path: Path) -> Tuple[Path, ...]:
        """Reflexive-transitive closure of ``@`` as an ordered linearization
        (self first, then BFS over parents, first occurrence kept)."""
        cached = self._q_ancestors.get(path)
        if cached is not MISS:
            return cached
        order: List[Path] = []
        seen: Set[Path] = set()
        queue = [path]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            order.append(current)
            queue.extend(self.parents(current))
        return self._q_ancestors.put(path, tuple(order))

    def inherits(self, sub: Path, sup: Path) -> bool:
        """``sub @* sup`` (reflexive)."""
        return sup in self.ancestors(sub)

    def strictly_inherits(self, sub: Path, sup: Path) -> bool:
        return sub != sup and sup in self.ancestors(sub)

    # ------------------------------------------------------------------
    # mem / prefix (Sections 4.4-4.5)
    # ------------------------------------------------------------------

    def _mem(self, t: Type) -> Tuple[Path, ...]:
        """``mem(PS)``: the classes comprising a pure non-dependent type."""
        if _PROV.enabled:
            frame = _PROV.begin("mem", f"mem({t!r})")
            try:
                cached = self._q_mem.get(t)
                if cached is not MISS:
                    return _PROV.end_hit(frame, ("mem", id(self), t), cached)
                result = self._q_mem.put(t, self._mem_uncached(t))
                return _PROV.end(
                    frame, result, rule="mem (Fig. 8)", key=("mem", id(self), t)
                )
            except BaseException:
                _PROV.abort(frame)
                raise
        cached = self._q_mem.get(t)
        if cached is not MISS:
            return cached
        return self._q_mem.put(t, self._mem_uncached(t))

    def _mem_uncached(self, t: Type) -> Tuple[Path, ...]:
        t = t.pure()
        if isinstance(t, ClassType):
            return (t.path,)
        if isinstance(t, T.IsectType):
            out: List[Path] = []
            for part in t.parts:
                for p in self._mem(part):
                    if p not in out:
                        out.append(p)
            return tuple(out)
        if isinstance(t, T.ExactType):
            return self._mem(t.inner)
        raise ResolveError(f"cannot take mem of non-evaluated type {t!r}")

    def _inherits_safe(self, sub: Path, sup: Path) -> bool:
        """``sub @* sup`` but tolerant of in-progress resolution: answers
        False instead of raising while ``sub``'s own parents are being
        computed (prefix evaluation during extends-clause resolution)."""
        if sub in self._parents_in_progress:
            return False
        try:
            return self.inherits(sub, sup)
        except ResolveError:
            return False

    def prefix_of(self, family: Path, view_path: Path) -> Path:
        """``prefix(P, S)``: the enclosing namespace of ``view_path`` at the
        level of family ``P`` (Section 4.5).

        First walks the enclosing prefixes of the view's own class,
        innermost first (this covers every lexically-nested use, including
        the family object itself as in ``AST[this.class]`` with
        ``this : ASTDisplay``); if none matches, falls back to the
        prefixes of all superclasses and picks the most derived candidate."""
        for cut in range(len(view_path), 0, -1):
            enc = view_path[:cut]
            if enc == family or self._inherits_safe(enc, family):
                return enc
        candidates: List[Path] = []
        for sup in self.ancestors(view_path):
            for cut in range(len(sup), 0, -1):
                enc = sup[:cut]
                if enc == family or self._inherits_safe(enc, family):
                    if enc not in candidates:
                        candidates.append(enc)
        if not candidates:
            raise ResolveError(
                f"no prefix of {path_str(view_path)} is in family {path_str(family)}"
            )
        # most derived: a candidate that inherits all the others
        for cand in candidates:
            if all(other == cand or self.inherits(cand, other) for other in candidates):
                return cand
        raise ResolveError(
            f"ambiguous prefix {path_str(family)}[{path_str(view_path)}]: "
            + ", ".join(path_str(c) for c in candidates)
        )

    # ------------------------------------------------------------------
    # type evaluation (substitution of this.class + prefix evaluation)
    # ------------------------------------------------------------------

    def eval_type_static(self, t: Type, this: Path) -> Type:
        """Interpret a resolved type in the context of class ``this``
        (substituting ``this.class := this!`` and evaluating prefixes).
        Only ``this``-rooted dependent paths are allowed."""
        key = (t, this)
        if _PROV.enabled:
            frame = _PROV.begin("eval", f"eval({t!r}) in {path_str(this)}")
            try:
                cached = self._q_eval_static.get(key)
                if cached is not MISS:
                    return _PROV.end_hit(frame, ("eval", id(self), key), cached)
                result = self._eval_static_uncached(t, this, key)
                return _PROV.end(
                    frame,
                    result,
                    rule="type evaluation (Sec. 4.5)",
                    key=("eval", id(self), key),
                )
            except BaseException:
                _PROV.abort(frame)
                raise
        cached = self._q_eval_static.get(key)
        if cached is not MISS:
            return cached
        return self._eval_static_uncached(t, this, key)

    def _eval_static_uncached(self, t: Type, this: Path, key) -> Type:
        result = intern_type(
            self.eval_type(t, lambda p: self._static_path_view(p, this))
        )
        if not self._parents_in_progress:
            # During extends-clause resolution `_inherits_safe` answers
            # conservatively, so mid-resolution evaluations may differ from
            # the quiescent answer — never cache those.
            self._q_eval_static.put(key, result)
        return result

    def _static_path_view(self, dep_path: Path, this: Path) -> View:
        if dep_path == ("this",):
            return View(this)
        raise ResolveError(
            f"dependent path {'.'.join(dep_path)} cannot be evaluated statically"
        )

    def eval_type(self, t: Type, view_of_path: Callable[[Path], View]) -> Type:
        """Evaluate a type to a non-dependent form given a function that
        yields the run-time view of each final access path."""
        if isinstance(t, T.MaskedType):
            inner = self.eval_type(t.base, view_of_path)
            return inner.with_masks(t.masks)
        if isinstance(t, (T.PrimType, ClassType)):
            return t
        if isinstance(t, T.ArrayType):
            return T.ArrayType(self.eval_type(t.elem, view_of_path))
        if isinstance(t, T.DepType):
            view = view_of_path(t.path)
            if _PROV.enabled:
                _PROV.note(
                    "subst",
                    f"{'.'.join(t.path)}.class := {path_str(view.path)}!",
                    rule="dependent-path substitution",
                )
            return exact_class(view.path)
        if isinstance(t, T.PrefixType):
            index = self.eval_type(t.index, view_of_path)
            index_pure = index.pure()
            if isinstance(index_pure, T.IsectType):
                index_pure = index_pure.parts[0]
            if not isinstance(index_pure, ClassType):
                raise ResolveError(f"prefix index did not evaluate: {t!r}")
            fam = self.prefix_of(t.family, index_pure.path)
            if _PROV.enabled:
                _PROV.note(
                    "prefix",
                    f"prefix({path_str(t.family)}, {path_str(index_pure.path)})"
                    f" = {path_str(fam)}",
                    result=fam,
                    rule="prefix (Sec. 4.5)",
                )
            # P[PS] is exact when the index's prefix at the family's depth
            # is exact (the paper's prefixExact_1 condition, generalized to
            # nested families): any exact position at or below the family
            # depth pins the family.
            if any(k >= len(fam) for k in index_pure.exact):
                if _PROV.enabled:
                    _PROV.note(
                        "prefixExact",
                        f"index exact at depth >= {len(fam)} pins the family",
                        rule="prefixExact_k",
                    )
                return exact_class(fam)
            return ClassType(fam)
        if isinstance(t, T.NestedType):
            outer = self.eval_type(t.outer, view_of_path)
            outer_pure = outer.pure()
            if isinstance(outer_pure, ClassType):
                member = outer_pure.member(t.name)
                if not self.class_exists(member.path):
                    raise ResolveError(f"no such class {member!r}")
                return member
            if isinstance(outer_pure, T.IsectType):
                parts = tuple(
                    T.make_member(p, t.name)
                    for p in outer_pure.parts
                    if isinstance(p, ClassType) and self.class_exists(p.path + (t.name,))
                )
                if not parts:
                    raise ResolveError(f"no such member {t.name} on {outer_pure!r}")
                return T.make_isect(parts)
            raise ResolveError(f"cannot select member on {outer!r}")
        if isinstance(t, T.ExactType):
            return T.make_exact(self.eval_type(t.inner, view_of_path))
        if isinstance(t, T.IsectType):
            parts = tuple(self.eval_type(p, view_of_path) for p in t.parts)
            # collapse when one part is most derived
            class_parts = [p for p in parts if isinstance(p, ClassType)]
            if len(class_parts) == len(parts):
                for p in class_parts:
                    if all(
                        q is p or self.inherits(p.path, q.path) for q in class_parts
                    ):
                        return p
            return T.make_isect(parts)
        raise ResolveError(f"cannot evaluate type {t!r}")

    # ------------------------------------------------------------------
    # members: fields, methods, constructors
    # ------------------------------------------------------------------

    def own_fields(self, path: Path) -> List[ast.FieldDecl]:
        info = self.iface_info(path)
        return list(info.decl.fields) if info is not None else []

    def all_fields(self, path: Path) -> Tuple[Tuple[Path, ast.FieldDecl], ...]:
        """``fields(S)``: (declaring class, decl) pairs over all supers.
        A field name appears once; the most derived declaration wins."""
        cached = self._q_fields.get(path)
        if cached is not MISS:
            return cached
        out: List[Tuple[Path, ast.FieldDecl]] = []
        seen: Set[str] = set()
        for sup in self.ancestors(path):
            for decl in self.own_fields(sup):
                if decl.name not in seen:
                    seen.add(decl.name)
                    out.append((sup, decl))
        return self._q_fields.put(path, tuple(out))

    def find_field(self, path: Path, name: str) -> Optional[Tuple[Path, ast.FieldDecl]]:
        key = (path, name)
        cached = self._q_find_field.get(key)
        if cached is not MISS:
            return cached
        result: Optional[Tuple[Path, ast.FieldDecl]] = None
        for owner, decl in self.all_fields(path):
            if decl.name == name:
                result = (owner, decl)
                break
        return self._q_find_field.put(key, result)

    def find_method(self, path: Path, name: str) -> Optional[Tuple[Path, ast.MethodDecl]]:
        """Most-specific method implementation for a receiver whose view is
        ``path``.

        Candidates from all ancestors are filtered by the override relation
        (a declaration in X overrides one in Y when X @+ Y); remaining ties
        are broken by preferring the declaring class sharing the longest
        path prefix with the view (the 'current family' wins, which is how
        family-wide updates propagate to implicit classes)."""
        key = (path, name)
        cached = self._q_method.get(key)
        if cached is not MISS:
            return cached
        candidates: List[Tuple[Path, ast.MethodDecl]] = []
        for sup in self.ancestors(path):
            info = self.iface_info(sup)
            if info is None:
                continue
            for decl in info.decl.methods:
                if decl.name == name:
                    candidates.append((sup, decl))
                    break
        result: Optional[Tuple[Path, ast.MethodDecl]] = None
        if candidates:
            filtered = [
                (owner, decl)
                for owner, decl in candidates
                if not any(
                    other != owner and self.strictly_inherits(other, owner)
                    for other, _ in candidates
                )
            ]
            if len(filtered) > 1:
                def common_prefix(owner: Path) -> int:
                    n = 0
                    for a, b in zip(owner, path):
                        if a != b:
                            break
                        n += 1
                    return n

                filtered.sort(key=lambda od: (-common_prefix(od[0]), -len(od[0])))
            result = filtered[0]
        return self._q_method.put(key, result)

    def all_method_names(self, path: Path) -> FrozenSet[str]:
        cached = self._q_method_names.get(path)
        if cached is not MISS:
            return cached
        names: Set[str] = set()
        for sup in self.ancestors(path):
            info = self.iface_info(sup)
            if info is not None:
                names.update(m.name for m in info.decl.methods)
        return self._q_method_names.put(path, frozenset(names))

    def find_ctor(self, path: Path, argc: int) -> Optional[Tuple[Path, ast.CtorDecl]]:
        """Nearest constructor with matching arity along the ancestors."""
        key = (path, argc)
        cached = self._q_ctor.get(key)
        if cached is not MISS:
            return cached
        result: Optional[Tuple[Path, ast.CtorDecl]] = None
        for sup in self.ancestors(path):
            info = self.iface_info(sup)
            if info is None:
                continue
            for ctor in info.decl.ctors:
                if len(ctor.params) == argc:
                    result = (sup, ctor)
                    break
            if result is not None:
                break
        return self._q_ctor.put(key, result)

    # ------------------------------------------------------------------
    # sharing (Section 2.2, 3.1): groups, share(), fclass()
    # ------------------------------------------------------------------

    def _build_sharing(self) -> None:
        """Two phases: first collect every sharing relationship (explicit
        ``shares`` clauses and ``adapts`` expansions) into the union-find,
        then compute the automatic masks for adapts-shared classes as a
        fixpoint.  Masks must come second because whether a field's
        interpreted types are shared depends on the complete sharing
        relation, and the mask sets themselves feed back into ``fclass``
        (masks only grow, so the iteration terminates)."""
        if self._groups_built:
            return
        self._groups_built = True
        from .resolve import resolve_type

        def union(a: Path, b: Path) -> None:
            ra, rb = self._find(a), self._find(b)
            if ra != rb:
                self._group_find[ra] = rb

        adapts_pairs: List[Tuple[Path, Path]] = []
        for path, info in self.explicit.items():
            decl = info.decl
            if decl.shares is not None:
                resolved = resolve_type(decl.shares, self, path)
                evaled = self.eval_type_static(resolved, this=path)
                target_pure = evaled.pure()
                if not isinstance(target_pure, ClassType):
                    raise ResolveError(
                        f"shares clause of {path_str(path)} is not a class: {evaled!r}"
                    )
                target = target_pure.path
                self._share_parent[path] = target
                self._share_masks[path] = evaled.masks
                if target != path:
                    union(path, target)
            if decl.adapts is not None:
                resolved = resolve_type(decl.adapts, self, path)
                evaled = self.eval_type_static(resolved, this=path).pure()
                if not isinstance(evaled, ClassType):
                    raise ResolveError(
                        f"adapts clause of {path_str(path)} is not a class"
                    )
                base = evaled.path
                info.adapts_path = base
                self._apply_adapts(path, base, union, adapts_pairs)
        # phase 2: automatic masks to fixpoint
        changed = True
        while changed:
            changed = False
            for derived, base in adapts_pairs:
                masks = self._auto_masks(derived, base)
                if masks - self._share_masks.get(derived, frozenset()):
                    self._share_masks[derived] = (
                        self._share_masks.get(derived, frozenset()) | masks
                    )
                    changed = True

    def _apply_adapts(
        self,
        family: Path,
        base: Path,
        union: Callable[[Path, Path], None],
        pairs: List[Tuple[Path, Path]],
    ) -> None:
        """``adapts A``: share every inherited member class with A's
        corresponding class (Section 2.2), transitively nested."""

        def walk(rel: Path) -> None:
            base_cls = base + rel
            fam_cls = family + rel
            for name in self.member_names(base_cls):
                child = rel + (name,)
                fam_child = family + child
                if self.class_exists(fam_child):
                    if fam_child not in self._share_parent:
                        self._share_parent[fam_child] = base + child
                        self._share_masks[fam_child] = frozenset()
                        pairs.append((fam_child, base + child))
                    union(fam_child, base + child)
                    walk(child)

        walk(())

    def _auto_masks(self, derived: Path, base: Path) -> FrozenSet[str]:
        """Fields of the shared base class whose types are not shared
        between the two families must be masked/duplicated (Section 3.1).
        Used by ``adapts`` where the programmer writes no explicit masks.
        Evaluated against the current mask state (called to fixpoint)."""
        from .sharing import SharingChecker

        checker = SharingChecker(self)
        masks: Set[str] = set()
        for owner, decl in self.all_fields(base):
            ftype = decl.type
            if isinstance(ftype, T.Type) and self._field_type_unshared(
                ftype, derived, base, checker
            ):
                masks.add(decl.name)
        return frozenset(masks)

    def _field_type_unshared(
        self, ftype: Type, derived: Path, base: Path, checker
    ) -> bool:
        """Whether a field's declared type interprets to unshared types in
        the two families (the criterion for auto-masking under adapts)."""
        if not T.paths_in(ftype):
            return False  # non-dependent type: same in both families
        try:
            t_derived = self.eval_type_static(ftype, this=derived).pure()
            t_base = self.eval_type_static(ftype, this=base).pure()
        except (ResolveError, JnsError):
            return True
        if t_derived == t_base:
            return False
        if not isinstance(t_derived, ClassType) or not isinstance(t_base, ClassType):
            return True  # e.g. arrays of family types: never shared
        empty: FrozenSet[str] = frozenset()
        return not (
            checker.type_shares(t_derived, t_base, empty, lenient=True)
            and checker.type_shares(t_base, t_derived, empty, lenient=True)
        )

    def _find(self, path: Path) -> Path:
        root = path
        while self._group_find.get(root, root) != root:
            root = self._group_find[root]
        # path compression
        while self._group_find.get(path, path) != root:
            nxt = self._group_find[path]
            self._group_find[path] = root
            path = nxt
        return root

    def shared_with(self, a: Path, b: Path) -> bool:
        """Whether classes a and b are in the same sharing equivalence
        class (``a! <-> b!``)."""
        self._build_sharing()
        read_input(("sharing",))
        return self._find(a) == self._find(b)

    def sharing_group(self, path: Path) -> Tuple[Path, ...]:
        """All classes sharing instances with ``path`` (including itself)."""
        self._build_sharing()
        if _PROV.enabled:
            frame = _PROV.begin("sharing_group", f"group({path_str(path)})")
            try:
                cached = self._q_group.get(path)
                if cached is not MISS:
                    return _PROV.end_hit(
                        frame, ("sharing_group", id(self), path), cached
                    )
                result = self._sharing_group_uncached(path)
                _PROV.note(
                    "union-find",
                    f"equivalence root of {path_str(path)} is "
                    f"{path_str(self._find(path))}",
                )
                return _PROV.end(
                    frame,
                    result,
                    rule="sharing equivalence (Sec. 2.2)",
                    key=("sharing_group", id(self), path),
                )
            except BaseException:
                _PROV.abort(frame)
                raise
        cached = self._q_group.get(path)
        if cached is not MISS:
            return cached
        return self._sharing_group_uncached(path)

    def _sharing_group_uncached(self, path: Path) -> Tuple[Path, ...]:
        read_input(("sharing",))
        root = self._find(path)
        group = [p for p in self.all_class_paths() if self._find(p) == root]
        if path not in group:
            group.append(path)
        return self._q_group.put(path, tuple(group))

    def share_target(self, path: Path) -> Path:
        """``share(P)``: the declared shared class of P (P itself if none)."""
        self._build_sharing()
        read_input(("sharing",))
        return self._share_parent.get(path, path)

    def share_masks(self, path: Path) -> FrozenSet[str]:
        self._build_sharing()
        read_input(("sharing",))
        return self._share_masks.get(path, frozenset())

    def fclass(self, path: Path, fname: str) -> Path:
        """Which class's copy of field ``fname`` a view of class ``path``
        accesses (the ``fclass`` function of Section 4.15).

        Returns ``path``'s own copy when the field is new in this family or
        duplicated (masked in the sharing declaration); otherwise follows
        the share target."""
        if _PROV.enabled:
            frame = _PROV.begin("fclass", f"fclass({path_str(path)}, {fname!r})")
            try:
                result = self._fclass_recorded(path, fname)
                return _PROV.end(frame, result, rule="fclass (Sec. 4.15)")
            except BaseException:
                _PROV.abort(frame)
                raise
        target = self.share_target(path)
        if target == path:
            return path
        if fname in self.share_masks(path):
            return path
        target_fields = {decl.name for _, decl in self.all_fields(target)}
        if fname not in target_fields:
            return path
        return self.fclass(target, fname)

    def _fclass_recorded(self, path: Path, fname: str) -> Path:
        """The :meth:`fclass` dispatch with leaf premises explaining which
        clause selected the copy (recording-only path)."""
        target = self.share_target(path)
        if target == path:
            _PROV.note(
                "share", f"{path_str(path)} declares no sharing: own copy"
            )
            return path
        if fname in self.share_masks(path):
            _PROV.note(
                "duplicated",
                f"field {fname!r} is masked in {path_str(path)}'s shares "
                "clause: duplicated, own copy",
            )
            return path
        target_fields = {decl.name for _, decl in self.all_fields(target)}
        if fname not in target_fields:
            _PROV.note(
                "new-field",
                f"field {fname!r} is new in {path_str(path)} (absent from "
                f"{path_str(target)}): own copy",
            )
            return path
        _PROV.note(
            "share",
            f"{path_str(path)} shares {path_str(target)} and {fname!r} is "
            "not masked: follow the share target",
        )
        return self.fclass(target, fname)

    def types_fully_shared(self, t1: ClassType, t2: ClassType) -> bool:
        """Whether every subclass of t1 (in its locally closed world) has a
        shared counterpart under t2 and vice versa — the bidirectional
        version of SH-CLS used for auto-masking decisions."""
        return self.directional_sharing_holds(t1, t2) and self.directional_sharing_holds(
            t2, t1
        )

    def subclasses_of(self, bound: ClassType) -> Tuple[Path, ...]:
        """All classes P with P! <= bound, enumerated in the locally closed
        world (bound should have an exact prefix for this to be modular,
        Section 2.1; we enumerate globally as the calculus does)."""
        cached = self._q_subclasses.get(bound)
        if cached is not MISS:
            return cached
        out = []
        for p in self.all_class_paths():
            if self.inherits(p, bound.path) and self._exact_prefix_matches(p, bound):
                out.append(p)
        return self._q_subclasses.put(bound, tuple(out))

    def _exact_prefix_matches(self, p: Path, bound: ClassType) -> bool:
        m = max(bound.exact, default=0)
        if m == 0:
            return True
        if m > len(p):
            return False
        if m == len(bound.path):
            # bound itself exact: p must be exactly bound
            return p == bound.path
        return p[:m] == bound.path[:m]

    def directional_sharing_holds(self, src: ClassType, dst: ClassType) -> bool:
        """SH-CLS premise: every subclass of ``src`` has a unique shared
        subclass of ``dst``."""
        self._build_sharing()
        for p1 in self.subclasses_of(src):
            matches = [
                p2
                for p2 in self.subclasses_of(dst)
                if self.shared_with(p1, p2)
            ]
            if len(matches) != 1:
                return False
        return True

    def view_of(self, current: View, target: Type) -> View:
        """The run-time ``view`` function (Section 4.15): retarget a
        reference's view to be compatible with ``target``.

        If the current class already conforms, only the masks change;
        otherwise the unique shared class under the target is selected.
        Raises :class:`JnsError` when no shared view exists (statically
        prevented by sharing constraints)."""
        key = (current, target)
        cached = self._q_view_of.get(key)
        if cached is not MISS:
            return cached
        target_pure = target.pure()
        masks = target.masks
        if not isinstance(target_pure, ClassType):
            raise JnsError(f"view target did not evaluate to a class: {target!r}")
        if self.inherits(current.path, target_pure.path) and self._exact_prefix_matches(
            current.path, target_pure
        ):
            return self._q_view_of.put(key, View(current.path, frozenset(masks)))
        self._build_sharing()
        matches = [
            p
            for p in self.sharing_group(current.path)
            if self.inherits(p, target_pure.path)
            and self._exact_prefix_matches(p, target_pure)
        ]
        if len(matches) == 1:
            return self._q_view_of.put(key, View(matches[0], frozenset(masks)))
        if not matches:
            raise JnsError(
                f"no view of {path_str(current.path)} is compatible with {target!r}"
            )
        raise JnsError(
            f"ambiguous view change from {path_str(current.path)} to {target!r}: "
            + ", ".join(path_str(m) for m in matches)
        )

    # ------------------------------------------------------------------
    # ahead-of-time specialization queries (runtime/specialize.py)
    # ------------------------------------------------------------------

    def runtime_conforms(self, path: Path, t: Type) -> bool:
        """Whether a value whose view class is ``path`` belongs to the
        non-dependent type ``t`` — the runtime conformance relation used
        by casts, ``instanceof``, and view-change no-op detection."""
        if isinstance(t, ClassType):
            m = max(t.exact, default=0)
            if m > 0:
                if len(path) < m or path[:m] != t.path[:m]:
                    return False
                if m == len(t.path) and path != t.path:
                    return False
            return self.inherits(path, t.path)
        if isinstance(t, T.IsectType):
            return all(self.runtime_conforms(path, p) for p in t.parts)
        if isinstance(t, T.ExactType):
            inner = t.inner
            if isinstance(inner, ClassType):
                return path == inner.path
            return self.runtime_conforms(path, inner)
        return False

    def conforming_paths(self, t: Type) -> FrozenSet[Path]:
        """All class paths in the locally closed world conforming to the
        (pure, non-dependent) type ``t``.  Feeds the specializer's view-
        change no-op sets: an adapt to ``t`` from any of these paths with
        equal masks is the identity."""
        t = intern_type(t.pure())
        cached = self._q_conforming.get(t)
        if cached is not MISS:
            return cached
        result = frozenset(
            p for p in self.all_class_paths() if self.runtime_conforms(p, t)
        )
        return self._q_conforming.put(t, result)

    def sealed_method_target(
        self, name: str
    ) -> Optional[Tuple[Path, ast.MethodDecl, FrozenSet[Path]]]:
        """Unique dispatch target for method ``name``, if the locally
        closed world (the SH-CLS enumeration) seals it: every class that
        understands ``name`` resolves it to the *same* declaration.  Then
        a call site needs no per-receiver dispatch — only the membership
        guard over the returned path set.  ``None`` when the name is
        polymorphic (call sites keep their inline caches)."""
        cached = self._q_sealed.get(name)
        if cached is not MISS:
            return cached
        target: Optional[Tuple[Path, ast.MethodDecl]] = None
        valid: List[Path] = []
        sealed = True
        for p in self.all_class_paths():
            found = self.find_method(p, name)
            if found is None:
                continue
            if target is None:
                target = found
            elif found[1] is not target[1] or found[0] != target[0]:
                sealed = False
                break
            valid.append(p)
        result = None
        if sealed and target is not None:
            result = (target[0], target[1], frozenset(valid))
        return self._q_sealed.put(name, result)

    def monomorphic_method_target(
        self, name: str, paths: FrozenSet[Path]
    ) -> Optional[Tuple[Path, ast.MethodDecl, FrozenSet[Path]]]:
        """Unique dispatch target for ``name`` across just ``paths`` (a
        receiver's conformance set): every member of ``paths`` that
        understands ``name`` resolves it to the same declaration.  The
        per-receiver-class relaxation of :meth:`sealed_method_target` —
        a name can be polymorphic globally yet monomorphic for one
        receiver type.  ``None`` when the restricted set still diverges."""
        key = (name, paths)
        cached = self._q_mono.get(key)
        if cached is not MISS:
            return cached
        target: Optional[Tuple[Path, ast.MethodDecl]] = None
        valid: List[Path] = []
        for p in sorted(paths):
            found = self.find_method(p, name)
            if found is None:
                continue
            if target is None:
                target = found
            elif found[1] is not target[1] or found[0] != target[0]:
                return self._q_mono.put(key, None)
            valid.append(p)
        result = None
        if target is not None:
            result = (target[0], target[1], frozenset(valid))
        return self._q_mono.put(key, result)

    def slot_universe(self, path: Path) -> Tuple[Tuple[Path, str], ...]:
        """The heap keys an instance created as ``path`` can ever hold
        under the J&s fclass discipline: for every member ``q`` of the
        sharing group and every field ``f`` of ``q``, the key
        ``(fclass(q, f), f)``.  Shared fields collapse onto one key;
        duplicated unshared/masked fields keep one key per family
        (Section 6.3).  Sorted, so every member of the group computes the
        identical slot numbering."""
        cached = self._q_slot_univ.get(path)
        if cached is not MISS:
            return cached
        keys: Set[Tuple[Path, str]] = set()
        for q in self.sharing_group(path):
            for _, decl in self.all_fields(q):
                keys.add((self.fclass(q, decl.name), decl.name))
        return self._q_slot_univ.put(path, tuple(sorted(keys)))
