"""Name resolution for J&s.

Implements the late binding of type names (Section 2.1): a type name that
is not fully qualified is sugar for a member of a prefix type that depends
on the current class.  ``Exp`` written inside family ``AST`` resolves to
``AST[this.class].Exp`` so that, inherited into ``ASTDisplay``, it denotes
``ASTDisplay``'s ``Exp``.

Also resolves expression-level names: locals vs. fields of ``this``,
implicit-receiver calls, and the ``Sys`` native library.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..diagnostics import DiagnosticSink, Span
from ..errors import JnsError
from ..obs import TRACER
from ..source import ast
from . import types as T
from .classtable import ClassTable, ResolveError, path_str
from .types import ClassType, Path, Type

#: Names of native functions/constants available via ``Sys``.
SYS_FUNCTIONS = frozenset(
    {
        "print",
        "println",
        "sqrt",
        "abs",
        "fabs",
        "min",
        "max",
        "floor",
        "ceil",
        "pow",
        "sin",
        "cos",
        "tan",
        "asin",
        "acos",
        "atan",
        "atan2",
        "log",
        "exp",
        "intOf",
        "doubleOf",
        "str",
        "strLen",
        "charAt",
        "substring",
        "parseInt",
        "fail",
        "identityHash",
        "viewName",
    }
)
SYS_CONSTANTS = frozenset({"PI", "E", "MAX_INT", "MIN_INT", "MAX_DOUBLE"})


def resolve_type(t: ast.TypeAST, table: ClassTable, ctx: Path) -> Type:
    """Resolve a surface type written lexically inside class ``ctx``.

    Every resolved type is interned (:func:`repro.lang.types.intern_type`)
    so the memoized queries downstream get identity-cheap keys."""
    return T.intern_type(_resolve_type(t, table, ctx))


def _resolve_type(t: ast.TypeAST, table: ClassTable, ctx: Path) -> Type:
    if isinstance(t, T.Type):
        return t  # already resolved (idempotent for re-entrant passes)
    if isinstance(t, ast.TPrim):
        return {
            "int": T.INT,
            "double": T.DOUBLE,
            "boolean": T.BOOLEAN,
            "String": T.STRING,
            "void": T.VOID,
        }[t.name]
    if isinstance(t, ast.TName):
        return _resolve_name(t.parts, table, ctx, t.pos)
    if isinstance(t, ast.TDep):
        return T.DepType(tuple(t.path))
    if isinstance(t, ast.TExact):
        return T.make_exact(resolve_type(t.inner, table, ctx))
    if isinstance(t, ast.TMask):
        inner = resolve_type(t.inner, table, ctx)
        return inner.with_masks(frozenset(t.fields))
    if isinstance(t, ast.TPrefix):
        family = resolve_type(t.family, table, ctx)
        family_pure = family.pure()
        fam_path = _family_path(family_pure, table)
        index = resolve_type(t.index, table, ctx)
        return T.PrefixType(fam_path, index)
    if isinstance(t, ast.TNested):
        outer = resolve_type(t.outer, table, ctx)
        return T.make_member(outer, t.name)
    if isinstance(t, ast.TIsect):
        return T.make_isect(tuple(resolve_type(p, table, ctx) for p in t.parts))
    if isinstance(t, ast.TArray):
        return T.ArrayType(resolve_type(t.elem, table, ctx))
    raise ResolveError(f"unknown type form {t!r}")


def _family_path(t: Type, table: ClassTable) -> Path:
    """The family named by the P in P[T] must be a statically known class."""
    if isinstance(t, ClassType):
        return t.path
    if isinstance(t, T.NestedType):
        # A prefix family resolved late-bound; use its static path instead.
        # This occurs for P[..] where P itself is a nested family: we take the
        # lexical path, which is what the prefix evaluation needs.
        outer = t.outer
        if isinstance(outer, T.PrefixType):
            return outer.family + (t.name,)
    raise ResolveError(f"prefix family must be a statically known class, got {t!r}")


def _resolve_name(parts: tuple, table: ClassTable, ctx: Path, pos) -> Type:
    """Resolve a dotted name: find the innermost enclosing namespace that
    has a member named ``parts[0]`` (Section 2.1)."""
    head = parts[0]
    for cut in range(len(ctx), -1, -1):
        enclosing = ctx[:cut]
        if table.has_member(enclosing, head):
            if not enclosing:
                # top level: an absolute path
                full = tuple(parts)
                if not table.class_exists(full):
                    raise ResolveError(
                        f"no such class {'.'.join(parts)} at {pos[0]}:{pos[1]}",
                        code="JNS-RESOLVE-002",
                        span=Span.from_pos(pos),
                    )
                return ClassType(full)
            # late-bound: enclosing[this.class].head.rest...
            result: Type = T.NestedType(
                T.PrefixType(enclosing, T.DepType(("this",))), head
            )
            for name in parts[1:]:
                result = T.make_member(result, name)
            return result
    raise ResolveError(
        f"unknown type name {'.'.join(parts)} at {pos[0]}:{pos[1]}",
        code="JNS-RESOLVE-002",
        span=Span.from_pos(pos),
    )


class BodyResolver:
    """Resolves names inside method/constructor bodies and initializers of
    one class: types in declarations, locals vs fields, Sys natives."""

    def __init__(self, table: ClassTable, ctx: Path) -> None:
        self.table = table
        self.ctx = ctx
        self.scopes: List[Set[str]] = []

    # -- scope helpers -----------------------------------------------------

    def push(self) -> None:
        self.scopes.append(set())

    def pop(self) -> None:
        self.scopes.pop()

    def declare(self, name: str) -> None:
        self.scopes[-1].add(name)

    def in_scope(self, name: str) -> bool:
        return any(name in s for s in self.scopes)

    def is_field(self, name: str) -> bool:
        return self.table.find_field(self.ctx, name) is not None

    def rtype(self, t) -> Type:
        return resolve_type(t, self.table, self.ctx)

    # -- statements ----------------------------------------------------------

    def stmt(self, s: ast.Stmt) -> ast.Stmt:
        if isinstance(s, ast.Block):
            self.push()
            s.stmts = [self.stmt(x) for x in s.stmts]
            self.pop()
            return s
        if isinstance(s, ast.LocalDecl):
            s.type = self.rtype(s.type)
            if s.init is not None:
                s.init = self.expr(s.init)
            self.declare(s.name)
            return s
        if isinstance(s, ast.ExprStmt):
            s.expr = self.expr(s.expr)
            return s
        if isinstance(s, ast.If):
            s.cond = self.expr(s.cond)
            s.then = self.stmt(s.then)
            if s.els is not None:
                s.els = self.stmt(s.els)
            return s
        if isinstance(s, ast.While):
            s.cond = self.expr(s.cond)
            s.body = self.stmt(s.body)
            return s
        if isinstance(s, ast.For):
            self.push()
            if s.init is not None:
                s.init = self.stmt(s.init)
            if s.cond is not None:
                s.cond = self.expr(s.cond)
            if s.update is not None:
                s.update = self.expr(s.update)
            s.body = self.stmt(s.body)
            self.pop()
            return s
        if isinstance(s, ast.Return):
            if s.value is not None:
                s.value = self.expr(s.value)
            return s
        return s

    # -- expressions ---------------------------------------------------------

    def expr(self, e: ast.Expr) -> ast.Expr:
        if isinstance(e, ast.Lit):
            return e
        if isinstance(e, ast.This):
            return e
        if isinstance(e, ast.Var):
            if self.in_scope(e.name):
                return e
            if self.is_field(e.name):
                return ast.FieldGet(ast.This(e.pos), e.name, e.pos)
            raise ResolveError(
                f"unknown name {e.name!r} at {e.pos[0]}:{e.pos[1]} "
                f"in {'.'.join(self.ctx)}",
                code="JNS-RESOLVE-001",
                span=Span.from_pos(e.pos),
            )
        if isinstance(e, ast.FieldGet):
            if isinstance(e.obj, ast.Var) and e.obj.name == "Sys":
                if e.name in SYS_CONSTANTS:
                    return ast.SysCall(e.name, [], e.pos)
                raise ResolveError(
                    f"unknown Sys constant {e.name!r}",
                    code="JNS-RESOLVE-003",
                    span=Span.from_pos(e.pos),
                )
            e.obj = self.expr(e.obj)
            return e
        if isinstance(e, ast.Call):
            if e.obj is None:
                e.obj = ast.This(e.pos)
            elif isinstance(e.obj, ast.Var) and e.obj.name == "Sys":
                if e.name not in SYS_FUNCTIONS:
                    raise ResolveError(
                        f"unknown Sys function {e.name!r}",
                        code="JNS-RESOLVE-003",
                        span=Span.from_pos(e.pos),
                    )
                return ast.SysCall(e.name, [self.expr(a) for a in e.args], e.pos)
            else:
                e.obj = self.expr(e.obj)
            e.args = [self.expr(a) for a in e.args]
            return e
        if isinstance(e, ast.SysCall):
            e.args = [self.expr(a) for a in e.args]
            return e
        if isinstance(e, ast.NewObj):
            e.type = self.rtype(e.type)
            e.args = [self.expr(a) for a in e.args]
            return e
        if isinstance(e, ast.NewArray):
            e.elem_type = self.rtype(e.elem_type)
            e.length = self.expr(e.length)
            return e
        if isinstance(e, ast.Index):
            e.arr = self.expr(e.arr)
            e.idx = self.expr(e.idx)
            return e
        if isinstance(e, ast.Unary):
            e.operand = self.expr(e.operand)
            return e
        if isinstance(e, ast.Binary):
            e.left = self.expr(e.left)
            e.right = self.expr(e.right)
            return e
        if isinstance(e, ast.Cond):
            e.cond = self.expr(e.cond)
            e.then = self.expr(e.then)
            e.els = self.expr(e.els)
            return e
        if isinstance(e, ast.Cast):
            e.type = self.rtype(e.type)
            e.expr = self.expr(e.expr)
            return e
        if isinstance(e, ast.ViewChange):
            e.type = self.rtype(e.type)
            e.expr = self.expr(e.expr)
            return e
        if isinstance(e, ast.InstanceOf):
            e.expr = self.expr(e.expr)
            e.type = self.rtype(e.type)
            return e
        if isinstance(e, ast.Assign):
            e.target = self.expr(e.target)
            e.value = self.expr(e.value)
            return e
        raise ResolveError(f"unknown expression form {e!r}")


def _resolve_member(member, table: ClassTable, path: Path) -> None:
    if isinstance(member, ast.FieldDecl):
        member.type = resolve_type(member.type, table, path)
        if member.init is not None:
            resolver = BodyResolver(table, path)
            resolver.push()
            member.init = resolver.expr(member.init)
            resolver.pop()
    elif isinstance(member, ast.MethodDecl):
        member.ret_type = resolve_type(member.ret_type, table, path)
        resolver = BodyResolver(table, path)
        resolver.push()
        for param in member.params:
            param.type = resolve_type(param.type, table, path)
            resolver.declare(param.name)
        for constraint in member.constraints:
            constraint.left = resolve_type(constraint.left, table, path)
            constraint.right = resolve_type(constraint.right, table, path)
        if member.body is not None:
            member.body = resolver.stmt(member.body)
        resolver.pop()
    elif isinstance(member, ast.CtorDecl):
        resolver = BodyResolver(table, path)
        resolver.push()
        for param in member.params:
            param.type = resolve_type(param.type, table, path)
            resolver.declare(param.name)
        member.body = resolver.stmt(member.body)
        resolver.pop()


def resolve_program(
    table: ClassTable, sink: Optional[DiagnosticSink] = None
) -> Set[Path]:
    """Resolve every explicit class in the table: extends/shares clauses
    (done lazily by the table), member types, and bodies.

    Without a ``sink``, the first resolution error raises (historical
    behavior).  With one, errors are accumulated per *member* so a
    single pass reports every unresolved name, and the set of class
    paths that failed is returned so the type checker can skip them
    (their ASTs are only partially resolved).
    """
    if not TRACER.enabled:
        return _resolve_program(table, sink)
    with TRACER.span("resolve", classes=len(table.explicit)):
        return _resolve_program(table, sink)


def _resolve_program(
    table: ClassTable, sink: Optional[DiagnosticSink] = None
) -> Set[Path]:
    failed: Set[Path] = set()
    for path, info in list(table.explicit.items()):
        decl = info.decl
        for member in decl.members:
            if sink is None:
                _resolve_member(member, table, path)
                continue
            try:
                _resolve_member(member, table, path)
            except JnsError as exc:
                sink.add_exc(exc, where=path_str(path))
                # Mark the member so the type checker skips it (its AST
                # is only partially resolved); sibling members still get
                # checked, so independent errors all surface in one pass.
                member._resolve_failed = True
                failed.add(path)
    return failed
