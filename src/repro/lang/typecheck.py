"""The J&s static checker.

Implements the practical analogue of the paper's static semantics:

* expression and statement typing (Fig. 10's T-rules) with the
  flow-sensitive masked-type analysis of Section 6.1 — each method is
  checked with a per-program-point environment where assignments to
  ``x.f`` remove the mask on ``f`` (the ``grant`` function);
* program typing (Fig. 15): field initializers, method bodies, overriding
  arity conformance, sharing-declaration legality (L-OK: the shares target
  must be a further-bound ancestor; unmasked fields of shared classes must
  have shared interpreted types);
* sharing-constraint well-formedness (Q-OK) at the declaring class *and*
  at every class that inherits the method, so that "base family methods
  whose sharing constraints do not hold must be overridden" (Section 2.5);
* view-change checking (T-VIEW): every ``(view T)e`` needs an enabling
  sharing judgment — a constraint in scope, or (flagged as a modularity
  warning, rejected under ``strict_sharing``) the global closed-world
  SH-CLS check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..diagnostics import Diagnostic, Span
from ..obs import TRACER
from ..source import ast
from . import types as T
from .classtable import ClassTable, JnsError, ResolveError, TypeError_, path_str
from .provenance import PROVENANCE as _PROV
from .queries import MISS, CacheStats, collect_stats, read_input, reset_tracker
from .sharing import SharingChecker
from .subtype import Env, substitute_this, subtype
from .types import ClassType, Path, Type

_NUMERIC = (T.INT, T.DOUBLE)

#: Native library signatures: name -> (param kinds, return type).
#: "num" accepts int or double and influences the return type of
#: numeric-polymorphic functions.
_SYS_SIGS: Dict[str, Tuple[Tuple[str, ...], object]] = {
    "print": (("any",), T.VOID),
    "println": (("any",), T.VOID),
    "sqrt": (("num",), T.DOUBLE),
    "abs": (("num",), "num"),
    "fabs": (("num",), T.DOUBLE),
    "min": (("num", "num"), "num"),
    "max": (("num", "num"), "num"),
    "floor": (("num",), T.DOUBLE),
    "ceil": (("num",), T.DOUBLE),
    "pow": (("num", "num"), T.DOUBLE),
    "sin": (("num",), T.DOUBLE),
    "cos": (("num",), T.DOUBLE),
    "tan": (("num",), T.DOUBLE),
    "asin": (("num",), T.DOUBLE),
    "acos": (("num",), T.DOUBLE),
    "atan": (("num",), T.DOUBLE),
    "atan2": (("num", "num"), T.DOUBLE),
    "log": (("num",), T.DOUBLE),
    "exp": (("num",), T.DOUBLE),
    "intOf": (("num",), T.INT),
    "doubleOf": (("num",), T.DOUBLE),
    "str": (("any",), T.STRING),
    "strLen": ((T.STRING,), T.INT),
    "charAt": ((T.STRING, T.INT), T.STRING),
    "substring": ((T.STRING, T.INT, T.INT), T.STRING),
    "parseInt": ((T.STRING,), T.INT),
    "fail": ((T.STRING,), T.VOID),
    "identityHash": (("any",), T.INT),
    "viewName": (("any",), T.STRING),
    "PI": ((), T.DOUBLE),
    "E": ((), T.DOUBLE),
    "MAX_INT": ((), T.INT),
    "MIN_INT": ((), T.INT),
    "MAX_DOUBLE": ((), T.DOUBLE),
}


@dataclass
class CheckReport:
    errors: List[Diagnostic] = field(default_factory=list)
    warnings: List[Diagnostic] = field(default_factory=list)
    #: snapshot of the table/sharing query caches after checking
    #: (populated by :func:`check_program`; None for hand-built reports)
    cache_stats: Optional[CacheStats] = None

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_on_error(self) -> None:
        if self.errors:
            lines = "\n".join(str(e) for e in self.errors)
            raise TypeError_(f"type checking failed:\n{lines}")


class _MethodCtx:
    """Per-method checking state: declared types of locals, return type."""

    def __init__(self, ret: Type) -> None:
        self.declared: Dict[str, Type] = {}
        self.ret = ret


class TypeChecker:
    def __init__(
        self,
        table: ClassTable,
        strict_sharing: bool = False,
        skip: Iterable[Path] = (),
        explain: bool = False,
    ) -> None:
        self.table = table
        # The table-persistent checker: sharing caches (and their stats)
        # survive across checks and revalidate per-class after edits.
        self.sharing = table.sharing_checker()
        self.strict_sharing = strict_sharing
        self.skip = frozenset(skip)
        #: When true (``check --explain``), failing sharing judgments are
        #: recorded via :mod:`repro.lang.provenance` and their refutation
        #: trees attached to the resulting diagnostics.
        self.explain = explain
        self.report = CheckReport()

    # ------------------------------------------------------------------

    def error(
        self,
        where: str,
        message: str,
        code: str = "JNS-TYPE-001",
        pos=None,
        span: Optional[Span] = None,
        explain=None,
        notes: Iterable[str] = (),
    ) -> None:
        if span is None:
            span = Span.from_pos(pos)
        self.report.errors.append(
            Diagnostic(
                code,
                "error",
                message,
                span=span,
                where=where,
                notes=list(notes),
                explain=explain,
            )
        )

    def _refutation(self, cap) -> Tuple[Optional[dict], List[str]]:
        """Build the diagnostic payload from a provenance capture: the
        serialized refutation tree plus human-readable note lines (empty
        when recording was off or nothing failed)."""
        failed = cap.failed()
        if failed is None:
            return None, []
        ref = failed.refutation()
        if ref is None:
            return None, []
        lines = ref.format().splitlines()
        if len(lines) > 12:
            lines = lines[:12] + [f"... ({len(lines) - 12} more premise lines)"]
        return ref.to_dict(), ["refutation:"] + ["  " + l for l in lines]

    def warn(
        self,
        where: str,
        message: str,
        code: str = "JNS-TYPE-001",
        pos=None,
        span: Optional[Span] = None,
    ) -> None:
        if span is None:
            span = Span.from_pos(pos)
        self.report.warnings.append(
            Diagnostic(code, "warning", message, span=span, where=where)
        )

    def _error_exc(self, where: str, exc: Exception, pos=None) -> None:
        """Record a raised JnsError, preserving its code/span when present."""
        code = getattr(exc, "code", None) or "JNS-TYPE-001"
        span = getattr(exc, "span", None)
        if span is None:
            span = Span.from_pos(pos)
        self.error(where, str(exc), code=code, span=span)

    def check_program(self) -> CheckReport:
        reset_tracker()
        # P-OK: the inheritance relation must be acyclic
        for path in list(self.table.explicit):
            try:
                ancestors = self.table.ancestors(path)
            except (ResolveError, JnsError) as exc:
                self._error_exc(path_str(path), exc)
                return self.report
            for other in ancestors[1:]:
                if path in self.table.ancestors(other):
                    self.error(
                        path_str(path),
                        f"cyclic inheritance with {path_str(other)}",
                        code="JNS-TYPE-002",
                    )
                    return self.report
        with TRACER.span("build_sharing"):
            self.table._build_sharing()
        for path in self.table.explicit:
            if path in self.skip:
                continue
            errors, warnings = self.class_report(path)
            self.report.errors.extend(errors)
            self.report.warnings.extend(warnings)
        self._check_inherited_constraints()
        return self.report

    def _cacheable(self) -> bool:
        """Per-class results may come from (or go to) the memo table only
        when nothing run-specific can leak into them: no derivation
        recording (``--explain`` attaches refutation payloads built only
        while recording) and no skip set (mirrors the recorded/plain dual
        paths of the judgment caches)."""
        return not self.explain and not _PROV.enabled and not self.skip

    def class_report(
        self, path: Path
    ) -> Tuple[Tuple[Diagnostic, ...], Tuple[Diagnostic, ...]]:
        """L-OK for one class as an order-independent, memoizable unit
        (the co-contextual restructuring): returns the (errors, warnings)
        this class contributes.  Cached on the table's engine keyed by
        class path, with dependencies captured against the versioned
        inputs — an edit re-checks only classes whose inputs changed."""
        q = self.table.queries.query("check_class")
        key = (path, self.strict_sharing)
        cacheable = self._cacheable()
        if cacheable:
            cached = q.get(key)
            if cached is not MISS:
                return cached
        read_input(("iface", path))
        read_input(("body", path))
        saved = self.report
        self.report = CheckReport()
        try:
            info = self.table.explicit[path]
            try:
                if TRACER.enabled:
                    with TRACER.span("check_class", unit=path_str(path)):
                        self.check_class(path, info)
                else:
                    self.check_class(path, info)
            except (ResolveError, TypeError_, JnsError) as exc:
                self._error_exc(path_str(path), exc)
            result = (tuple(self.report.errors), tuple(self.report.warnings))
        finally:
            self.report = saved
        if cacheable:
            q.put(key, result)
        return result

    def inherited_report(self, path: Path) -> Tuple[Diagnostic, ...]:
        """Q-OK at one inheriting class (see
        :meth:`_check_inherited_constraints`), memoized like
        :meth:`class_report`."""
        q = self.table.queries.query("inherited_ok")
        key = (path, self.strict_sharing)
        cacheable = self._cacheable()
        if cacheable:
            cached = q.get(key)
            if cached is not MISS:
                return cached
        read_input(("iface", path))
        saved = self.report
        self.report = CheckReport()
        try:
            self._check_inherited_at(path)
            result = tuple(self.report.errors)
        finally:
            self.report = saved
        if cacheable:
            q.put(key, result)
        return result

    # ------------------------------------------------------------------
    # classes (L-OK)
    # ------------------------------------------------------------------

    def check_class(self, path: Path, info) -> None:
        where = path_str(path)
        decl = info.decl
        target = self.table.share_target(path)
        if target != path:
            # Only an overriding class may share the class it overrides
            # (Section 2.2): the target must be a further-bound ancestor.
            if not self.table.inherits(path, target):
                self.error(
                    where,
                    f"shares target {path_str(target)} is not an ancestor",
                    code="JNS-TYPE-013",
                )
            elif target[-1:] != path[-1:]:
                self.warn(
                    where,
                    f"shares target {path_str(target)} has a different member "
                    "name; sharing is intended for overriding classes",
                    code="JNS-TYPE-013",
                )
            self._check_share_masks(path, target)
        for member in decl.members:
            if getattr(member, "_resolve_failed", False):
                continue  # partially resolved; its error is already reported
            try:
                if isinstance(member, ast.FieldDecl):
                    self._check_field(path, member)
                elif isinstance(member, ast.MethodDecl):
                    self._check_method(path, member)
                elif isinstance(member, ast.CtorDecl):
                    self._check_ctor(path, member)
            except (ResolveError, TypeError_, JnsError) as exc:
                self._error_exc(where, exc, pos=getattr(member, "pos", None))
            except Exception as exc:  # internal guard: a partially resolved
                # sibling can leak surface TypeASTs into this member's
                # types; report instead of crashing the whole check.
                self.error(
                    where,
                    f"internal checker error: {type(exc).__name__}: {exc}",
                    code="JNS-GEN-000",
                    pos=getattr(member, "pos", None),
                )
        self._check_overrides(path, decl)

    def _check_share_masks(self, path: Path, target: Path) -> None:
        """L-OK: every unmasked field of the shared class must have shared
        interpreted types in both families; final fields cannot be
        masked."""
        where = path_str(path)
        masks = self.table.share_masks(path)
        for owner, fdecl in self.table.all_fields(target):
            if fdecl.final and fdecl.name in masks:
                self.error(
                    where,
                    f"final field {fdecl.name!r} may not be masked in shares",
                    code="JNS-TYPE-013",
                )
            if fdecl.name in masks:
                continue
            if not isinstance(fdecl.type, T.Type):
                continue  # unresolved (an error reported elsewhere)
            if not T.paths_in(fdecl.type):
                continue  # non-dependent: identical in both families
            try:
                t_here = self.table.eval_type_static(fdecl.type, this=path).pure()
                t_there = self.table.eval_type_static(fdecl.type, this=target).pure()
            except (ResolveError, JnsError):
                continue
            if not isinstance(t_here, ClassType) or not isinstance(t_there, ClassType):
                continue
            # lenient: new fields in the derived family are governed by the
            # deferred-initialization discipline (see SharingChecker)
            with _PROV.capture() as cap:
                ok = self.sharing.type_shares(
                    t_here, t_there, frozenset(), lenient=True
                ) and self.sharing.type_shares(
                    t_there, t_here, frozenset(), lenient=True
                )
            if not ok:
                explain, notes = self._refutation(cap)
                self.error(
                    where,
                    f"field {fdecl.name!r} has unshared interpreted types "
                    f"({t_here!r} vs {t_there!r}) and must be masked in the "
                    "shares clause (Section 3.1)",
                    code="JNS-TYPE-013",
                    pos=getattr(fdecl, "pos", None),
                    explain=explain,
                    notes=notes,
                )

    def _check_overrides(self, path: Path, decl: ast.ClassDecl) -> None:
        where = path_str(path)
        for method in decl.methods:
            for sup in self.table.ancestors(path)[1:]:
                sup_info = self.table.iface_info(sup)
                if sup_info is None:
                    continue
                for other in sup_info.decl.methods:
                    if other.name == method.name and len(other.params) != len(
                        method.params
                    ):
                        self.error(
                            where,
                            f"method {method.name!r} overrides "
                            f"{path_str(sup)}.{other.name} with different arity",
                            code="JNS-TYPE-016",
                            pos=getattr(method, "pos", None),
                        )

    def _check_inherited_constraints(self) -> None:
        """Q-OK at every inheriting class: the method implementation
        selected for each class must have constraints that hold there."""
        for path in self.table.all_class_paths():
            self.report.errors.extend(self.inherited_report(path))

    def _check_inherited_at(self, path: Path) -> None:
        for name in self.table.all_method_names(path):
            found = self.table.find_method(path, name)
            if found is None:
                continue
            owner, decl = found
            for constraint in decl.constraints:
                if not isinstance(constraint.left, T.Type):
                    continue
                with _PROV.capture() as cap:
                    holds = self._constraint_holds(path, constraint)
                if not holds:
                    explain, notes = self._refutation(cap)
                    self.error(
                        path_str(path),
                        f"sharing constraint of inherited method "
                        f"{path_str(owner)}.{name} does not hold in this "
                        "family; the method must be overridden "
                        "(Section 2.5)",
                        code="JNS-TYPE-012",
                        explain=explain,
                        notes=notes,
                    )

    def _constraint_holds(self, ctx: Path, constraint: ast.SharingConstraint) -> bool:
        try:
            left = self.table.eval_type_static(constraint.left, this=ctx)
            right = self.table.eval_type_static(constraint.right, this=ctx)
        except (ResolveError, JnsError):
            return False
        lp, rp = left.pure(), right.pure()
        if not isinstance(lp, ClassType) or not isinstance(rp, ClassType):
            return False
        return self.sharing.type_shares(
            lp, rp, right.masks
        ) and self.sharing.type_shares(rp, lp, left.masks)

    # ------------------------------------------------------------------
    # members
    # ------------------------------------------------------------------

    def _base_env(self, path: Path, constraints=()) -> Env:
        env = Env(self.table, path)
        env.vars["this"] = ClassType(path)
        env.constraints = [
            (c.left, c.right)
            for c in constraints
            if isinstance(c.left, T.Type) and isinstance(c.right, T.Type)
        ]
        return env

    def _check_field(self, path: Path, decl: ast.FieldDecl) -> None:
        where = f"{path_str(path)}.{decl.name}"
        if decl.init is None:
            return
        env = self._base_env(path)
        ctx = _MethodCtx(T.VOID)
        t = self.type_expr(decl.init, env, ctx, where)
        if t is not None and not subtype(env, t, decl.type):
            self.error(
                where,
                f"initializer type {t!r} is not a {decl.type!r}",
                code="JNS-TYPE-003",
                pos=getattr(decl, "pos", None),
            )

    def _check_ctor(self, path: Path, decl: ast.CtorDecl) -> None:
        where = f"{path_str(path)}.{decl.name}(ctor)"
        env = self._base_env(path)
        ctx = _MethodCtx(T.VOID)
        for param in decl.params:
            env.vars[param.name] = param.type
            ctx.declared[param.name] = param.type
        self.check_stmt(decl.body, env, ctx, where)

    def _check_method(self, path: Path, decl: ast.MethodDecl) -> None:
        where = f"{path_str(path)}.{decl.name}"
        # Q-OK at the declaring class
        for constraint in decl.constraints:
            if isinstance(constraint.left, T.Type):
                with _PROV.capture() as cap:
                    holds = self._constraint_holds(path, constraint)
                if not holds:
                    explain, notes = self._refutation(cap)
                    self.error(
                        where,
                        f"sharing constraint {constraint.left!r} = "
                        f"{constraint.right!r} does not hold",
                        code="JNS-TYPE-012",
                        pos=getattr(decl, "pos", None),
                        explain=explain,
                        notes=notes,
                    )
        if decl.body is None:
            if not decl.abstract:
                self.error(
                    where,
                    "non-abstract method has no body",
                    pos=getattr(decl, "pos", None),
                )
            return
        env = self._base_env(path, decl.constraints)
        ctx = _MethodCtx(decl.ret_type)
        for param in decl.params:
            env.vars[param.name] = param.type
            ctx.declared[param.name] = param.type
        self.check_stmt(decl.body, env, ctx, where)

    # ------------------------------------------------------------------
    # statements (flow-sensitive: env.vars is mutated; branches use copies)
    # ------------------------------------------------------------------

    def check_stmt(self, s: ast.Stmt, env: Env, ctx: _MethodCtx, where: str) -> None:
        if isinstance(s, ast.Block):
            for inner in s.stmts:
                self.check_stmt(inner, env, ctx, where)
            return
        if isinstance(s, ast.LocalDecl):
            if s.name in env.vars:
                self.error(
                    where,
                    f"duplicate local variable {s.name!r}",
                    code="JNS-TYPE-009",
                    pos=s.pos,
                )
            t = s.type
            if s.init is not None:
                t_init = self.type_expr(s.init, env, ctx, where)
                if t_init is not None and not subtype(env, t_init, t):
                    self.error(
                        where,
                        f"cannot initialize {s.name}: {t_init!r} is not a {t!r}",
                        code="JNS-TYPE-003",
                        pos=s.pos,
                    )
                if t_init is not None and t_init.masks and not t.masks:
                    # keep flow masks from the initializer (view targets)
                    t = t.with_masks(t_init.masks)
            env.vars[s.name] = t
            ctx.declared[s.name] = s.type
            return
        if isinstance(s, ast.ExprStmt):
            self.type_expr(s.expr, env, ctx, where)
            return
        if isinstance(s, ast.If):
            self._check_bool(s.cond, env, ctx, where)
            env_then = env.copy()
            env_else = env.copy()
            self.check_stmt(s.then, env_then, ctx, where)
            if s.els is not None:
                self.check_stmt(s.els, env_else, ctx, where)
            # join: a mask is removed only if removed on both paths
            for name in env.vars:
                t_then = env_then.vars.get(name, env.vars[name])
                t_else = env_else.vars.get(name, env.vars[name])
                joined_masks = t_then.masks | t_else.masks
                env.vars[name] = t_then.pure().with_masks(joined_masks)
            return
        if isinstance(s, ast.While):
            self._check_bool(s.cond, env, ctx, where)
            body_env = env.copy()
            self.check_stmt(s.body, body_env, ctx, where)
            return  # conservatively keep the pre-loop environment
        if isinstance(s, ast.For):
            loop_env = env.copy()
            if s.init is not None:
                self.check_stmt(s.init, loop_env, ctx, where)
            if s.cond is not None:
                self._check_bool(s.cond, loop_env, ctx, where)
            body_env = loop_env.copy()
            self.check_stmt(s.body, body_env, ctx, where)
            if s.update is not None:
                self.type_expr(s.update, body_env, ctx, where)
            return
        if isinstance(s, ast.Return):
            if s.value is None:
                if ctx.ret != T.VOID:
                    self.error(
                        where,
                        "missing return value",
                        code="JNS-TYPE-004",
                        pos=s.pos,
                    )
                return
            t = self.type_expr(s.value, env, ctx, where)
            if t is not None and not subtype(env, t, ctx.ret):
                self.error(
                    where,
                    f"return type {t!r} is not a {ctx.ret!r}",
                    code="JNS-TYPE-004",
                    pos=s.pos,
                )
            return
        if isinstance(s, (ast.Break, ast.Continue, ast.Empty)):
            return
        self.error(where, f"unknown statement {s!r}")

    def _check_bool(self, e: ast.Expr, env: Env, ctx: _MethodCtx, where: str) -> None:
        t = self.type_expr(e, env, ctx, where)
        if t is not None and t.pure() != T.BOOLEAN:
            self.error(
                where,
                f"condition has type {t!r}, expected boolean",
                code="JNS-TYPE-005",
                pos=getattr(e, "pos", None),
            )

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def type_expr(
        self, e: ast.Expr, env: Env, ctx: _MethodCtx, where: str
    ) -> Optional[Type]:
        try:
            t = self._type_expr(e, env, ctx, where)
        except (ResolveError, TypeError_, JnsError) as exc:
            self._error_exc(where, exc, pos=getattr(e, "pos", None))
            return None
        e.rtype = t
        return t

    def _type_expr(self, e: ast.Expr, env: Env, ctx: _MethodCtx, where: str):
        if isinstance(e, ast.Lit):
            return {
                "int": T.INT,
                "double": T.DOUBLE,
                "boolean": T.BOOLEAN,
                "String": T.STRING,
                "null": T.NULL,
            }[e.kind]
        if isinstance(e, ast.This):
            this_t = env.vars["this"]
            return T.DepType(("this",)).with_masks(this_t.masks)
        if isinstance(e, ast.Var):
            t = env.lookup(e.name)
            if t is None:
                raise TypeError_(
                    f"unbound variable {e.name!r}",
                    code="JNS-TYPE-007",
                    span=Span.from_pos(e.pos),
                )
            return t
        if isinstance(e, ast.FieldGet):
            t_obj = self.type_expr(e.obj, env, ctx, where)
            if t_obj is None:
                return None
            if isinstance(t_obj.pure(), T.ArrayType) and e.name == "length":
                return T.INT
            return env.field_type(t_obj, e.name)
        if isinstance(e, ast.SysCall):
            return self._type_sys(e, env, ctx, where)
        if isinstance(e, ast.Call):
            t_obj = self.type_expr(e.obj, env, ctx, where)
            if t_obj is None:
                return None
            if t_obj.masks:
                raise TypeError_(
                    f"cannot call {e.name!r} on a value with masked fields "
                    f"({sorted(t_obj.masks)}); initialize them first",
                    code="JNS-TYPE-011",
                    span=Span.from_pos(e.pos),
                )
            sig = env.method_sig(t_obj, e.name)
            if sig is None:
                raise TypeError_(
                    f"no method {e.name!r} on {t_obj!r}",
                    code="JNS-TYPE-007",
                    span=Span.from_pos(e.pos),
                )
            params, ret, decl, owner = sig
            if len(params) != len(e.args):
                raise TypeError_(
                    f"{e.name!r} expects {len(params)} arguments, got {len(e.args)}",
                    code="JNS-TYPE-006",
                    span=Span.from_pos(e.pos),
                )
            for i, (param_t, arg) in enumerate(zip(params, e.args)):
                t_arg = self.type_expr(arg, env, ctx, where)
                if t_arg is not None and not subtype(env, t_arg, param_t):
                    self.error(
                        where,
                        f"argument {i + 1} of {e.name!r}: {t_arg!r} is not a "
                        f"{param_t!r}",
                        code="JNS-TYPE-006",
                        pos=getattr(arg, "pos", None),
                    )
            return ret
        if isinstance(e, ast.NewObj):
            t = e.type
            bound = env.bound(t).pure()
            cls = env._single_class(bound)
            if not self.table.class_exists(cls.path):
                raise TypeError_(
                    f"no such class {cls!r}",
                    code="JNS-TYPE-010",
                    span=Span.from_pos(e.pos),
                )
            info = self.table.iface_info(cls.path)
            if info is not None and info.decl.abstract:
                self.error(
                    where,
                    f"cannot instantiate abstract class {cls!r}",
                    code="JNS-TYPE-010",
                    pos=e.pos,
                )
            ctor = self.table.find_ctor(cls.path, len(e.args))
            if ctor is None:
                if e.args:
                    self.error(
                        where,
                        f"no {len(e.args)}-argument constructor for {cls!r}",
                        code="JNS-TYPE-006",
                        pos=e.pos,
                    )
            else:
                _, ctor_decl = ctor
                for i, (param, arg) in enumerate(zip(ctor_decl.params, e.args)):
                    t_arg = self.type_expr(arg, env, ctx, where)
                    param_t = substitute_this(param.type, T.make_exact(t), env)
                    if t_arg is not None and not subtype(env, t_arg, param_t):
                        self.error(
                            where,
                            f"constructor argument {i + 1}: {t_arg!r} is not a "
                            f"{param_t!r}",
                            code="JNS-TYPE-006",
                            pos=getattr(arg, "pos", None),
                        )
            return T.make_exact(t)
        if isinstance(e, ast.NewArray):
            t_len = self.type_expr(e.length, env, ctx, where)
            if t_len is not None and t_len.pure() != T.INT:
                self.error(
                    where,
                    f"array length has type {t_len!r}",
                    code="JNS-TYPE-005",
                    pos=e.pos,
                )
            return T.ArrayType(e.elem_type)
        if isinstance(e, ast.Index):
            t_arr = self.type_expr(e.arr, env, ctx, where)
            t_idx = self.type_expr(e.idx, env, ctx, where)
            if t_idx is not None and t_idx.pure() != T.INT:
                self.error(
                    where,
                    f"array index has type {t_idx!r}",
                    code="JNS-TYPE-005",
                    pos=e.pos,
                )
            if t_arr is None:
                return None
            arr_pure = t_arr.pure()
            if not isinstance(arr_pure, T.ArrayType):
                raise TypeError_(
                    f"indexing non-array type {t_arr!r}",
                    code="JNS-TYPE-005",
                    span=Span.from_pos(e.pos),
                )
            return arr_pure.elem
        if isinstance(e, ast.Unary):
            t = self.type_expr(e.operand, env, ctx, where)
            if t is None:
                return None
            if e.op == "!":
                if t.pure() != T.BOOLEAN:
                    self.error(
                        where, f"! applied to {t!r}", code="JNS-TYPE-005", pos=e.pos
                    )
                return T.BOOLEAN
            if t.pure() not in _NUMERIC:
                self.error(
                    where, f"unary - applied to {t!r}", code="JNS-TYPE-005", pos=e.pos
                )
            return t.pure()
        if isinstance(e, ast.Binary):
            return self._type_binary(e, env, ctx, where)
        if isinstance(e, ast.Cond):
            self._check_bool(e.cond, env, ctx, where)
            t1 = self.type_expr(e.then, env, ctx, where)
            t2 = self.type_expr(e.els, env, ctx, where)
            if t1 is None or t2 is None:
                return t1 or t2
            if subtype(env, t1, t2):
                return t2
            if subtype(env, t2, t1):
                return t1
            if t1.pure() in _NUMERIC and t2.pure() in _NUMERIC:
                return T.DOUBLE
            self.error(
                where,
                f"incompatible ternary branches: {t1!r} vs {t2!r}",
                code="JNS-TYPE-005",
                pos=e.pos,
            )
            return t1
        if isinstance(e, ast.Cast):
            t_src = self.type_expr(e.expr, env, ctx, where)
            target = e.type
            if t_src is not None:
                src_pure = t_src.pure()
                tgt_pure = target.pure()
                if isinstance(src_pure, T.PrimType) and src_pure in _NUMERIC:
                    if tgt_pure not in _NUMERIC:
                        self.error(
                            where,
                            f"cannot cast {t_src!r} to {target!r}",
                            code="JNS-TYPE-015",
                            pos=e.pos,
                        )
            return target
        if isinstance(e, ast.ViewChange):
            t_src = self.type_expr(e.expr, env, ctx, where)
            target = e.type
            if t_src is not None:
                with _PROV.capture() as cap:
                    holds, how = self.sharing.sharing_judgment(
                        env, t_src, target, allow_global=not self.strict_sharing
                    )
                if not holds:
                    explain, notes = self._refutation(cap)
                    self.error(
                        where,
                        f"view change to {target!r} is not justified by any "
                        f"sharing relationship from {t_src!r} "
                        "(add a sharing constraint, Section 2.5)",
                        code="JNS-TYPE-014",
                        pos=e.pos,
                        explain=explain,
                        notes=notes,
                    )
                elif how == "global":
                    self.warn(
                        where,
                        f"view change to {target!r} relies on the global "
                        "closed world, not a constraint in scope",
                        code="JNS-TYPE-014",
                        pos=e.pos,
                    )
            return target
        if isinstance(e, ast.InstanceOf):
            self.type_expr(e.expr, env, ctx, where)
            return T.BOOLEAN
        if isinstance(e, ast.Assign):
            return self._type_assign(e, env, ctx, where)
        raise TypeError_(f"unknown expression {e!r}")

    def _type_binary(self, e: ast.Binary, env: Env, ctx: _MethodCtx, where: str):
        t1 = self.type_expr(e.left, env, ctx, where)
        t2 = self.type_expr(e.right, env, ctx, where)
        if t1 is None or t2 is None:
            return None
        p1, p2 = t1.pure(), t2.pure()
        op = e.op
        if op in ("&&", "||"):
            if p1 != T.BOOLEAN or p2 != T.BOOLEAN:
                self.error(
                    where,
                    f"{op} applied to {t1!r}, {t2!r}",
                    code="JNS-TYPE-005",
                    pos=e.pos,
                )
            return T.BOOLEAN
        if op in ("==", "!="):
            return T.BOOLEAN
        if op == "+" and (p1 == T.STRING or p2 == T.STRING):
            return T.STRING
        if op in ("+", "-", "*", "/", "%"):
            if p1 not in _NUMERIC or p2 not in _NUMERIC:
                self.error(
                    where,
                    f"{op} applied to {t1!r}, {t2!r}",
                    code="JNS-TYPE-005",
                    pos=e.pos,
                )
                return T.INT
            return T.DOUBLE if T.DOUBLE in (p1, p2) else T.INT
        if op in ("<", "<=", ">", ">="):
            if p1 not in _NUMERIC or p2 not in _NUMERIC:
                self.error(
                    where,
                    f"{op} applied to {t1!r}, {t2!r}",
                    code="JNS-TYPE-005",
                    pos=e.pos,
                )
            return T.BOOLEAN
        raise TypeError_(
            f"unknown operator {op!r}",
            code="JNS-TYPE-005",
            span=Span.from_pos(e.pos),
        )

    def _type_assign(self, e: ast.Assign, env: Env, ctx: _MethodCtx, where: str):
        t_val = self.type_expr(e.value, env, ctx, where)
        target = e.target
        if e.op != "=":
            # compound assignment: target must be numeric (or String +=)
            t_tgt = self.type_expr(target, env, ctx, where)
            if t_tgt is not None:
                p = t_tgt.pure()
                if e.op == "+=" and p == T.STRING:
                    return T.STRING
                if p not in _NUMERIC:
                    self.error(
                        where,
                        f"{e.op} applied to {t_tgt!r}",
                        code="JNS-TYPE-005",
                        pos=e.pos,
                    )
                if (
                    t_val is not None
                    and p == T.INT
                    and t_val.pure() == T.DOUBLE
                ):
                    self.error(
                        where,
                        "possible lossy double-to-int assignment",
                        code="JNS-TYPE-015",
                        pos=e.pos,
                    )
                return p
            return None
        if isinstance(target, ast.Var):
            declared = ctx.declared.get(target.name, env.lookup(target.name))
            if declared is None:
                raise TypeError_(
                    f"unbound variable {target.name!r}",
                    code="JNS-TYPE-007",
                    span=Span.from_pos(target.pos),
                )
            if t_val is not None:
                if not subtype(env, t_val, declared.pure().with_masks(t_val.masks)):
                    self.error(
                        where,
                        f"cannot assign {t_val!r} to {target.name}: {declared!r}",
                        code="JNS-TYPE-008",
                        pos=e.pos,
                    )
                env.vars[target.name] = declared.pure().with_masks(t_val.masks)
            return t_val
        if isinstance(target, ast.FieldGet):
            t_obj = self.type_expr(target.obj, env, ctx, where)
            if t_obj is None:
                return t_val
            obj_pure = t_obj.pure()
            if isinstance(obj_pure, T.ArrayType):
                raise TypeError_(
                    "array length is not assignable",
                    code="JNS-TYPE-008",
                    span=Span.from_pos(e.pos),
                )
            # field type for writing ignores the mask on the receiver
            ftype = env.field_type(obj_pure, target.name)
            if t_val is not None and not subtype(env, t_val, ftype):
                self.error(
                    where,
                    f"cannot assign {t_val!r} to field {target.name!r}: {ftype!r}",
                    code="JNS-TYPE-008",
                    pos=e.pos,
                )
            # grant: remove the mask (T-SET / R-SET)
            self._grant(target.obj, target.name, env)
            return t_val
        if isinstance(target, ast.Index):
            t_arr = self.type_expr(target.arr, env, ctx, where)
            self.type_expr(target.idx, env, ctx, where)
            if t_arr is not None:
                arr_pure = t_arr.pure()
                if not isinstance(arr_pure, T.ArrayType):
                    raise TypeError_(
                        f"indexing non-array type {t_arr!r}",
                        code="JNS-TYPE-005",
                        span=Span.from_pos(e.pos),
                    )
                if t_val is not None and not subtype(env, t_val, arr_pure.elem):
                    self.error(
                        where,
                        f"cannot store {t_val!r} into {arr_pure!r}",
                        code="JNS-TYPE-008",
                        pos=e.pos,
                    )
            return t_val
        raise TypeError_(
            "invalid assignment target",
            code="JNS-TYPE-008",
            span=Span.from_pos(e.pos),
        )

    def _grant(self, obj: ast.Expr, fname: str, env: Env) -> None:
        """Remove the mask on ``x.f`` / ``this.f`` after an assignment."""
        name: Optional[str] = None
        if isinstance(obj, ast.This):
            name = "this"
        elif isinstance(obj, ast.Var):
            name = obj.name
        if name is None:
            return
        t = env.lookup(name)
        if t is not None and fname in t.masks:
            env.vars[name] = t.pure().with_masks(t.masks - {fname})

    def _type_sys(self, e: ast.SysCall, env: Env, ctx: _MethodCtx, where: str):
        sig = _SYS_SIGS.get(e.name)
        if sig is None:
            raise TypeError_(
                f"unknown Sys function {e.name!r}",
                code="JNS-TYPE-007",
                span=Span.from_pos(e.pos),
            )
        param_kinds, ret = sig
        if len(param_kinds) != len(e.args):
            raise TypeError_(
                f"Sys.{e.name} expects {len(param_kinds)} arguments, got "
                f"{len(e.args)}",
                code="JNS-TYPE-006",
                span=Span.from_pos(e.pos),
            )
        numeric_widest: Type = T.INT
        for kind, arg in zip(param_kinds, e.args):
            t_arg = self.type_expr(arg, env, ctx, where)
            if t_arg is None:
                continue
            p = t_arg.pure()
            if kind == "num":
                if p not in _NUMERIC:
                    self.error(
                        where,
                        f"Sys.{e.name}: {t_arg!r} is not numeric",
                        code="JNS-TYPE-005",
                        pos=getattr(arg, "pos", None),
                    )
                elif p == T.DOUBLE:
                    numeric_widest = T.DOUBLE
            elif kind == "any":
                pass
            elif isinstance(kind, T.Type):
                if not subtype(env, t_arg, kind):
                    self.error(
                        where,
                        f"Sys.{e.name}: {t_arg!r} is not a {kind!r}",
                        code="JNS-TYPE-005",
                        pos=getattr(arg, "pos", None),
                    )
        if ret == "num":
            return numeric_widest
        return ret


def check_program(
    table: ClassTable,
    strict_sharing: bool = False,
    skip: Iterable[Path] = (),
    explain: bool = False,
) -> CheckReport:
    """Type-check a resolved program.

    ``skip`` names classes whose resolution failed; their (partially
    resolved) members are not checked, so one broken class does not
    drown the report in cascading errors.

    ``explain`` turns on derivation recording for the duration of the
    check (see :mod:`repro.lang.provenance`): failing sharing judgments
    (T-VIEW, Q-OK, L-OK) get their refutation trees attached to the
    resulting ``JNS-TYPE-012/013/014`` diagnostics.
    """
    checker = TypeChecker(
        table, strict_sharing=strict_sharing, skip=skip, explain=explain
    )
    was_recording = _PROV.enabled
    if explain and not was_recording:
        _PROV.enable()
    try:
        with TRACER.span("typecheck", classes=len(table.explicit)):
            report = checker.check_program()
    finally:
        if explain and not was_recording:
            _PROV.disable()
    report.cache_stats = collect_stats([table.queries, checker.sharing.queries])
    return report
