"""Family-graph extraction: the structure drawn in Figure 20.

Produces the inheritance edges (solid arrows in the paper's figure) and
sharing edges (dashed arrows) of a program, for tooling
(``python -m repro graph FILE``) and for structural assertions in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from .classtable import ClassTable, path_str
from .types import Path


@dataclass
class FamilyGraph:
    """Edges over class paths: direct inheritance (``@``) and the sharing
    relation restricted to declared/adapts pairs (share targets)."""

    classes: Tuple[Path, ...]
    inherit_edges: FrozenSet[Tuple[Path, Path]]  # (sub, super)
    share_edges: FrozenSet[Tuple[Path, Path]]  # (class, share target)

    def families(self) -> Tuple[Path, ...]:
        """Top-level classes that contain nested classes (the families)."""
        tops = []
        for path in self.classes:
            if len(path) == 1 and any(
                len(p) > 1 and p[0] == path[0] for p in self.classes
            ):
                tops.append(path)
        return tuple(tops)

    def to_text(self) -> str:
        """An ASCII rendering: one block per family, with edges."""
        lines: List[str] = []
        for fam in self.families():
            members = sorted(
                p for p in self.classes if len(p) == 2 and p[0] == fam[0]
            )
            sups = sorted(
                path_str(sup)
                for sub, sup in self.inherit_edges
                if sub == fam and len(sup) == 1
            )
            header = path_str(fam)
            if sups:
                header += " extends " + ", ".join(sups)
            lines.append(header)
            for member in members:
                notes = []
                for sub, sup in sorted(self.inherit_edges):
                    if sub == member and sup[0] == fam[0]:
                        notes.append(f"-> {path_str(sup)}")
                for cls, target in sorted(self.share_edges):
                    if cls == member:
                        notes.append(f"~~ shares {path_str(target)}")
                suffix = f"   {' '.join(notes)}" if notes else ""
                lines.append(f"  {member[-1]}{suffix}")
        return "\n".join(lines)

    def to_dot(self) -> str:
        """Graphviz output: solid = inheritance, dashed = sharing."""
        lines = ["digraph families {", "  rankdir=BT;"]
        for path in self.classes:
            lines.append(f'  "{path_str(path)}";')
        for sub, sup in sorted(self.inherit_edges):
            lines.append(f'  "{path_str(sub)}" -> "{path_str(sup)}";')
        for cls, target in sorted(self.share_edges):
            lines.append(
                f'  "{path_str(cls)}" -> "{path_str(target)}" [style=dashed];'
            )
        lines.append("}")
        return "\n".join(lines)


def family_graph(table: ClassTable, include_implicit: bool = True) -> FamilyGraph:
    """Extract the family graph of a compiled program."""
    table._build_sharing()
    if include_implicit:
        classes = table.all_class_paths()
    else:
        classes = tuple(table.explicit)
    class_set: Set[Path] = set(classes)
    inherit: Set[Tuple[Path, Path]] = set()
    share: Set[Tuple[Path, Path]] = set()
    for path in classes:
        for parent in table.parents(path):
            if parent in class_set:
                inherit.add((path, parent))
        target = table.share_target(path)
        if target != path:
            share.add((path, target))
    return FamilyGraph(tuple(classes), frozenset(inherit), frozenset(share))
