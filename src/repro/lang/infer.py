"""Sharing-constraint inference — the paper's Section 2.5 future work.

    "While it appears possible to automatically infer sharing
     constraints, by inspecting the type of the source expression and
     the target type of every view change operation in the method body,
     we leave this to future work."

This module implements exactly that: it type-checks each method while
recording, for every ``(view T)e`` that is not already justified by a
constraint in scope, the pair (static type of ``e``, ``T``).  The pairs
become inferred ``sharing`` constraints, which are validated (Q-OK) and
can be installed on the method declarations so that strict modular
checking passes without hand-written annotations.

Constraint well-formedness (Section 2.5) is respected: an inferred
constraint is kept only if both sides have an exact prefix and depend at
most on ``this``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..source import ast
from . import types as T
from .classtable import ClassTable, JnsError, path_str
from .typecheck import TypeChecker, _MethodCtx
from .types import Path, Type


@dataclass
class InferredConstraint:
    """One inferred ``sharing left = right`` clause."""

    cls: Path
    method: str
    left: Type
    right: Type

    def __str__(self) -> str:
        return (
            f"{path_str(self.cls)}.{self.method}: "
            f"sharing {self.left!r} = {self.right!r}"
        )


class _RecordingChecker(TypeChecker):
    """A TypeChecker that records view changes lacking an enabling
    constraint instead of merely warning about them."""

    def __init__(self, table: ClassTable) -> None:
        super().__init__(table, strict_sharing=False)
        self.recorded: List[Tuple[Path, str, Type, Type]] = []
        self._current: Tuple[Path, str] = ((), "?")

    def _check_method(self, path, decl):
        self._current = (path, decl.name)
        super()._check_method(path, decl)

    def _check_ctor(self, path, decl):
        self._current = (path, "<init>")
        super()._check_ctor(path, decl)

    def _check_field(self, path, decl):
        self._current = (path, f"<init:{decl.name}>")
        super()._check_field(path, decl)

    def _type_expr(self, e, env, ctx, where):
        if isinstance(e, ast.ViewChange):
            t_src = self.type_expr(e.expr, env, ctx, where)
            target = e.type
            if t_src is not None:
                holds, how = self.sharing.sharing_judgment(
                    env, t_src, target, allow_global=True
                )
                if holds and how == "global":
                    cls, method = self._current
                    self.recorded.append((cls, method, t_src, target))
            return target
        return super()._type_expr(e, env, ctx, where)


def _well_formed_constraint(left: Type, right: Type) -> bool:
    """Section 2.5: some prefix of each constraint type must be exact and
    the types may depend only on ``this``."""
    for t in (left, right):
        pure = t.pure()
        if not any(T.prefix_exact_k(pure, k) for k in range(0, 4)):
            return False
        if not T.depends_on_this_only(pure):
            return False
    return True


def infer_constraints(table: ClassTable) -> List[InferredConstraint]:
    """Run inference over every method; returns the constraints that would
    make all view changes modular."""
    checker = _RecordingChecker(table)
    checker.check_program()
    seen = set()
    out: List[InferredConstraint] = []
    for cls, method, left, right in checker.recorded:
        if not _well_formed_constraint(left, right):
            continue
        key = (cls, method, repr(left), repr(right))
        if key in seen:
            continue
        seen.add(key)
        out.append(InferredConstraint(cls, method, left, right))
    return out


def install_constraints(
    table: ClassTable, inferred: List[InferredConstraint]
) -> int:
    """Add inferred constraints to the method declarations (idempotent);
    returns the number of clauses added.  After installation the program
    passes ``strict_sharing`` checking without hand-written clauses."""
    by_method: Dict[Tuple[Path, str], List[InferredConstraint]] = {}
    for c in inferred:
        by_method.setdefault((c.cls, c.method), []).append(c)
    added = 0
    for (cls, method), constraints in by_method.items():
        info = table.explicit.get(cls)
        if info is None:
            continue
        for decl in info.decl.methods:
            if decl.name != method:
                continue
            existing = {
                (repr(c.left), repr(c.right))
                for c in decl.constraints
                if isinstance(c.left, T.Type)
            }
            for c in constraints:
                key = (repr(c.left), repr(c.right))
                if key in existing:
                    continue
                decl.constraints.append(
                    ast.SharingConstraint(c.left, c.right, (0, 0))
                )
                existing.add(key)
                added += 1
    return added
