"""Static semantics of J&s: types, class table, subtyping, sharing,
name resolution, and the type checker."""

from .classtable import ClassTable, JnsError, ResolveError, TypeError_
from .typecheck import CheckReport, check_program

__all__ = [
    "ClassTable",
    "JnsError",
    "ResolveError",
    "TypeError_",
    "CheckReport",
    "check_program",
]
