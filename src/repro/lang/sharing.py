"""Sharing judgments (Sections 2.5, 3, 4.11).

The key judgment is directional sharing ``Gamma |- T1 ~> T2``: a value of
static type T1 may be view-changed to T2.  It is established by:

* SH-REFL: subtyping (a no-op view change);
* SH-ENV: a sharing constraint ``sharing L = R`` in scope;
* SH-DECL / SH-CLS: the closed-world check — every subclass of the source
  has a *unique* shared subclass of the target, with sufficient masks on
  the target to cover fields whose storage copy differs.

Masks required on a view-change target are computed semantically: a field
must be masked exactly when the two views would read *different heap
copies* (``fclass`` differs or the field is new) and the source copy's
content cannot itself be viewed into the target family (Section 3.3's
directional refinement: ``base.Abs! ~> pair.Abs!`` needs no mask on ``e``
because every ``base`` expression can be viewed as a ``pair`` expression,
whereas ``pair.Abs! ~> base.Abs!\\e`` must mask ``e`` since a ``Pair``
has no ``base`` view)."""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set, Tuple

from . import types as T
from .classtable import ClassTable, JnsError, ResolveError, path_str
from .provenance import PROVENANCE as _PROV
from .queries import MISS, QueryEngine
from .subtype import Env, subtype
from .types import ClassType, Path, Type, intern_type

#: How a successful ``~>`` judgment maps to the paper rule that closed it
#: (proof-tree labels; a failed judgment carries no rule).
_SHARES_RULES: Dict[str, str] = {
    "subtype": "SH-REFL",
    "constraint": "SH-ENV",
    "global": "SH-CLS",
}


class SharingChecker:
    """Computes directional sharing judgments over a class table.

    Results are memoized *per checker instance*: the auto-mask fixpoint in
    ``ClassTable._build_sharing`` spins up fresh checkers against mutating
    mask state, so the memo tables must not outlive the state they were
    computed against.  Cyclic field-type dependencies (a shared class
    whose field type mentions the same pair of families) are resolved
    coinductively by assuming the in-progress judgment holds; the
    ``_in_progress`` set is the cycle guard and works with caching
    disabled."""

    def __init__(self, table: ClassTable) -> None:
        self.table = table
        # Attached to the table's version store: sharing judgments
        # revalidate per-class across incremental edits instead of being
        # discarded wholesale (the table-persistent checker relies on
        # this; the auto-mask fixpoint's throwaway checkers are unharmed
        # because their entries die with the instance).
        self.queries = QueryEngine("sharing", versions=table.versions)
        self._q_req_masks = self.queries.query("required_masks")
        self._q_type_shares = self.queries.query("type_shares")
        self._q_noop_views = self.queries.query("noop_views")
        self._in_progress: Set[Tuple[Path, Path, bool]] = set()

    # ------------------------------------------------------------------
    # view-change no-op sets (ahead-of-time specialization)
    # ------------------------------------------------------------------

    def noop_view_paths(self, target: Type) -> FrozenSet[Path]:
        """View classes from which an adapt to ``target`` is provably the
        identity: the target carries no masks and the view class already
        conforms (SH-REFL — a no-op view change).  The specializer elides
        the runtime ``view`` call for reads whose current view is in this
        set; anything outside it falls back to the full adapt, so the set
        being conservative is always safe."""
        if target.masks:
            return frozenset()
        target = intern_type(target.pure())
        cached = self._q_noop_views.get(target)
        if cached is not MISS:
            return cached
        return self._q_noop_views.put(
            target, self.table.conforming_paths(target)
        )

    # ------------------------------------------------------------------
    # per-class-pair mask requirements
    # ------------------------------------------------------------------

    def required_masks(
        self, src: Path, dst: Path, lenient: bool = False
    ) -> FrozenSet[str]:
        """Fields that must be masked on the target of a view change from
        exact class ``src`` to exact class ``dst`` (both in one sharing
        group).

        ``lenient`` implements the *deferred-initialization* relaxation
        used when deciding whether two interpreted **field** types are
        shared: fields that are new in the target family are skipped there
        (the Section 7.4 evolution protocol initializes manager fields
        before use, and the runtime still guards uninitialized reads);
        explicit view changes stay strict, exactly as in Figure 5."""
        key = (src, dst, lenient)
        if _PROV.enabled:
            subject = f"{path_str(src)}! ~> {path_str(dst)}!"
            if lenient:
                subject += " (lenient)"
            frame = _PROV.begin(
                "required_masks", subject, loc=self._decl_loc(dst)
            )
            try:
                cached = self._q_req_masks.get(key)
                if cached is not MISS:
                    return _PROV.end_hit(
                        frame, ("required_masks", id(self), key), cached
                    )
                result = self._required_masks_compute(key)
                return _PROV.end(
                    frame,
                    result,
                    rule="masks (Fig. 5)",
                    key=("required_masks", id(self), key),
                )
            except BaseException:
                _PROV.abort(frame)
                raise
        cached = self._q_req_masks.get(key)
        if cached is not MISS:
            return cached
        return self._required_masks_compute(key)

    def _decl_loc(self, path: Path) -> Optional[str]:
        """Source location of a class declaration (proof-tree citations;
        only called while recording)."""
        info = self.table.explicit.get(path)
        pos = getattr(getattr(info, "decl", None), "pos", None)
        if not pos or pos == (0, 0):
            return None
        return f"line {pos[0]}, col {pos[1]}"

    def _required_masks_compute(self, key: Tuple[Path, Path, bool]) -> FrozenSet[str]:
        src, dst, lenient = key
        if key in self._in_progress:
            if _PROV.enabled:
                _PROV.note(
                    "coinduction",
                    f"judgment for {path_str(src)}! ~> {path_str(dst)}! is in "
                    "progress; assume no masks required (coinductive)",
                )
            return frozenset()  # coinductive assumption
        self._in_progress.add(key)
        try:
            table = self.table
            src_fields = {decl.name for _, decl in table.all_fields(src)}
            masks: Set[str] = set()
            for owner, decl in table.all_fields(dst):
                fname = decl.name
                if fname not in src_fields:
                    if not lenient:
                        masks.add(fname)  # new field, uninitialized in src view
                        if _PROV.enabled:
                            _PROV.note(
                                "new-field",
                                f"field {fname!r} is new in {path_str(dst)} "
                                f"(absent from {path_str(src)}): mask required",
                            )
                    elif _PROV.enabled:
                        _PROV.note(
                            "new-field",
                            f"field {fname!r} is new in {path_str(dst)}: "
                            "deferred initialization (lenient), no mask",
                        )
                    continue
                if table.fclass(src, fname) == table.fclass(dst, fname):
                    if _PROV.enabled:
                        _PROV.note(
                            "same-copy",
                            f"field {fname!r}: both views read the same heap "
                            "copy (fclass agrees), no mask",
                        )
                    continue  # same heap copy: always consistent
                # Different copies: safe only if the source copy's contents
                # can be implicitly viewed at the target's field type.
                t_src = self._field_type_at(src, fname)
                t_dst = self._field_type_at(dst, fname)
                if t_src is None or t_dst is None:
                    masks.add(fname)
                    if _PROV.enabled:
                        _PROV.note(
                            "field-type",
                            f"field {fname!r}: interpreted type unavailable, "
                            "mask required",
                        )
                elif not self.type_shares(t_src, t_dst, frozenset(), lenient):
                    masks.add(fname)
                    if _PROV.enabled:
                        _PROV.note(
                            "copy-differs",
                            f"field {fname!r}: distinct heap copies and the "
                            f"source copy's content ({t_src!r}) has no "
                            f"{t_dst!r} view, mask required",
                        )
            return self._q_req_masks.put(key, frozenset(masks))
        finally:
            self._in_progress.discard(key)

    def _field_type_at(self, cls: Path, fname: str) -> Optional[Type]:
        found = self.table.find_field(cls, fname)
        if found is None:
            return None
        _, decl = found
        try:
            return self.table.eval_type_static(decl.type, this=cls).pure()
        except (ResolveError, JnsError):
            return None

    # ------------------------------------------------------------------
    # directional sharing between (evaluated) types
    # ------------------------------------------------------------------

    def type_shares(
        self,
        src: Type,
        dst: Type,
        allowed_masks: FrozenSet[str],
        lenient: bool = False,
    ) -> bool:
        """SH-CLS: every subclass of ``src`` has a unique shared subclass
        of ``dst`` whose required masks are within ``allowed_masks``.

        Memoized only in the quiescent state: while a coinductive
        assumption is active (``_in_progress`` non-empty) the inner
        ``required_masks`` answers are provisional, so nothing computed
        then may be recorded."""
        key = (src, dst, allowed_masks, lenient)
        if _PROV.enabled:
            subject = f"{src!r} ~> {dst!r}"
            if allowed_masks:
                subject += " \\ {" + ", ".join(sorted(allowed_masks)) + "}"
            frame = _PROV.begin("type_shares", subject)
            try:
                cached = self._q_type_shares.get(key)
                if cached is not MISS:
                    return _PROV.end_hit(
                        frame, ("type_shares", id(self), key), cached
                    )
                result = self._type_shares_uncached(src, dst, allowed_masks, lenient)
                store_key = None
                if not self._in_progress:
                    self._q_type_shares.put(key, result)
                    store_key = ("type_shares", id(self), key)
                return _PROV.end(frame, result, rule="SH-CLS", key=store_key)
            except BaseException:
                _PROV.abort(frame)
                raise
        cached = self._q_type_shares.get(key)
        if cached is not MISS:
            return cached
        result = self._type_shares_uncached(src, dst, allowed_masks, lenient)
        if not self._in_progress:
            self._q_type_shares.put(key, result)
        return result

    def _type_shares_uncached(
        self,
        src: Type,
        dst: Type,
        allowed_masks: FrozenSet[str],
        lenient: bool,
    ) -> bool:
        src_p, dst_p = src.pure(), dst.pure()
        if src_p == dst_p:
            if _PROV.enabled:
                _PROV.rule("SH-REFL")
            return True
        if isinstance(src_p, T.PrimType) and isinstance(dst_p, T.PrimType):
            return src_p == dst_p
        if isinstance(src_p, T.ArrayType) or isinstance(dst_p, T.ArrayType):
            return src_p == dst_p
        if not isinstance(src_p, ClassType) or not isinstance(dst_p, ClassType):
            return False
        table = self.table
        src_subs = table.subclasses_of(src_p)
        if not src_subs:
            if _PROV.enabled:
                _PROV.note(
                    "closed-world",
                    f"{src_p!r} has no subclasses in the locally closed world",
                    False,
                )
            return False
        for p1 in src_subs:
            matches = [
                p2
                for p2 in table.subclasses_of(dst_p)
                if table.shared_with(p1, p2)
                and self.required_masks(p1, p2, lenient) <= allowed_masks
            ]
            if len(matches) != 1:
                if _PROV.enabled:
                    masks_text = (
                        "{" + ", ".join(sorted(allowed_masks)) + "}"
                        if allowed_masks
                        else "no masks"
                    )
                    _PROV.note(
                        "unique-shared-subclass",
                        f"subclass {path_str(p1)} of the source has "
                        f"{len(matches)} shared subclasses of {dst_p!r} "
                        f"reachable under {masks_text} (exactly 1 required)",
                        False,
                    )
                return False
            if _PROV.enabled:
                _PROV.note(
                    "unique-shared-subclass",
                    f"subclass {path_str(p1)} of the source shares uniquely "
                    f"with {path_str(matches[0])}",
                )
        return True

    # ------------------------------------------------------------------
    # the full judgment  Gamma |- T1 ~> T2
    # ------------------------------------------------------------------

    def sharing_judgment(
        self, env: Env, t_src: Type, t_dst: Type, allow_global: bool = True
    ) -> Tuple[bool, str]:
        """Decide ``Gamma |- t_src ~> t_dst``.

        Returns (holds, how) where how is "subtype", "constraint", or
        "global" (the latter means no enabling constraint was in scope and
        the judgment came from the closed-world check — legal in the
        calculus, flagged for modularity)."""
        if _PROV.enabled:
            frame = _PROV.begin("shares", f"{t_src!r} ~> {t_dst!r}")
            try:
                holds, how = self._sharing_judgment_inner(
                    env, t_src, t_dst, allow_global
                )
                _PROV.end(frame, holds, rule=_SHARES_RULES.get(how))
                return holds, how
            except BaseException:
                _PROV.abort(frame)
                raise
        return self._sharing_judgment_inner(env, t_src, t_dst, allow_global)

    def _sharing_judgment_inner(
        self, env: Env, t_src: Type, t_dst: Type, allow_global: bool
    ) -> Tuple[bool, str]:
        # SH-REFL (via subsumption): a no-op view change.
        if subtype(env, t_src, t_dst):
            return True, "subtype"
        # SH-ENV / SH-MASK: an enabling constraint in scope.  Matched
        # nominally first, then on the statically evaluated types (this :=
        # the current class — sound because inherited constraints are
        # re-validated per family by Q-OK).
        s = d = None
        try:
            s = self._eval_in_env(env, t_src)
            d = self._eval_in_env(env, t_dst)
        except (ResolveError, JnsError):
            pass
        for left, right in env.constraints:
            for l, r in ((left, right), (right, left)):
                if subtype(env, t_src, l) and subtype(env, r, t_dst):
                    if _PROV.enabled:
                        _PROV.note(
                            "constraint",
                            f"enabled by the in-scope constraint "
                            f"sharing {l!r} = {r!r}",
                        )
                    return True, "constraint"
                if s is None or d is None:
                    continue
                try:
                    l_ev = self._eval_in_env(env, l)
                    r_ev = self._eval_in_env(env, r)
                except (ResolveError, JnsError):
                    continue
                if subtype(env, s, l_ev) and subtype(env, r_ev, d):
                    if _PROV.enabled:
                        _PROV.note(
                            "constraint",
                            f"enabled by the in-scope constraint "
                            f"sharing {l!r} = {r!r} (statically evaluated)",
                        )
                    return True, "constraint"
        if not allow_global:
            if _PROV.enabled:
                _PROV.note(
                    "strict",
                    "no enabling sharing constraint in scope and the global "
                    "closed-world rule is disallowed (strict mode)",
                    False,
                )
            return False, "none"
        # SH-DECL / SH-CLS on the evaluated types.
        if s is None or d is None:
            if _PROV.enabled:
                _PROV.note(
                    "eval",
                    "the types' dependent parts do not evaluate statically, "
                    "so the closed-world rule cannot apply",
                    False,
                )
            return False, "none"
        if self.type_shares(s.pure(), d.pure(), d.masks):
            return True, "global"
        return False, "none"

    def _eval_in_env(self, env: Env, t: Type) -> Type:
        """Evaluate a type's dependent parts against the static context
        (this := the current class).  Sharing-constraint types must be
        non-dependent or depend only on ``this`` (Section 2.5), which is
        exactly what the class table's static evaluation supports; it also
        preserves family-level exactness of ``P[this.class]`` prefixes,
        which the closed-world enumeration relies on."""
        return self.table.eval_type_static(t, this=env.ctx)
