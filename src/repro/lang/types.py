"""Resolved type representations for J&s.

These mirror the type grammar of Figure 8 in the paper:

    pure types  PT ::= o | PT.C | p.class | P[PT] | &PT | PT!
    types        T ::= PT | PT\\f

A *class path* is a tuple of names rooted at the outermost namespace ``o``
(written ``()`` here); e.g. ``("ASTDisplay", "Binary")``.

Exactness can apply at any depth of a path (``A.B!.C`` means exactness of
the prefix ``A.B``); we canonicalize path-shaped types into
:class:`ClassType` carrying the set of exact positions, so
``ASTDisplay.Exp!`` is ``ClassType(("ASTDisplay","Exp"), exact={2})`` and
``ASTDisplay!.Exp`` is ``ClassType(("ASTDisplay","Exp"), exact={1})``.
Non-path-shaped types (dependent classes, prefix types, intersections)
keep their structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Tuple

Path = Tuple[str, ...]


class Type:
    """Base class of resolved J&s types."""

    def with_masks(self, masks: FrozenSet[str]) -> "Type":
        if not masks:
            return self
        if isinstance(self, MaskedType):
            return MaskedType(self.base, self.masks | masks)
        return MaskedType(self, frozenset(masks))

    @property
    def masks(self) -> FrozenSet[str]:
        return frozenset()

    def pure(self) -> "Type":
        """Strip all masks (the ``pure`` function of the paper)."""
        return self


@dataclass(frozen=True)
class PrimType(Type):
    """int, double, boolean, String, void, or the internal null type."""

    name: str

    def __repr__(self) -> str:
        return self.name


INT = PrimType("int")
DOUBLE = PrimType("double")
BOOLEAN = PrimType("boolean")
STRING = PrimType("String")
VOID = PrimType("void")
NULL = PrimType("null")


@dataclass(frozen=True)
class ArrayType(Type):
    elem: Type

    def __repr__(self) -> str:
        return f"{self.elem!r}[]"


@dataclass(frozen=True)
class ClassType(Type):
    """A pure non-dependent path type with exactness positions.

    ``exact`` holds 1-based prefix lengths whose prefix is exact;
    e.g. ``A.B!.C`` has ``exact == {2}`` and ``A.B.C!`` has ``exact == {3}``.
    The root namespace ``o`` is ``ClassType(())``.
    """

    path: Path
    exact: FrozenSet[int] = frozenset()

    def __repr__(self) -> str:
        if not self.path:
            return "o"
        out = []
        for i, name in enumerate(self.path, start=1):
            out.append(name)
            if i in self.exact:
                out.append("!")
            if i != len(self.path):
                out.append(".")
        return "".join(out)

    @property
    def is_exact(self) -> bool:
        """Whether the whole type is exact (its values all have the same
        run-time class)."""
        return len(self.path) in self.exact

    def member(self, name: str) -> "ClassType":
        return ClassType(self.path + (name,), self.exact)

    def exact_here(self) -> "ClassType":
        return ClassType(self.path, self.exact | {len(self.path)})

    def drop_exact(self) -> "ClassType":
        return ClassType(self.path)


def exact_class(path: Path) -> ClassType:
    """The type ``P!`` for a class path — the view of instances created as
    ``new P``."""
    return ClassType(tuple(path), frozenset({len(path)}))


@dataclass(frozen=True)
class DepType(Type):
    """A dependent class ``p.class``; ``path`` is ("this",) or
    ("x", "f", ...).  Dependent classes are exact."""

    path: Path

    def __repr__(self) -> str:
        return ".".join(self.path) + ".class"


@dataclass(frozen=True)
class PrefixType(Type):
    """A prefix type ``P[T]``: the enclosing family of ``T`` at the level
    of class ``P`` (``family`` is P's absolute path)."""

    family: Path
    index: Type

    def __repr__(self) -> str:
        return ".".join(self.family) + f"[{self.index!r}]"

    def member(self, name: str) -> "NestedType":
        return NestedType(self, name)


@dataclass(frozen=True)
class NestedType(Type):
    """Member access ``T.C`` on a non-path type (prefix, dependent,
    intersection, or exact-of-those)."""

    outer: Type
    name: str

    def __repr__(self) -> str:
        return f"{self.outer!r}.{self.name}"


@dataclass(frozen=True)
class ExactType(Type):
    """``T!`` where T is not path-shaped (path-shaped exactness is folded
    into :class:`ClassType`)."""

    inner: Type

    def __repr__(self) -> str:
        return f"{self.inner!r}!"


@dataclass(frozen=True)
class IsectType(Type):
    """Intersection ``T1 & T2``."""

    parts: Tuple[Type, ...]

    def __repr__(self) -> str:
        return " & ".join(repr(p) for p in self.parts)


@dataclass(frozen=True)
class MaskedType(Type):
    """``T\\f``: T without read access to the masked fields."""

    base: Type
    _masks: FrozenSet[str] = field(default_factory=frozenset)

    def __init__(self, base: Type, masks: FrozenSet[str]) -> None:
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "_masks", frozenset(masks))

    @property
    def masks(self) -> FrozenSet[str]:
        return self._masks

    def pure(self) -> Type:
        return self.base

    def __repr__(self) -> str:
        return repr(self.base) + "".join("\\" + f for f in sorted(self._masks))


def masked(base: Type, *fields_: str) -> Type:
    """Convenience constructor for masked types."""
    if not fields_:
        return base
    return MaskedType(base, frozenset(fields_))


def make_exact(t: Type) -> Type:
    """Apply ``!`` to a resolved type, folding into ClassType when
    possible."""
    if isinstance(t, ClassType):
        return t.exact_here()
    if isinstance(t, MaskedType):
        return MaskedType(make_exact(t.base), t.masks)
    if isinstance(t, (DepType, ExactType)):
        return t  # dependent classes are already exact
    return ExactType(t)


def make_member(t: Type, name: str) -> Type:
    """Apply ``.name`` to a resolved type."""
    if isinstance(t, ClassType):
        return t.member(name)
    if isinstance(t, MaskedType):
        raise ValueError("cannot select a member of a masked type")
    return NestedType(t, name)


def make_isect(parts: Tuple[Type, ...]) -> Type:
    flat = []
    for p in parts:
        if isinstance(p, IsectType):
            flat.extend(p.parts)
        else:
            flat.append(p)
    uniq = tuple(dict.fromkeys(flat))
    if len(uniq) == 1:
        return uniq[0]
    return IsectType(uniq)


def is_reference_type(t: Type) -> bool:
    """True for types whose values are object references (class-ish types)."""
    t = t.pure()
    return isinstance(
        t, (ClassType, DepType, PrefixType, NestedType, ExactType, IsectType)
    )


def prefix_exact_k(t: Type, k: int) -> bool:
    """``prefixExact_k`` of Figure 11: whether the k-th prefix of ``t`` is
    exact (k = 0 means the type itself)."""
    if isinstance(t, MaskedType):
        return prefix_exact_k(t.base, k)
    if isinstance(t, ClassType):
        if not t.path:
            return False
        # the k-th prefix of a path of length n is the prefix of length n-k;
        # Figure 11 makes prefixExact_k(T!) true for every k, so exactness
        # anywhere at or below that depth suffices
        target = len(t.path) - k
        if target <= 0:
            return bool(t.exact)
        return any(pos >= target for pos in t.exact)
    if isinstance(t, DepType):
        return True
    if isinstance(t, ExactType):
        return True
    if isinstance(t, NestedType):
        if k == 0:
            return False
        return prefix_exact_k(t.outer, k - 1)
    if isinstance(t, PrefixType):
        return prefix_exact_k(t.index, k + 1)
    if isinstance(t, IsectType):
        return any(prefix_exact_k(p, k) for p in t.parts)
    return False


def is_exact(t: Type) -> bool:
    """``exact(T)``: all values of T share one run-time class."""
    return prefix_exact_k(t, 0)


def paths_in(t: Type) -> FrozenSet[Path]:
    """``paths(T)``: final access paths appearing in the type (Fig. 11)."""
    if isinstance(t, MaskedType):
        return paths_in(t.base)
    if isinstance(t, DepType):
        return frozenset({t.path})
    if isinstance(t, (ExactType,)):
        return paths_in(t.inner)
    if isinstance(t, NestedType):
        return paths_in(t.outer)
    if isinstance(t, PrefixType):
        return paths_in(t.index)
    if isinstance(t, IsectType):
        out: FrozenSet[Path] = frozenset()
        for p in t.parts:
            out |= paths_in(p)
        return out
    return frozenset()


def depends_on_this_only(t: Type) -> bool:
    """True when every dependent path in ``t`` starts at ``this`` (needed by
    sharing-constraint well-formedness, Section 2.5)."""
    return all(p and p[0] == "this" for p in paths_in(t))


#: Hash-consing table: structural type -> canonical instance.  All frozen
#: dataclasses above hash/compare structurally, so one dict keyed on the
#: type itself suffices; rebuilding a node with interned children does not
#: change its equality class.  Cleared by ``queries.clear_caches()`` —
#: safe, because interning is self-repopulating.
_INTERN: Dict["Type", "Type"] = {}


def intern_type(t: Type) -> Type:
    """Return the canonical instance of ``t`` (hash-consing).

    After interning, structurally equal types are the *same object*, so
    ``==`` on them hits CPython's identity fast path and they are cheap
    dict keys for the memoized queries.  Children are interned
    recursively, so any subterm of an interned type is interned too.
    Idempotent; safe on any resolved type.
    """
    cached = _INTERN.get(t)
    if cached is not None:
        return cached
    if isinstance(t, ArrayType):
        t = ArrayType(intern_type(t.elem))
    elif isinstance(t, PrefixType):
        t = PrefixType(t.family, intern_type(t.index))
    elif isinstance(t, NestedType):
        t = NestedType(intern_type(t.outer), t.name)
    elif isinstance(t, ExactType):
        t = ExactType(intern_type(t.inner))
    elif isinstance(t, IsectType):
        t = IsectType(tuple(intern_type(p) for p in t.parts))
    elif isinstance(t, MaskedType):
        t = MaskedType(intern_type(t.base), t.masks)
    _INTERN[t] = t
    return t


for _prim in (INT, DOUBLE, BOOLEAN, STRING, VOID, NULL):
    _INTERN[_prim] = _prim
del _prim


@dataclass(frozen=True)
class View:
    """A run-time view: a non-dependent exact class (a path) plus masks.

    Object references in J&s are pairs of a heap location and a view
    (Section 2.3); the view determines behavior.
    """

    path: Path
    masks: FrozenSet[str] = frozenset()

    def __repr__(self) -> str:
        base = ".".join(self.path) + "!"
        return base + "".join("\\" + f for f in sorted(self.masks))

    def as_type(self) -> Type:
        t: Type = exact_class(self.path)
        if self.masks:
            t = t.with_masks(self.masks)
        return t

    def without_masks(self) -> "View":
        if not self.masks:
            return self
        return View(self.path)
