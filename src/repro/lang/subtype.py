"""Subtyping and type bounds for J&s (Sections 4.9 and 4.13).

The practical checker canonicalizes path-shaped types into
:class:`~repro.lang.types.ClassType` values carrying exactness positions,
and decides subtyping with three ingredients:

* the inheritance graph (``@*`` closure from the class table);
* exactness discipline: ``T.C! <= T!.C`` (exactness shifts outward,
  S-EXACT) and exact prefixes mark family boundaries, so the exact prefix
  of the supertype must match syntactically (``ASTDisplay!.Binary`` is not
  a subtype of ``AST!.Binary`` even though the inexact versions are);
* bounds (``Gamma |- T <| PS``): dependent classes and prefix types are
  replaced by their most specific non-dependent bound (BD-FIN, BD-PRE).

Sharing never implies subtyping (Section 2.2): nothing here consults the
sharing relation.
"""

from __future__ import annotations

from typing import Dict, Optional

from . import types as T
from .classtable import ClassTable, ResolveError, TypeError_, path_str
from .provenance import PROVENANCE as _PROV
from .queries import MISS
from .types import ClassType, Path, Type

#: The only dependent path whose judgments are cacheable: results for
#: ``this``-rooted types are a function of (ctx, type) alone *provided*
#: the environment binds ``this`` the standard way (``this : ctx``, see
#: ``_standard_this``).  Types depending on other locals go through the
#: flow-sensitive ``env.vars`` and are never cached.
_THIS_PATH = ("this",)


def _standard_this(env: "Env") -> bool:
    tv = env.vars.get("this")
    return tv is not None and tv.pure() == ClassType(env.ctx)


class Env:
    """A typing environment: variable types plus the current class path.

    ``vars`` maps local variable names (including ``"this"``) to their
    current types, which may carry masks (the flow-sensitive analysis
    mutates copies of this).  ``constraints`` holds the method's sharing
    constraints as (left, right) resolved-type pairs.
    """

    def __init__(
        self,
        table: ClassTable,
        ctx: Path,
        vars: Optional[Dict[str, Type]] = None,
        constraints=(),
    ) -> None:
        self.table = table
        self.ctx = ctx
        self.vars: Dict[str, Type] = dict(vars or {})
        self.constraints = list(constraints)

    def copy(self) -> "Env":
        env = Env(self.table, self.ctx, self.vars, self.constraints)
        return env

    def lookup(self, name: str) -> Optional[Type]:
        return self.vars.get(name)

    # ------------------------------------------------------------------
    # bounds
    # ------------------------------------------------------------------

    def bound(self, t: Type) -> Type:
        """The most specific pure non-dependent bound of ``t``
        (``Gamma |- T <| PS``).

        Memoized per class table keyed on (ctx, type) when the type's
        dependent paths are all ``this``-rooted and ``this`` has its
        standard binding; other bounds read the flow-sensitive variable
        environment and recompute every time."""
        if _PROV.enabled:
            return self._bound_recorded(t)
        paths = T.paths_in(t)
        cacheable = all(p == _THIS_PATH for p in paths) and (
            not paths or _standard_this(self)
        )
        if cacheable:
            q = self.table._q_bound
            key = (self.ctx, t)
            cached = q.get(key)
            if cached is not MISS:
                return cached
            return q.put(key, self._bound_uncached(t))
        return self._bound_uncached(t)

    def _bound_recorded(self, t: Type) -> Type:
        """The :meth:`bound` control flow with derivation recording (the
        disabled path above stays byte-identical)."""
        frame = _PROV.begin("bound", f"{t!r} <|")
        try:
            paths = T.paths_in(t)
            cacheable = all(p == _THIS_PATH for p in paths) and (
                not paths or _standard_this(self)
            )
            if cacheable:
                q = self.table._q_bound
                key = (self.ctx, t)
                cached = q.get(key)
                if cached is not MISS:
                    return _PROV.end_hit(
                        frame, ("bound", id(self.table), key), cached
                    )
                result = q.put(key, self._bound_uncached(t))
                return _PROV.end(
                    frame,
                    result,
                    rule=_bound_rule(t),
                    key=("bound", id(self.table), key),
                )
            return _PROV.end(frame, self._bound_uncached(t), rule=_bound_rule(t))
        except BaseException:
            _PROV.abort(frame)
            raise

    def _bound_uncached(self, t: Type) -> Type:
        t = t.pure()
        if isinstance(t, (T.PrimType, ClassType)):
            return t
        if isinstance(t, T.ArrayType):
            return t
        if isinstance(t, T.DepType):
            return self._dep_bound(t.path)
        if isinstance(t, T.PrefixType):
            idx = self.bound(t.index)
            idx_pure = idx.pure()
            if isinstance(idx_pure, T.IsectType):
                idx_pure = idx_pure.parts[0]
            if not isinstance(idx_pure, ClassType):
                raise TypeError_(f"prefix index has no class bound: {t!r}")
            fam = self.table.prefix_of(t.family, idx_pure.path)
            # Exact when the index's exactness pins the family
            # (prefixExact_1).  A this-rooted dependent index (this.class)
            # is itself exact, so the family is pinned even though the
            # index's *bound* is not exact — this matches the ctx-level
            # evaluation policy used for this-only subtype comparisons.
            pinned = any(k >= len(fam) for k in idx_pure.exact) or (
                T.is_exact(t.index)
                and all(p and p[0] == "this" for p in T.paths_in(t.index))
            )
            if pinned:
                return T.exact_class(fam)
            return ClassType(fam)
        if isinstance(t, T.NestedType):
            outer = self.bound(t.outer).pure()
            if isinstance(outer, ClassType):
                return outer.member(t.name)
            if isinstance(outer, T.IsectType):
                parts = tuple(
                    p.member(t.name)
                    for p in outer.parts
                    if isinstance(p, ClassType)
                    and self.table.class_exists(p.path + (t.name,))
                )
                if parts:
                    return T.make_isect(parts)
            raise TypeError_(f"cannot bound member access {t!r}")
        if isinstance(t, T.ExactType):
            return T.make_exact(self.bound(t.inner))
        if isinstance(t, T.IsectType):
            return T.make_isect(tuple(self.bound(p) for p in t.parts))
        raise TypeError_(f"cannot bound type {t!r}")

    def _dep_bound(self, path: Path) -> Type:
        head = path[0]
        t = self.lookup(head)
        if t is None:
            raise TypeError_(f"unbound variable {head!r} in dependent type")
        current: Type = t
        for fname in path[1:]:
            current = self.field_type(current, fname)
        # p.class is bounded by pure(T); exactness is preserved only when the
        # declared type was already exact (S-FIN-EXACT).
        b = self.bound(current.pure())
        return b

    # ------------------------------------------------------------------
    # field types with receiver substitution
    # ------------------------------------------------------------------

    def field_type(self, receiver: Type, fname: str) -> Type:
        """``ftype``: the declared type of ``fname`` interpreted for a
        receiver of type ``receiver`` (substituting the receiver for
        ``this.class`` in the declared, possibly dependent, field type)."""
        if fname in receiver.masks:
            raise TypeError_(f"field {fname!r} is masked and cannot be read")
        recv_bound = self.bound(receiver).pure()
        owner_path = self._single_class(recv_bound)
        found = self.table.find_field(owner_path.path, fname)
        if found is None:
            raise TypeError_(
                f"no field {fname!r} in {recv_bound!r}"
            )
        _, decl = found
        return substitute_this(decl.type, receiver, self)

    def method_sig(self, receiver: Type, mname: str):
        """Parameter and return types of ``mname`` for the receiver, with
        ``this.class`` substituted (mtype of Fig. 9).  Returns
        (params, ret, decl, owner) or None."""
        recv_bound = self.bound(receiver).pure()
        owner_path = self._single_class(recv_bound)
        found = self.table.find_method(owner_path.path, mname)
        if found is None:
            return None
        owner, decl = found
        params = [substitute_this(p.type, receiver, self) for p in decl.params]
        ret = substitute_this(decl.ret_type, receiver, self)
        return params, ret, decl, owner

    def _single_class(self, t: Type) -> ClassType:
        t = t.pure()
        if isinstance(t, ClassType):
            return t
        if isinstance(t, T.IsectType):
            # most derived part wins for member lookup
            class_parts = [p for p in t.parts if isinstance(p, ClassType)]
            for p in class_parts:
                if all(
                    q is p or self.table.inherits(p.path, q.path) for q in class_parts
                ):
                    return p
            if class_parts:
                return class_parts[0]
        raise TypeError_(f"expected a class type, got {t!r}")


def _bound_rule(t: Type) -> str:
    """The Section 4.13 bound rule a type's shape selects (for proof
    trees; the dispatch itself lives in ``Env._bound_uncached``)."""
    t = t.pure()
    if isinstance(t, T.DepType):
        return "BD-FIN"
    if isinstance(t, T.PrefixType):
        return "BD-PRE"
    if isinstance(t, T.NestedType):
        return "BD-MEM"
    if isinstance(t, T.ExactType):
        return "BD-EXACT"
    if isinstance(t, T.IsectType):
        return "BD-ISECT"
    return "BD-ID"


def substitute_this(t: Type, receiver: Type, env: Env) -> Type:
    """Type substitution ``T{receiver/this}`` (Fig. 14): rewrite
    this-rooted dependent classes using the receiver's type.

    When the receiver is itself a final-path type (``p.class``-shaped),
    the substitution stays path-dependent; otherwise the prefix types are
    evaluated against the receiver's bound."""
    t_pure = t.pure()
    masks = t.masks
    out = _subst(t_pure, receiver, env)
    return out.with_masks(masks)


def _subst(t: Type, receiver: Type, env: Env) -> Type:
    if isinstance(t, (T.PrimType, ClassType)):
        return t
    if isinstance(t, T.ArrayType):
        return T.ArrayType(_subst(t.elem, receiver, env))
    if isinstance(t, T.DepType):
        if t.path[0] != "this":
            return t
        recv_pure = receiver.pure()
        if isinstance(recv_pure, T.DepType):
            return T.DepType(recv_pure.path + t.path[1:])
        if len(t.path) == 1:
            return env.bound(receiver).pure()
        # this.f.class with a non-path receiver: bound through field types
        current: Type = receiver
        for fname in t.path[1:]:
            current = env.field_type(current, fname)
        return env.bound(current).pure()
    if isinstance(t, T.PrefixType):
        return T.PrefixType(t.family, _subst(t.index, receiver, env))
    if isinstance(t, T.NestedType):
        return T.make_member(_subst(t.outer, receiver, env), t.name)
    if isinstance(t, T.ExactType):
        return T.make_exact(_subst(t.inner, receiver, env))
    if isinstance(t, T.IsectType):
        return T.make_isect(tuple(_subst(p, receiver, env) for p in t.parts))
    if isinstance(t, T.MaskedType):
        return _subst(t.base, receiver, env).with_masks(t.masks)
    return t


# ---------------------------------------------------------------------------
# subtyping
# ---------------------------------------------------------------------------


def subtype(env: Env, t1: Type, t2: Type) -> bool:
    """``Gamma |- T1 <= T2``.

    Memoized per class table keyed on (ctx, t1, t2) under the same
    eligibility rule as :meth:`Env.bound`: every dependent path in both
    types is ``this``-rooted and ``this`` has its standard binding.  The
    judgment never reads ``env.constraints`` (sharing never implies
    subtyping), so constraints don't enter the key."""
    if _PROV.enabled:
        return _subtype_recorded(env, t1, t2)
    if t1 == t2:
        return True
    paths = T.paths_in(t1) | T.paths_in(t2)
    if all(p == _THIS_PATH for p in paths) and (not paths or _standard_this(env)):
        q = env.table._q_subtype
        key = (env.ctx, t1, t2)
        cached = q.get(key)
        if cached is not MISS:
            return cached
        return q.put(key, _subtype_uncached(env, t1, t2))
    return _subtype_uncached(env, t1, t2)


def _subtype_recorded(env: Env, t1: Type, t2: Type) -> bool:
    """:func:`subtype` with derivation recording (same control flow as
    the disabled path, which stays byte-identical)."""
    frame = _PROV.begin("subtype", f"{t1!r} <= {t2!r}")
    try:
        if t1 == t2:
            return _PROV.end(frame, True, rule="S-REFL")
        paths = T.paths_in(t1) | T.paths_in(t2)
        if all(p == _THIS_PATH for p in paths) and (not paths or _standard_this(env)):
            q = env.table._q_subtype
            key = (env.ctx, t1, t2)
            cached = q.get(key)
            if cached is not MISS:
                return _PROV.end_hit(frame, ("subtype", id(env.table), key), cached)
            result = q.put(key, _subtype_uncached(env, t1, t2))
            return _PROV.end(frame, result, key=("subtype", id(env.table), key))
        return _PROV.end(frame, _subtype_uncached(env, t1, t2))
    except BaseException:
        _PROV.abort(frame)
        raise


def _subtype_uncached(env: Env, t1: Type, t2: Type) -> bool:
    if t1 == t2:
        return True
    # S-MASK: masks may only be added going up (T <= T\f).
    if not t1.masks <= t2.masks:
        if _PROV.enabled:
            _PROV.rule("S-MASK")
            _PROV.note(
                "masks",
                f"{{{', '.join(sorted(t1.masks - t2.masks))}}} present on the "
                "subtype but not the supertype",
                False,
            )
        return False
    p1, p2 = t1.pure(), t2.pure()
    if p1 == p2:
        if _PROV.enabled:
            _PROV.rule("S-MASK")
        return True
    if isinstance(p1, T.PrimType) and p1.name == "null":
        if _PROV.enabled:
            _PROV.rule("S-NULL")
        return (
            T.is_reference_type(p2)
            or isinstance(p2, T.ArrayType)
            or p2 == T.STRING
        )
    if isinstance(p1, T.PrimType) or isinstance(p2, T.PrimType):
        if _PROV.enabled:
            _PROV.rule("S-PRIM")
        if isinstance(p1, T.PrimType) and isinstance(p2, T.PrimType):
            if p1.name == p2.name:
                return True
            return p1.name == "int" and p2.name == "double"
        return False
    if isinstance(p1, T.ArrayType) or isinstance(p2, T.ArrayType):
        if _PROV.enabled:
            _PROV.rule("S-ARRAY")
        return (
            isinstance(p1, T.ArrayType)
            and isinstance(p2, T.ArrayType)
            and p1.elem == p2.elem
        )
    # intersections
    if isinstance(p2, T.IsectType):
        if _PROV.enabled:
            _PROV.rule("S-ISECT-R")
        return all(subtype(env, p1, part) for part in p2.parts)
    if isinstance(p1, T.IsectType):
        if _PROV.enabled:
            _PROV.rule("S-ISECT-L")
        return any(subtype(env, part, p2) for part in p1.parts)
    # A dependent-shaped type with no remaining access paths (after
    # substitution of a concrete receiver) evaluates exactly to its bound,
    # so normalize it before structural comparison.
    if _is_dependent_shaped(p1) and not T.paths_in(p1):
        try:
            p1 = env.bound(p1).pure()
        except TypeError_:
            pass
    if _is_dependent_shaped(p2) and not T.paths_in(p2):
        try:
            p2 = env.bound(p2).pure()
        except TypeError_:
            pass
    if p1 == p2:
        return True
    # When both sides depend only on ``this``, evaluate them at the current
    # class (this := ctx, exact) and compare the resulting class types.
    # Late binding reinterprets both sides consistently in derived families
    # (extends clauses are inherited and reinterpreted), so the relation
    # decided here is preserved; constraints are separately re-validated
    # per family by Q-OK.
    if (_is_dependent_shaped(p1) or _is_dependent_shaped(p2)) and _this_only(
        p1
    ) and _this_only(p2):
        try:
            e1 = env.table.eval_type_static(p1, this=env.ctx).pure()
            e2 = env.table.eval_type_static(p2, this=env.ctx).pure()
            if _PROV.enabled:
                _PROV.rule("S-EVAL")
                _PROV.note(
                    "eval",
                    f"at this := {path_str(env.ctx) or '<top>'}: "
                    f"{p1!r} evaluates to {e1!r}, {p2!r} to {e2!r}",
                )
            if isinstance(e1, ClassType):
                return _class_subtype(env.table, e1, e2)
            if isinstance(e1, T.IsectType):
                return any(
                    isinstance(part, ClassType)
                    and _class_subtype(env.table, part, e2)
                    for part in e1.parts
                )
        except (TypeError_, ResolveError):
            pass
    # dependent/nested/prefix forms: nominal equality already failed; compare
    # p1's bound against p2 (p2 dependent can only be reached nominally).
    if _is_dependent_shaped(p2):
        if _same_shape_equiv(env, p1, p2):
            if _PROV.enabled:
                _PROV.rule("S-PRE-2")
            return True
        # fall back: p2's bound as an upper approximation is unsound in
        # general, so only exact-bound replacement is used:
        return False
    if _PROV.enabled:
        _PROV.rule("S-FIN")
    c1 = env.bound(p1).pure()
    if _is_dependent_shaped(p1):
        # S-FIN: p.class <= its bound (exactness of the value itself is
        # additional information, which only helps, so keep c1's exactness
        # plus "value is exact").
        if isinstance(c1, ClassType):
            c1 = ClassType(c1.path, c1.exact | {len(c1.path)})
    c2 = env.bound(p2).pure()
    if isinstance(c1, T.IsectType):
        return any(
            isinstance(part, ClassType) and _class_subtype(env.table, part, c2)
            for part in c1.parts
        )
    if isinstance(c1, ClassType):
        return _class_subtype(env.table, c1, c2)
    return False


def _is_dependent_shaped(t: Type) -> bool:
    return isinstance(t, (T.DepType, T.PrefixType, T.NestedType, T.ExactType))


def _this_only(t: Type) -> bool:
    """All dependent paths in ``t`` are rooted at ``this``."""
    return all(p and p[0] == "this" for p in T.paths_in(t))


def _same_shape_equiv(env: Env, t1: Type, t2: Type) -> bool:
    """Nominal equivalence for dependent-shaped types (no alias tracking:
    identical structure only, with prefix families allowed to differ when
    one inherits the other, rule S-PRE-2)."""
    if t1 == t2:
        return True
    if isinstance(t1, T.PrefixType) and isinstance(t2, T.PrefixType):
        fams_related = (
            t1.family == t2.family
            or env.table.inherits(t1.family, t2.family)
            or env.table.inherits(t2.family, t1.family)
        )
        return fams_related and _same_shape_equiv(env, t1.index, t2.index)
    if isinstance(t1, T.NestedType) and isinstance(t2, T.NestedType):
        return t1.name == t2.name and _same_shape_equiv(env, t1.outer, t2.outer)
    if isinstance(t1, T.ExactType) and isinstance(t2, T.ExactType):
        return _same_shape_equiv(env, t1.inner, t2.inner)
    return False


def _class_subtype(table: ClassTable, c1: ClassType, c2) -> bool:
    """Subtyping between canonical path types with exactness positions.
    A pure function of the table; memoized unconditionally."""
    if _PROV.enabled:
        frame = _PROV.begin("class_subtype", f"{c1!r} <= {c2!r}")
        try:
            q = table._q_class_subtype
            key = (c1, c2)
            cached = q.get(key)
            if cached is not MISS:
                return _PROV.end_hit(frame, ("class_subtype", id(table), key), cached)
            result = q.put(key, _class_subtype_uncached(table, c1, c2))
            return _PROV.end(
                frame, result, rule="S-EXACT", key=("class_subtype", id(table), key)
            )
        except BaseException:
            _PROV.abort(frame)
            raise
    q = table._q_class_subtype
    key = (c1, c2)
    cached = q.get(key)
    if cached is not MISS:
        return cached
    return q.put(key, _class_subtype_uncached(table, c1, c2))


def _class_subtype_uncached(table: ClassTable, c1: ClassType, c2) -> bool:
    c2 = c2.pure() if isinstance(c2, T.MaskedType) else c2
    if isinstance(c2, T.IsectType):
        return all(
            isinstance(p, ClassType) and _class_subtype(table, c1, p) for p in c2.parts
        )
    if not isinstance(c2, ClassType):
        return False
    m = max(c2.exact, default=0)
    if m > 0:
        # the supertype's exact prefix marks a family boundary: the subtype
        # must realize exactness at that depth (some exact position >= m,
        # S-EXACT shifts it outward) and agree syntactically up to m.
        if len(c1.path) < m or c1.path[:m] != c2.path[:m]:
            if _PROV.enabled:
                _PROV.note(
                    "prefixExact_k",
                    f"exact family prefix {path_str(c2.path[:m])}! of the "
                    f"supertype is not a syntactic prefix of {path_str(c1.path)}",
                    False,
                    rule="prefixExact_k",
                )
            return False
        if not any(k >= m for k in c1.exact):
            if _PROV.enabled:
                _PROV.note(
                    "prefixExact_k",
                    f"{c1!r} has no exact position at depth >= {m} "
                    "(S-EXACT cannot shift exactness outward far enough)",
                    False,
                    rule="prefixExact_k",
                )
            return False
        if m == len(c2.path):
            # fully exact supertype: run-time class must be exactly c2
            if _PROV.enabled:
                _PROV.note(
                    "exact",
                    f"supertype is fully exact: run-time class must be "
                    f"{path_str(c2.path)} itself",
                    c1.path == c2.path,
                )
            return c1.path == c2.path
    ok = table.inherits(c1.path, c2.path)
    if _PROV.enabled:
        _PROV.note(
            "inherits", f"{path_str(c1.path)} @* {path_str(c2.path)}", ok
        )
    return ok


def type_equiv(env: Env, t1: Type, t2: Type) -> bool:
    return subtype(env, t1, t2) and subtype(env, t2, t1)
