"""Fine-grained incremental re-checking.

:class:`IncrementalChecker` keeps one program alive across edits.  A
:meth:`check <IncrementalChecker.check>` assembles its diagnostics from
per-class cached units (``check_class`` / ``inherited_ok`` on the class
table's query engine, see :mod:`repro.lang.typecheck`); an
:meth:`apply_edit <IncrementalChecker.apply_edit>` reuses everything the
edit did not touch:

* **Chunk-level parse reuse.**  The source is split at column-0
  top-level ``class`` starts.  A chunk whose ``(text, start line)`` pair
  is unchanged keeps its already-resolved declaration objects by
  identity; an edited chunk is re-lexed standalone, its token positions
  shifted to absolute lines, and re-parsed on its own
  (:func:`repro.source.parser.parse_decls`).  Any irregularity — a chunk
  that fails to parse, a split that does not reassemble into the source,
  a previous build that had parse errors — falls back to a full
  from-scratch build, so error programs always see exactly the batch
  pipeline's diagnostics.

* **Signature-based classification.**  Each class carries three
  signatures computed from its *unresolved* declaration (resolution
  mutates the AST in place, so signatures are taken at parse time):

  - ``struct``: name, abstractness, ``extends``/``shares``/``adapts``
    clauses, field *names*, nested-class names — everything another
    class's *name resolution* or the derived sharing relation can
    observe.  Positions are excluded.
  - ``api``: field types/finality/initializers, method and constructor
    signatures with method-level sharing constraints.  Positions
    included.
  - ``body``: method/constructor bodies.  Positions included.

  A ``body``-only change bumps ``('body', P)``; an ``api`` change also
  bumps ``('iface', P)``; only the edited class re-resolves (name
  resolution elsewhere depends just on the class set and hierarchy — see
  ``ClassTable.has_member``).  A ``struct`` change, a class added or
  removed, or a duplicate rebuilds from scratch: the sharing relation
  and other classes' resolved ASTs could change in ways in-place
  revalidation cannot replay, and correctness beats reuse.

Dependency validation itself lives in :mod:`repro.lang.queries`
(red/green over a :class:`~repro.lang.queries.VersionStore`); this
module only decides *which* input keys an edit bumps.
"""

from __future__ import annotations

import dataclasses
import re
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from ..diagnostics import Diagnostic, DiagnosticSink
from ..errors import JnsError
from ..obs import TRACER
from ..source import ast
from ..source.lexer import tokenize
from ..source.parser import parse_decls, parse_program
from ..source.tokens import Token
from .classtable import ClassTable, EditNotice, path_str
from .provenance import PROVENANCE as _PROV
from .queries import caches_enabled
from .resolve import _resolve_member
from .typecheck import CheckReport, check_program
from .types import Path

__all__ = ["IncrementalChecker", "Sig", "class_sigs", "split_chunks"]

#: Column-0 start of a top-level class declaration.  A false split (the
#: pattern matching inside a block comment) is harmless: the standalone
#: reparse of either neighboring chunk fails and we fall back to a full
#: parse.
_CHUNK_RE = re.compile(r"^(?:abstract[ \t]+)?class\b", re.MULTILINE)

#: Start of a nested class at a specific indent inside a family wrapper
#: (built per-wrapper; J&s programs conventionally nest one level under
#: a family class, e.g. every CorONA class sits inside ``class corona``).
def _nested_re(indent: str) -> "re.Pattern[str]":
    return re.compile(
        r"^" + re.escape(indent) + r"(?:abstract[ \t]+)?class\b", re.MULTILINE
    )


_INDENT_RE = re.compile(r"^([ \t]+)(?:abstract[ \t]+)?class\b", re.MULTILINE)
_CLOSE_RE = re.compile(r"^\}", re.MULTILINE)


@dataclasses.dataclass
class Sig:
    """The three change-granularity signatures of one class declaration."""

    struct: Any
    api: Any
    body: Any


#: Chunk kinds.  ``top`` and ``nested`` chunks parse standalone
#: (``nested`` under a prefix path); ``ctx`` chunks are raw fragments of
#: a family wrapper (its header, own members, closing brace) that must
#: survive an edit byte-for-byte — any change there is structural.
TOP, NESTED, CTX = "top", "nested", "ctx"


class Chunk:
    """A contiguous slice of source text.

    ``decls`` holds the class declarations rooted in this chunk (for
    ``ctx`` header chunks, the wrapper class itself).  ``prefix`` is the
    enclosing class path for ``nested`` chunks; ``member_indices`` maps
    each decl to its position in the wrapper's member list so an edited
    reparse can be spliced back in place.
    """

    __slots__ = ("kind", "text", "start_line", "prefix", "decls",
                 "member_indices")

    def __init__(
        self, kind: str, text: str, start_line: int, prefix: Path = ()
    ) -> None:
        self.kind = kind
        self.text = text
        self.start_line = start_line
        self.prefix = prefix
        self.decls: List[ast.ClassDecl] = []
        self.member_indices: List[int] = []

    @property
    def end_line(self) -> int:
        return self.start_line + self.text.count("\n")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Chunk({self.kind}, line={self.start_line}, "
            f"classes={len(self.decls)})"
        )


def _node_sig(node: Any) -> Any:
    """Generic structural signature of a *surface* AST subtree, positions
    included.  Only valid before resolution rewrites the tree."""
    if node is None or isinstance(node, (str, int, float, bool)):
        return node
    if isinstance(node, (list, tuple)):
        return tuple(_node_sig(x) for x in node)
    if dataclasses.is_dataclass(node):
        return (type(node).__name__,) + tuple(
            _node_sig(getattr(node, f.name))
            for f in dataclasses.fields(node)
        )
    return repr(node)


def _type_repr(t: Any) -> str:
    return "" if t is None else repr(t)


def class_sigs(decl: ast.ClassDecl) -> Sig:
    """Signatures of one class, nested classes excluded (they carry their
    own signatures under their own paths)."""
    struct = (
        decl.name,
        decl.abstract,
        tuple(_type_repr(t) for t in decl.extends),
        _type_repr(decl.shares),
        _type_repr(decl.adapts),
        tuple(f.name for f in decl.fields),
        tuple(c.name for c in decl.nested_classes),
    )
    api: List[Any] = [("class", decl.pos)]
    body: List[Any] = []
    for m in decl.members:
        if isinstance(m, ast.ClassDecl):
            continue
        if isinstance(m, ast.FieldDecl):
            api.append(("field", m.name, m.final, _node_sig(m.type), m.pos,
                        _node_sig(m.init)))
        elif isinstance(m, ast.MethodDecl):
            api.append(
                ("method", m.name, m.abstract, _node_sig(m.ret_type),
                 _node_sig(m.params), _node_sig(m.constraints), m.pos,
                 m.body is None)
            )
            body.append(("method", m.name, _node_sig(m.body)))
        elif isinstance(m, ast.CtorDecl):
            api.append(("ctor", m.name, _node_sig(m.params), m.pos))
            body.append(("ctor", m.name, _node_sig(m.body)))
    return Sig(struct, tuple(api), tuple(body))


def split_chunks(source: str) -> Optional[List[Chunk]]:
    """Split ``source`` into a flat chunk sequence, purely textually.

    Level 1 splits at column-0 class starts.  A level-1 region that
    contains nested-class anchors at a uniform indent and ends in a
    column-0 ``}`` is further split into a ``ctx`` header (wrapper
    declaration plus any leading members), one ``nested`` chunk per
    anchor, and a ``ctx`` trailer from the last column-0 ``}`` on.  The
    split is a guess: the build/edit paths validate it against parsed
    declarations and fall back to coarser chunks (or a scratch build)
    whenever it lies.  Returns ``None`` when there is nothing to split
    on or the pieces do not reassemble byte-for-byte.
    """
    starts = [m.start() for m in _CHUNK_RE.finditer(source)]
    if not starts:
        return None
    if starts[0] != 0:
        starts[0] = 0  # fold any preamble (comments, blanks) into chunk 0
    chunks: List[Chunk] = []
    for i, s in enumerate(starts):
        e = starts[i + 1] if i + 1 < len(starts) else len(source)
        chunks.extend(_split_region(source[s:e], source.count("\n", 0, s) + 1))
    if "".join(c.text for c in chunks) != source:
        return None
    return chunks


def _split_region(text: str, start_line: int) -> List[Chunk]:
    """Split one level-1 region (a single ``Chunk`` worth of text) into
    wrapper ``ctx`` pieces and per-nested-class chunks when the region
    has the family-wrapper shape; otherwise one ``top`` chunk."""
    whole = [Chunk(TOP, text, start_line)]
    first = _INDENT_RE.search(text)
    if first is None:
        return whole
    closes = list(_CLOSE_RE.finditer(text))
    if not closes:
        return whole
    trailer_at = closes[-1].start()
    anchors = [
        m.start()
        for m in _nested_re(first.group(1)).finditer(text)
        if m.start() < trailer_at
    ]
    if not anchors or anchors[0] == 0 or trailer_at <= anchors[-1]:
        return whole
    bounds = anchors + [trailer_at]
    out = [Chunk(CTX, text[: bounds[0]], start_line)]
    for i in range(len(anchors)):
        s, e = bounds[i], bounds[i + 1]
        out.append(
            Chunk(NESTED, text[s:e], start_line + text.count("\n", 0, s))
        )
    out.append(
        Chunk(CTX, text[trailer_at:], start_line + text.count("\n", 0, trailer_at))
    )
    return out


def _collect_paths(
    decl: ast.ClassDecl, prefix: Path, out: Dict[Path, ast.ClassDecl]
) -> bool:
    """Register ``decl`` and its nested classes into ``out``; ``False``
    on a duplicate path (caller falls back to scratch, which reports the
    duplicate exactly like the batch pipeline)."""
    path = prefix + (decl.name,)
    if path in out:
        return False
    out[path] = decl
    for nested in decl.nested_classes:
        if not _collect_paths(nested, path, out):
            return False
    return True


def _wire_group(unit: List[Chunk], top_decls: List[ast.ClassDecl]) -> bool:
    """Wire one wrapper group ``[ctx header, nested..., ctx trailer]`` to
    its parsed family class: the header owns the wrapper declaration,
    each nested chunk the member classes that start inside it (recorded
    with their index in the wrapper's member list).  ``False`` when the
    textual guess does not match the parse — the caller collapses the
    group to a coarse chunk.  Partial mutation is fine: collapsed chunks
    are discarded."""
    header, nested, trailer = unit[0], unit[1:-1], unit[-1]
    if len(top_decls) != 1:
        return False
    wrapper = top_decls[0]
    if not header.start_line <= wrapper.pos[0] < nested[0].start_line:
        return False
    header.decls = [wrapper]
    prefix = (wrapper.name,)
    ni = 0
    for idx, member in enumerate(wrapper.members):
        if not isinstance(member, ast.ClassDecl):
            continue
        line = member.pos[0]
        while ni + 1 < len(nested) and nested[ni + 1].start_line <= line:
            ni += 1
        ch = nested[ni]
        if not ch.start_line <= line <= ch.end_line:
            return False
        if not ch.decls and line != ch.start_line:
            return False  # the anchor line is not a real class start
        ch.decls.append(member)
        ch.member_indices.append(idx)
    if any(not ch.decls for ch in nested):
        return False
    for ch in nested:
        ch.prefix = prefix
    return True


class IncrementalChecker:
    """A long-lived check session over one evolving source text.

    ``check()`` returns a :class:`~repro.diagnostics.DiagnosticSink`
    byte-identical to ``repro.api.check_source`` on the current text;
    ``apply_edit(new_source)`` swaps the text in, reusing parses,
    resolutions, and cached judgments that the edit provably left
    intact.
    """

    def __init__(
        self,
        source: str,
        file: Optional[str] = None,
        strict_sharing: bool = False,
    ) -> None:
        self.file = file
        self.strict_sharing = strict_sharing
        self.source = ""
        self.table: Optional[ClassTable] = None
        self.last_report: Optional[CheckReport] = None
        self.last_stats: Dict[str, Any] = {}
        self._parse_diags: List[Diagnostic] = []
        self._resolve_diags: Dict[Path, List[Diagnostic]] = {}
        self._abort_diag: Optional[Diagnostic] = None
        self._chunks: Optional[List[Chunk]] = None
        self._sigs: Dict[Path, Sig] = {}
        self._build_scratch(source, reason="initial")

    # ------------------------------------------------------------------
    # from-scratch build (also the fallback for irregular edits)
    # ------------------------------------------------------------------

    def _build_scratch(self, source: str, reason: str) -> None:
        t0 = perf_counter()
        self.source = source
        self.table = None
        self._abort_diag = None
        self._parse_diags = []
        self._resolve_diags = {}
        self._chunks = None
        self._sigs = {}
        sink = DiagnosticSink(file=self.file)
        unit = parse_program(source, file=self.file, sink=sink)
        self._parse_diags = list(sink.diagnostics)
        # Signatures must be taken *now*: resolution below rewrites the
        # same AST nodes in place, and edit-time signatures (computed on
        # fresh, unresolved reparses) must compare against like form.
        chunks = None
        if not self._parse_diags:
            chunks = self._assign_chunks(source, unit.classes)
        if chunks is not None:
            cmap: Optional[Dict[Path, ast.ClassDecl]] = {}
            for decl in unit.classes:
                if not _collect_paths(decl, (), cmap):
                    cmap = None  # duplicate; ClassTable below reports it
                    break
            if cmap is None:
                chunks = None
            else:
                for path, decl in cmap.items():
                    self._sigs[path] = class_sigs(decl)
        try:
            table = ClassTable(unit)
        except JnsError as exc:
            # Mirror check_source: a table-construction failure (duplicate
            # class) aborts resolution and checking wholesale.
            self._abort_diag = sink.add_exc(exc)
            self._sigs = {}
            self._finish_stats("scratch", reason, t0, dirty=[])
            return
        self.table = table
        self._resolve_all(table)
        self._chunks = chunks
        self._finish_stats("scratch", reason, t0, dirty=list(table.explicit))

    def _assign_chunks(
        self, source: str, top_decls: List[ast.ClassDecl]
    ) -> Optional[List[Chunk]]:
        """Validate the textual split against the parsed declarations and
        wire declaration objects (and wrapper member indices) onto the
        chunks.  A wrapper group that does not line up with a real family
        class collapses back into one coarse ``top`` chunk."""
        chunks = split_chunks(source)
        if chunks is None:
            return None
        units: List[List[Chunk]] = []
        i = 0
        while i < len(chunks):
            if chunks[i].kind == TOP:
                units.append([chunks[i]])
                i += 1
                continue
            j = i + 1
            while j < len(chunks) and chunks[j].kind == NESTED:
                j += 1
            if j >= len(chunks) or chunks[j].kind != CTX:
                return None  # malformed split
            units.append(chunks[i : j + 1])
            i = j + 1
        per_unit: List[List[ast.ClassDecl]] = [[] for _ in units]
        ui = 0
        for decl in top_decls:
            line = decl.pos[0]
            while ui + 1 < len(units) and units[ui + 1][0].start_line <= line:
                ui += 1
            per_unit[ui].append(decl)
        out: List[Chunk] = []
        for unit, decls in zip(units, per_unit):
            if len(unit) == 1:
                unit[0].decls = decls
                out.append(unit[0])
            elif _wire_group(unit, decls):
                out.extend(unit)
            else:
                coarse = Chunk(
                    TOP,
                    "".join(c.text for c in unit),
                    unit[0].start_line,
                )
                coarse.decls = decls
                out.append(coarse)
        return out

    # ------------------------------------------------------------------
    # resolution (per class, diagnostics kept per class)
    # ------------------------------------------------------------------

    def _resolve_all(self, table: ClassTable) -> None:
        if not TRACER.enabled:
            for path, info in list(table.explicit.items()):
                self._resolve_diags[path] = self._resolve_class(
                    table, path, info.decl
                )
            return
        with TRACER.span("resolve", classes=len(table.explicit)):
            for path, info in list(table.explicit.items()):
                self._resolve_diags[path] = self._resolve_class(
                    table, path, info.decl
                )

    def _resolve_class(
        self, table: ClassTable, path: Path, decl: ast.ClassDecl
    ) -> List[Diagnostic]:
        """One class's slice of ``resolve_program``: per-member recovery,
        ``_resolve_failed`` flags for the checker, diagnostics returned
        in member order (matching the batch resolver's interleaving)."""
        csink = DiagnosticSink(file=self.file)
        for member in decl.members:
            member._resolve_failed = False
            try:
                _resolve_member(member, table, path)
            except JnsError as exc:
                csink.add_exc(exc, where=path_str(path))
                member._resolve_failed = True
        return csink.diagnostics

    # ------------------------------------------------------------------
    # edits
    # ------------------------------------------------------------------

    def apply_edit(self, new_source: str) -> Dict[str, Any]:
        """Swap in ``new_source``, invalidating only what it changed.

        Returns a stats dict: ``strategy`` (``'incremental'`` /
        ``'scratch'`` / ``'noop'``), ``reason`` for scratch rebuilds,
        ``dirty`` (class paths whose inputs were bumped), and timing.
        """
        t0 = perf_counter()
        if new_source == self.source:
            self.last_stats = {
                "strategy": "noop",
                "reason": None,
                "dirty": [],
                "edit_ms": (perf_counter() - t0) * 1e3,
            }
            return self.last_stats
        if (
            not caches_enabled()
            or self.table is None
            or self._chunks is None
            or self._parse_diags
        ):
            self._build_scratch(new_source, reason="unchunked")
            return self.last_stats
        plan = self._plan_edit(new_source)
        if isinstance(plan, str):
            self._build_scratch(new_source, reason=plan)
            return self.last_stats
        new_chunks, splices, bumps, dirty = plan
        self._apply_plan(new_source, new_chunks, splices, bumps, dirty)
        if TRACER.enabled:
            TRACER.count("incr.dirty", len(dirty))
        self._finish_stats("incremental", None, t0, dirty=dirty)
        return self.last_stats

    def _plan_edit(self, new_source: str):
        """Classify the edit against the current chunk sequence.

        The new split must be *positionally parallel* to the old one
        (same chunk count, kinds, and — for ``ctx`` fragments — same
        bytes at the same lines); anything else is a structural edit and
        returns a scratch-rebuild reason string.  Otherwise returns
        ``(new_chunks, splices, bump_keys, dirty_paths)`` where each
        splice is ``(path, new_decl, mode)`` with mode ``'replace'`` (an
        interface change: the declaration object is swapped out and
        every judgment that read it is bumped), ``'graft'`` (a body-only
        change: the resolved declaration object is *kept* and the new
        bodies are grafted into its members, so surviving cache entries
        that hold the member objects — vtables, ``find_method`` results —
        can never expose a stale body), or ``'refresh'`` (positions and
        content identical: the fresh object is swapped in without any
        bump; retained cache entries reference the old, byte-identical
        members, which is indistinguishable).
        """
        table = self.table
        assert table is not None and self._chunks is not None
        new_chunks = split_chunks(new_source)
        if new_chunks is None or len(new_chunks) != len(self._chunks):
            return "reshape"
        splices: List[Tuple[Path, ast.ClassDecl, str]] = []
        bumps: List[Tuple[Any, ...]] = []
        dirty: List[Path] = []
        for oc, nc in zip(self._chunks, new_chunks):
            if oc.kind != nc.kind:
                return "reshape"
            if oc.kind == CTX:
                if oc.text != nc.text or oc.start_line != nc.start_line:
                    return "wrapper-edit"
                nc.decls = oc.decls
                continue
            nc.prefix = oc.prefix
            nc.member_indices = oc.member_indices
            if oc.text == nc.text and oc.start_line == nc.start_line:
                nc.decls = oc.decls  # identity reuse
                continue
            try:
                toks = tokenize(nc.text)
                delta = nc.start_line - 1
                if delta:
                    toks = [
                        Token(t.kind, t.value, t.line + delta, t.col)
                        for t in toks
                    ]
                nc.decls = parse_decls(toks, file=self.file)
            except JnsError:
                return "parse-error"
            if len(nc.decls) != len(oc.decls) or any(
                n.name != o.name for n, o in zip(nc.decls, oc.decls)
            ):
                return "classset"
            sub: Dict[Path, ast.ClassDecl] = {}
            for decl in nc.decls:
                if not _collect_paths(decl, nc.prefix, sub):
                    return "duplicate-class"
            replaced: set = set()
            for path in sorted(sub, key=len):
                decl = sub[path]
                if path not in table.explicit:
                    return "classset"
                new_sig = class_sigs(decl)
                old_sig = self._sigs.get(path)
                if old_sig is None or new_sig.struct != old_sig.struct:
                    return "structural"
                # A replaced ancestor already carries this fresh object in
                # its member list, so the table entry must follow suit:
                # body-only children escalate to replace (with the iface
                # bump that kills retained references), unchanged children
                # to refresh.
                anc = any(
                    path[:k] in replaced for k in range(1, len(path))
                )
                api_diff = new_sig.api != old_sig.api
                body_diff = new_sig.body != old_sig.body
                if api_diff or (anc and body_diff):
                    replaced.add(path)
                    splices.append((path, decl, "replace"))
                    bumps.append(("iface", path))
                    bumps.append(("body", path))
                    dirty.append(path)
                elif body_diff:
                    splices.append((path, decl, "graft"))
                    bumps.append(("body", path))
                    dirty.append(path)
                elif anc:
                    splices.append((path, decl, "refresh"))
                self._sigs[path] = new_sig
        return new_chunks, splices, bumps, dirty

    def _apply_plan(
        self,
        new_source: str,
        new_chunks: List[Chunk],
        splices: List[Tuple[Path, ast.ClassDecl, str]],
        bumps: List[Tuple[Any, ...]],
        dirty: List[Path],
    ) -> None:
        table = self.table
        assert table is not None
        retired: set = set()
        spliced: set = set()
        # Top-down, so a nested replace finds its (possibly just-swapped)
        # parent already holding the member list it must patch.
        for path, decl, mode in sorted(splices, key=lambda s: len(s[0])):
            old = table.explicit[path].decl
            spliced.add(path)
            if mode == "graft":
                # Body-only change: keep the resolved declaration object
                # and graft the fresh bodies into its members, so every
                # surviving cache entry that retained them (vtables,
                # ``find_method`` results green-revalidated under an
                # unchanged interface) observes the new bodies.  The
                # member ids are retired so compiled bodies re-compile.
                old_ms = [
                    m for m in old.members
                    if not isinstance(m, ast.ClassDecl)
                ]
                new_ms = [
                    m for m in decl.members
                    if not isinstance(m, ast.ClassDecl)
                ]
                for om, nm in zip(old_ms, new_ms):
                    if isinstance(om, (ast.MethodDecl, ast.CtorDecl)):
                        om.body = nm.body
                        retired.add(id(om))
                continue
            # replace / refresh: swap the fresh object into the parent's
            # member list (the compilation unit for a top-level class) so
            # unit-walking consumers stay coherent.  A parent replaced
            # earlier this round already carries the new child, in which
            # case the identity search finds nothing and skips.
            retired.add(id(old))
            retired.update(id(m) for m in old.members)
            if len(path) == 1:
                siblings = table.unit.classes
            else:
                parent = table.explicit.get(path[:-1])
                siblings = (
                    parent.decl.members if parent is not None else []
                )
            for i, d in enumerate(siblings):
                if d is old:
                    siblings[i] = decl
                    break
            table.replace_decl(path, decl)
        if bumps:
            table.versions.bump(bumps)
        # Re-resolve spliced classes in declaration order: replaced and
        # refreshed ASTs are fresh (fully unresolved), grafted ones have
        # resolved signatures but fresh bodies — member resolution is
        # idempotent on the resolved parts.  Everything else keeps its
        # resolved AST and its cached per-class resolve diagnostics.
        for path in table.explicit:
            if path in spliced:
                self._resolve_diags[path] = self._resolve_class(
                    table, path, table.explicit[path].decl
                )
        if splices:
            # Never let a later --explain splice a derivation recorded
            # against the pre-edit program (see Provenance.purge).
            _PROV.purge()
        self.source = new_source
        self._chunks = new_chunks
        if splices:
            affected = set(dirty)
            for p in table.explicit:
                if p not in affected and any(
                    table.inherits(p, d) for d in dirty
                ):
                    affected.add(p)
            table.notify_edit(
                EditNotice(dirty, affected, retired, structural=False)
            )

    # ------------------------------------------------------------------
    # checking
    # ------------------------------------------------------------------

    def check(self) -> DiagnosticSink:
        """All diagnostics for the current text, byte-identical to
        ``check_source(self.source, file=self.file, ...)``."""
        sink = DiagnosticSink(file=self.file)
        sink.extend(self._parse_diags)
        if self.table is None:
            if self._abort_diag is not None:
                sink.add(self._abort_diag)
            return sink
        for path in self.table.explicit:
            sink.extend(self._resolve_diags.get(path, ()))
        pre = self._probe_statuses()
        try:
            report = check_program(
                self.table, strict_sharing=self.strict_sharing
            )
        except JnsError as exc:
            sink.add_exc(exc)
            # Cached state may be part-built; force a clean slate on the
            # next edit rather than revalidating against it.
            self._chunks = None
            return sink
        self._account(pre)
        for diag in report.errors + report.warnings:
            sink.add(diag)
        self.last_report = report
        return sink

    def _probe_statuses(self) -> Dict[str, Any]:
        assert self.table is not None
        q = self.table.queries.query("check_class")
        statuses = [
            q.get_status((path, self.strict_sharing))
            for path in self.table.explicit
        ]
        return {
            "reused": statuses.count("reused"),
            "revalidate": statuses.count("revalidate"),
            "miss": statuses.count("miss"),
            "misses_before": q.misses,
            "query": q,
        }

    def _account(self, pre: Dict[str, Any]) -> None:
        recomputed = pre["query"].misses - pre["misses_before"]
        revalidated = max(0, pre["revalidate"] - max(0, recomputed - pre["miss"]))
        reused = pre["reused"]
        if TRACER.enabled:
            TRACER.count("incr.revalidated", revalidated)
            TRACER.count("incr.reused", reused)
        self.last_stats["check"] = {
            "reused": reused,
            "revalidated": revalidated,
            "recomputed": recomputed,
        }

    # ------------------------------------------------------------------

    def _finish_stats(
        self,
        strategy: str,
        reason: Optional[str],
        t0: float,
        dirty: List[Path],
    ) -> None:
        self.last_stats = {
            "strategy": strategy,
            "reason": reason,
            "dirty": [path_str(p) for p in dirty],
            "edit_ms": (perf_counter() - t0) * 1e3,
        }
