"""Provenance-tracked derivations for the semantic judgments (ISSUE 5).

The memoized query engine (:mod:`repro.lang.queries`) answers *whether*
``T1 <= T2`` or ``T1 ~> T2`` holds; this module records *why*.  When the
process-wide recorder :data:`PROVENANCE` is enabled, every instrumented
judgment site — subtype, bound, ``mem``, ``fclass``, sharing groups,
``required_masks``, SH-CLS ``type_shares``, and the full ``~>`` judgment
— pushes a frame, lets its recursive sub-judgments attach themselves as
premises, and pops a :class:`Derivation`: an immutable proof-tree node
carrying the judgment name, a human-readable subject, the paper rule
that decided it (SH-CLS, S-MASK, prefixExact_k, …), the result, and the
premise derivations.

Memoization stays transparent: when a judgment is answered from its
query cache, the derivation recorded when the entry was *computed* is
spliced into the tree (marked ``(cached)``), so a proof tree looks the
same whether or not the memo tables were warm.  Failed judgments can be
pruned to a *refutation* — the failing premise chain, recursively — which
the type checker attaches to ``JNS-*`` diagnostics under
``check --json --explain`` and ``repro explain`` renders as text.

The discipline mirrors :mod:`repro.obs`: recording is off by default and
each instrumented site pays exactly one ``if PROVENANCE.enabled:``
attribute load and branch when off, so the ≤ 5% disabled-overhead bound
of ``benchmarks/test_obs_json.py`` covers this layer too.  When the
tracer is also enabled, recording bumps ``provenance.recorded`` /
``provenance.spliced`` counters (aggregate and per judgment) and feeds a
``provenance.premises.<judgment>`` histogram, so provenance cost is
itself observable.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..obs import TRACER

__all__ = [
    "Derivation",
    "Provenance",
    "PROVENANCE",
    "enable",
    "disable",
    "enabled",
]

#: Completed root derivations kept per recording session (old roots fall
#: off the front; splice storage is unaffected).
MAX_ROOTS = 64


def _elem_text(x: Any) -> str:
    """Render one element of a set/tuple result; class paths (tuples of
    names) print dotted."""
    if isinstance(x, tuple) and all(isinstance(s, str) for s in x):
        return ".".join(x) or "<top>"
    return str(x)


def _result_text(result: Any) -> str:
    """Render a judgment result for one proof-tree line."""
    if result is True:
        return "holds"
    if result is False:
        return "fails"
    if isinstance(result, frozenset):
        return "{" + ", ".join(sorted(_elem_text(x) for x in result)) + "}"
    if isinstance(result, tuple):
        if result and all(isinstance(s, str) for s in result):
            return ".".join(result)  # a class path
        return "{" + ", ".join(_elem_text(x) for x in result) + "}"
    return repr(result)


def _result_json(result: Any) -> Any:
    if isinstance(result, frozenset):
        return sorted(_elem_text(x) for x in result)
    if isinstance(result, tuple):
        if result and all(isinstance(s, str) for s in result):
            return ".".join(result)  # a class path
        return [_elem_text(x) for x in result]
    if isinstance(result, (bool, int, float, str)) or result is None:
        return result
    return repr(result)


class Derivation:
    """One node of a proof tree: a judgment instance, the rule that
    decided it, its result, and the sub-judgments it rests on."""

    __slots__ = ("judgment", "subject", "rule", "result", "premises", "cached", "loc")

    def __init__(
        self,
        judgment: str,
        subject: str,
        rule: Optional[str],
        result: Any,
        premises: Tuple["Derivation", ...] = (),
        cached: bool = False,
        loc: Optional[str] = None,
    ) -> None:
        self.judgment = judgment
        self.subject = subject
        self.rule = rule
        self.result = result
        self.premises = premises
        self.cached = cached
        self.loc = loc

    @property
    def failed(self) -> bool:
        return self.result is False

    def size(self) -> int:
        return 1 + sum(p.size() for p in self.premises)

    def line(self) -> str:
        """The one-line rendering of this node (no premises)."""
        text = f"{self.judgment} {self.subject} => {_result_text(self.result)}"
        if self.rule:
            text += f"  [{self.rule}]"
        if self.cached:
            text += "  (cached)"
        if self.loc:
            text += f"  @ {self.loc}"
        return text

    def format(self, indent: str = "", max_depth: int = 24) -> str:
        """Indented proof tree, premises nested two spaces per level."""
        lines: List[str] = []
        self._format_into(lines, indent, max_depth)
        return "\n".join(lines)

    def _format_into(self, lines: List[str], indent: str, depth: int) -> None:
        lines.append(indent + self.line())
        if depth <= 0 and self.premises:
            lines.append(indent + "  ... (" + str(self.size() - 1) + " premises elided)")
            return
        for p in self.premises:
            p._format_into(lines, indent + "  ", depth - 1)

    def refutation(self) -> Optional["Derivation"]:
        """For a failed judgment, the pruned tree explaining the failure:
        this node with only its failing premises, each refuted
        recursively.  A failing node with no failing premises is a leaf
        refutation (the rule's side condition itself failed).  Returns
        None when the judgment did not fail."""
        if self.result is not False:
            return None
        pruned = tuple(
            p.refutation() or p for p in self.premises if p.result is False
        )
        return Derivation(
            self.judgment, self.subject, self.rule, False, pruned, self.cached, self.loc
        )

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "judgment": self.judgment,
            "subject": self.subject,
            "result": _result_json(self.result),
        }
        if self.rule:
            payload["rule"] = self.rule
        if self.cached:
            payload["cached"] = True
        if self.loc:
            payload["loc"] = self.loc
        if self.premises:
            payload["premises"] = [p.to_dict() for p in self.premises]
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Derivation {self.line()} premises={len(self.premises)}>"


class _Frame:
    """An in-progress judgment on the recorder stack."""

    __slots__ = ("judgment", "subject", "rule", "children", "loc")

    def __init__(self, judgment: str, subject: str, loc: Optional[str]) -> None:
        self.judgment = judgment
        self.subject = subject
        self.rule: Optional[str] = None
        self.children: List[Derivation] = []
        self.loc = loc


class _Capture:
    """Context manager that collects the derivations produced directly
    inside its body (a no-op when recording is disabled), so callers —
    the type checker, the CLI — can grab a proof tree without knowing
    whether provenance is on."""

    __slots__ = ("_prov", "_frame", "derivations")

    def __init__(self, prov: "Provenance") -> None:
        self._prov = prov
        self._frame: Optional[_Frame] = None
        self.derivations: Tuple[Derivation, ...] = ()

    def __enter__(self) -> "_Capture":
        if self._prov.enabled:
            self._frame = self._prov.begin("<capture>", "")
        return self

    def __exit__(self, *exc: Any) -> bool:
        if self._frame is not None:
            self._prov._pop(self._frame)
            self.derivations = tuple(self._frame.children)
            self._frame = None
        return False

    @property
    def derivation(self) -> Optional[Derivation]:
        """The first captured derivation (the judgment the body ran)."""
        return self.derivations[0] if self.derivations else None

    def failed(self) -> Optional[Derivation]:
        """The first captured derivation that failed, if any."""
        for d in self.derivations:
            if d.result is False:
                return d
        return None


class Provenance:
    """The derivation recorder.  All state is per instance so tests can
    build private recorders; production code uses :data:`PROVENANCE`,
    whose ``enabled`` flag is the single branch every judgment site pays
    while recording is off.

    Protocol at an instrumented site::

        frame = PROVENANCE.begin("subtype", f"{t1!r} <= {t2!r}")
        try:
            cached = q.get(key)
            if cached is not MISS:
                return PROVENANCE.end_hit(frame, ("subtype", id(table), key), cached)
            result = q.put(key, compute())   # recursion re-enters recording
            return PROVENANCE.end(frame, result, key=("subtype", id(table), key))
        except BaseException:
            PROVENANCE.abort(frame)
            raise

    ``end`` stores the finished derivation under ``key`` so a later
    cache *hit* on the same judgment can splice it back in via
    ``end_hit`` — memoization never makes a proof tree shallower.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.roots: List[Derivation] = []
        self._stack: List[_Frame] = []
        #: (judgment, id(owner), cache key) -> derivation recorded when
        #: the memo entry was computed; consulted on cache hits.
        self._store: Dict[Any, Derivation] = {}
        self.recorded: Dict[str, int] = {}
        self.spliced: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def enable(self, reset: bool = True) -> None:
        if reset:
            self.clear()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.roots.clear()
        self._stack.clear()
        self._store.clear()
        self.recorded.clear()
        self.spliced.clear()

    def purge(self) -> None:
        """Drop stored derivations after an invalidation or edit.

        Cached judgments recomputed against the new program must never
        splice a derivation recorded against the old one; after a purge,
        cache hits on surviving entries degrade to the honest
        "(cached) … memo (computed before recording)" leaf instead."""
        self._store.clear()

    def stats(self) -> Dict[str, Any]:
        """Per-judgment recorded/spliced counts (independent of the
        tracer; the tracer mirrors these as ``provenance.*`` counters)."""
        return {
            "recorded": dict(sorted(self.recorded.items())),
            "spliced": dict(sorted(self.spliced.items())),
        }

    # ------------------------------------------------------------------
    # recording protocol
    # ------------------------------------------------------------------

    def begin(self, judgment: str, subject: str, loc: Optional[str] = None) -> _Frame:
        frame = _Frame(judgment, subject, loc)
        self._stack.append(frame)
        return frame

    def _pop(self, frame: _Frame) -> None:
        # Reentrancy-safe unwind, mirroring obs._Span.__exit__.
        stack = self._stack
        while stack and stack[-1] is not frame:
            stack.pop()
        if stack:
            stack.pop()

    def _attach(self, d: Derivation) -> None:
        if self._stack:
            self._stack[-1].children.append(d)
        else:
            self.roots.append(d)
            if len(self.roots) > MAX_ROOTS:
                del self.roots[0]

    def end(
        self,
        frame: _Frame,
        result: Any,
        rule: Optional[str] = None,
        key: Any = None,
    ) -> Any:
        """Finish a computed (non-hit) judgment; returns ``result`` so
        sites can ``return PROVENANCE.end(...)``."""
        self._pop(frame)
        d = Derivation(
            frame.judgment,
            frame.subject,
            rule or frame.rule,
            result,
            tuple(frame.children),
            False,
            frame.loc,
        )
        self._attach(d)
        if key is not None:
            self._store[key] = d
        self.recorded[frame.judgment] = self.recorded.get(frame.judgment, 0) + 1
        tracer = TRACER
        if tracer.enabled:
            tracer.count("provenance.recorded")
            tracer.count("provenance.recorded." + frame.judgment)
            tracer.observe("provenance.premises." + frame.judgment, len(d.premises))
        return result

    def end_hit(
        self,
        frame: _Frame,
        key: Any,
        result: Any,
        rule: Optional[str] = None,
    ) -> Any:
        """Finish a judgment answered from a memo table, splicing the
        derivation stored when the entry was computed (a bare ``(cached)``
        leaf citing the memo when the entry predates recording)."""
        self._pop(frame)
        stored = self._store.get(key)
        if stored is not None:
            d = Derivation(
                stored.judgment,
                stored.subject,
                stored.rule,
                result,
                stored.premises,
                True,
                stored.loc,
            )
        else:
            d = Derivation(
                frame.judgment,
                frame.subject,
                rule or "memo (computed before recording)",
                result,
                (),
                True,
                frame.loc,
            )
        self._attach(d)
        self.spliced[frame.judgment] = self.spliced.get(frame.judgment, 0) + 1
        tracer = TRACER
        if tracer.enabled:
            tracer.count("provenance.spliced")
            tracer.count("provenance.spliced." + frame.judgment)
        return result

    def abort(self, frame: _Frame) -> None:
        """Unwind a frame whose judgment raised; nothing is recorded."""
        self._pop(frame)

    def rule(self, name: str) -> None:
        """Name the paper rule deciding the innermost open judgment."""
        if self._stack:
            self._stack[-1].rule = name

    def note(
        self,
        judgment: str,
        subject: str,
        result: Any = True,
        rule: Optional[str] = None,
    ) -> None:
        """Attach a leaf premise (a side condition with no sub-proof) to
        the innermost open judgment."""
        d = Derivation(judgment, subject, rule, result)
        self._attach(d)

    def capture(self) -> _Capture:
        return _Capture(self)


#: The process-wide recorder.  Judgment sites import this and guard with
#: ``if PROVENANCE.enabled:`` — one attribute load and branch when off.
PROVENANCE = Provenance()


def enabled() -> bool:
    return PROVENANCE.enabled


def enable(reset: bool = True) -> None:
    """Turn on the process-wide derivation recorder (clearing previously
    recorded derivations by default)."""
    PROVENANCE.enable(reset=reset)


def disable() -> None:
    PROVENANCE.disable()
