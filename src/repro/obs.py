"""Unified tracing, metrics, and profiling for the J&s pipeline and runtime.

One process-wide :class:`Tracer` (the module singleton :data:`TRACER`)
collects three kinds of observations:

* **Phase spans** — hierarchical wall-clock timings opened with
  ``with TRACER.span("typecheck", unit=name):``.  Every pipeline stage
  (lex → parse → resolve → typecheck → load → compile → run) opens one,
  so a single compile-and-run paints a tree of where time went.  Span
  durations also feed a per-name histogram (count/total/min/max plus
  p50/p95 from a deterministic sample reservoir), which is where the
  report's avg/p50/p95 columns come from.
* **Semantic events** — typed counters (and ring-buffer instants) for
  the paper-specific runtime operations: explicit/implicit view changes
  and reference-object memo hits (§6.3), dispatch inline-cache hit/miss,
  sharing-group fallback reads (§3.3), masked-field checks (§3), and
  conformance checks.  Giannini et al. (PAPERS.md) make sharing events
  first-class observations; this is the engineering counterpart.

  The chaos harness (:mod:`repro.programs.corona.driver`) mirrors its
  fault/recovery bookkeeping here when tracing is enabled: counters
  ``chaos.injected`` (with ``.crash/.drop/.delay/.fuel`` breakdowns),
  ``chaos.restart``, ``chaos.recovered``, ``retry.attempt``,
  ``retry.exhausted``, ``degraded.stale_serve``, and histograms
  ``evolution.pause_virtual_ms`` (virtual-time pause clients observe
  per shard transition), ``retry.per_request`` (retry amplification),
  ``degraded.staleness`` and ``staleness.cache_lag`` (versions behind
  the acknowledged head).
* **Event ring** — a bounded ``deque`` of finished spans and instant
  events, exportable as Chrome-trace JSON (``chrome://tracing`` /
  Perfetto) via :meth:`Tracer.to_chrome_trace`.

The disabled path is near-free by construction: instrumentation sites
guard with a single attribute load and branch (``if TRACER.enabled:``),
and :meth:`Tracer.span` returns a reusable no-op context manager when
disabled, so no objects are allocated, no clocks are read, and no lock
is taken.  ``benchmarks/test_obs_json.py`` measures the guard cost and
enforces the ≤ 5% disabled-overhead budget on the jolden driver.

The *enabled* path is thread-safe: ``repro serve`` handles sessions on
concurrent connection threads, so aggregate state (counters, histograms,
the event ring, the span-path aggregate) is guarded by one lock, while
the span *stack* is thread-local — each thread paints its own coherent
span tree, and records carry a small per-thread ``tid`` (assigned in
first-use order) that the Chrome-trace export emits so concurrent
sessions land on distinct tracks.  When the bounded ring overwrites an
old event, the ``events_dropped`` counter bumps (surfaced in the
``--profile`` report and in Chrome-trace ``otherData``), so silent loss
is visible.  ``Tracer.to_collapsed()`` folds the span-path aggregate
into collapsed-stack lines (``a;b;c VALUE``) for speedscope /
flamegraph.pl — see ``run/check --flame``.

The unified report (:func:`format_report`) folds a
:class:`~repro.lang.queries.CacheStats` snapshot into the same output,
so ``repro run --profile`` and the REPL's ``:profile`` show phase
timings, semantic events, and query-cache counters side by side.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

__all__ = [
    "Tracer",
    "TRACER",
    "Histogram",
    "SpanRecord",
    "InstantRecord",
    "enable",
    "disable",
    "enabled",
    "format_report",
]

#: Default capacity of the in-memory event ring.  Old events fall off
#: the front; aggregate counters/histograms are unaffected by drops.
DEFAULT_RING_CAPACITY = 16384

#: Distinct values kept per span-arg key in the phase-tree aggregate
#: (further distinct values are counted, not stored, so hot spans with
#: high-cardinality args — e.g. ``load`` with one ``unit`` per class —
#: stay bounded).
SPAN_ARG_VALUES = 4

#: Canonical pipeline ordering for the phase-timing report.
_PHASE_ORDER = {
    name: i
    for i, name in enumerate(
        (
            "lex",
            "parse",
            "resolve",
            "typecheck",
            "build_sharing",
            "check_class",
            "load",
            "compile",
            "run",
            # chaos-harness spans (repro corona) sort after the pipeline
            "corona.boot",
            "corona.evolve",
            "corona.restart",
        )
    )
}


#: Retained-sample cap per histogram for percentile estimation.  When
#: full, the reservoir decimates deterministically (keeps every other
#: sample and doubles its stride) — no randomness, so reports and tests
#: are reproducible.
HISTOGRAM_SAMPLES = 1024


class Histogram:
    """Streaming summary of a series of observations: exact count / total
    / min / max (Python integers do not overflow), plus p50/p95 estimated
    from a bounded, deterministically decimated sample reservoir."""

    __slots__ = ("name", "count", "total", "min", "max", "_samples", "_stride")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._stride = 1

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        # Deterministic reservoir: keep every _stride-th observation;
        # at capacity, thin to every other retained sample and double
        # the stride so long runs stay O(1) memory.
        if (self.count - 1) % self._stride == 0:
            self._samples.append(value)
            if len(self._samples) >= HISTOGRAM_SAMPLES:
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """The q-th percentile (0..100) estimated from the retained
        samples; None when nothing was observed."""
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        idx = min(len(ordered) - 1, int(len(ordered) * q / 100.0))
        return ordered[idx]

    @property
    def p50(self) -> Optional[float]:
        return self.percentile(50)

    @property
    def p95(self) -> Optional[float]:
        return self.percentile(95)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
        }


@dataclass(frozen=True)
class SpanRecord:
    """A finished span, as stored in the event ring."""

    name: str
    path: Tuple[str, ...]  #: ancestor span names, self last
    start_ns: int  #: relative to the tracer's enable() epoch
    dur_ns: int
    args: Tuple[Tuple[str, Any], ...]
    tid: int = 1  #: small per-thread id (first-use order), for Chrome tracks


@dataclass(frozen=True)
class InstantRecord:
    """A point-in-time semantic event, as stored in the event ring."""

    name: str
    ts_ns: int
    args: Tuple[Tuple[str, Any], ...]
    tid: int = 1


class _NullSpan:
    """Reusable no-op context manager handed out while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span: measures its own duration on exit, attributes child
    time to the parent frame, and records itself into the ring."""

    __slots__ = ("tracer", "name", "args", "start_ns", "path")

    def __init__(self, tracer: "Tracer", name: str, args: Dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self) -> "_Span":
        tracer = self.tracer
        tracer._stack.append(self)
        self.path = tuple(s.name for s in tracer._stack)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: Any) -> bool:
        end_ns = time.perf_counter_ns()
        tracer = self.tracer
        dur_ns = end_ns - self.start_ns
        # Reentrancy-safe unwind: pop frames above us if an exception
        # skipped their __exit__ (shouldn't happen with `with`, but a
        # generator-held span could outlive its parent).  The stack is
        # thread-local, so no lock is needed for it.
        stack = tracer._stack
        while stack and stack[-1] is not self:
            stack.pop()
        if stack:
            stack.pop()
        # Aggregate by call path (the report's tree) and by name (avg);
        # aggregates are shared across threads, so take the tracer lock
        # for the whole bookkeeping batch (one acquisition per span).
        with tracer._lock:
            agg = tracer._span_agg.get(self.path)
            if agg is None:
                agg = tracer._span_agg[self.path] = [0, 0, {}]
            agg[0] += 1
            agg[1] += dur_ns
            if self.args:
                summary = agg[2]
                for k, v in self.args.items():
                    entry = summary.get(k)
                    if entry is None:
                        entry = summary[k] = [[], 0]
                    values = entry[0]
                    if v not in values:
                        if len(values) < SPAN_ARG_VALUES:
                            values.append(v)
                        else:
                            entry[1] += 1
            tracer._histogram_locked("span." + self.name).observe(dur_ns)
            if tracer.enabled:  # disabled mid-span: drop the ring record
                rec = SpanRecord(
                    self.name,
                    self.path,
                    self.start_ns - tracer._epoch_ns,
                    dur_ns,
                    tuple(sorted(self.args.items())),
                    tracer._current_tid_locked(),
                )
                tracer._append_locked(rec)
        return False


class Tracer:
    """Process-wide trace/metric collector.  See the module docstring.

    All state is owned by the instance so tests can build private
    tracers; production code uses the :data:`TRACER` singleton, whose
    ``enabled`` flag is the one branch every instrumentation site pays
    when tracing is off.
    """

    def __init__(self, ring_capacity: int = DEFAULT_RING_CAPACITY) -> None:
        self.enabled = False
        self.events: Deque[Any] = deque(maxlen=ring_capacity)
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: total observations recorded while enabled (spans + instants +
        #: counter increments) — the disabled-overhead benchmark uses it
        #: as the count of guarded sites a workload actually traverses.
        self.observations = 0
        #: keep 1-in-N instant events in the ring/stream (counters and
        #: spans are unaffected); set via ``enable(sample_rate=N)``.
        self.sample_rate = 1
        self._instant_seq = 0
        #: optional JSONL sink (``open_stream``): every finished span and
        #: every kept instant is written as one Chrome-trace event object
        #: per line, independent of the bounded ring.
        self._stream = None
        #: ring overwrites since the last reset (old events silently
        #: falling off the front are production data loss — count it).
        self.events_dropped = 0
        #: guards counters/histograms/ring/span-aggregate on the
        #: *enabled* path; the disabled path never touches it.
        self._lock = threading.Lock()
        #: per-thread span stacks + small tids (see ``_stack``).
        self._tls = threading.local()
        self._tid_by_thread: Dict[int, int] = {}
        #: call-path tuple -> [count, total_ns, args_summary] where
        #: args_summary maps each span-arg key to [distinct values
        #: (bounded by SPAN_ARG_VALUES), overflow count]
        self._span_agg: Dict[Tuple[str, ...], List[Any]] = {}
        self._epoch_ns = time.perf_counter_ns()
        self._enabled_at_ns: Optional[int] = None

    @property
    def _stack(self) -> List["_Span"]:
        """This thread's live-span stack.  Thread-local so concurrent
        serve sessions each paint a coherent span tree instead of
        interleaving frames through one shared list."""
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _current_tid_locked(self) -> int:
        """Small per-thread id in first-use order (1 = first thread seen).
        Caller holds ``_lock``; the id is cached thread-locally so the
        map lookup happens once per thread."""
        tid = getattr(self._tls, "tid", None)
        if tid is None:
            ident = threading.get_ident()
            tid = self._tid_by_thread.get(ident)
            if tid is None:
                tid = self._tid_by_thread[ident] = len(self._tid_by_thread) + 1
            self._tls.tid = tid
        return tid

    def _append_locked(self, rec: Any) -> None:
        """Append one record to the ring (and stream), counting the
        overwrite when the ring is full.  Caller holds ``_lock``."""
        events = self.events
        if events.maxlen is not None and len(events) == events.maxlen:
            self.events_dropped += 1
            self.counters["events_dropped"] = (
                self.counters.get("events_dropped", 0) + 1
            )
        events.append(rec)
        if self._stream is not None:
            self._stream_write(rec)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def enable(self, reset: bool = True, sample_rate: int = 1) -> None:
        """Turn on collection.  ``sample_rate=N`` keeps one in every N
        instant events in the ring (and JSONL stream); counters,
        histograms, and spans are never sampled, so aggregates stay exact
        while high-volume instants stop churning the ring."""
        if sample_rate < 1:
            raise ValueError(f"sample_rate must be >= 1, got {sample_rate}")
        if reset:
            self.reset()
        self.enabled = True
        self.sample_rate = sample_rate
        self._epoch_ns = time.perf_counter_ns()
        self._enabled_at_ns = self._epoch_ns

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all collected data (ring, counters, histograms, stack).
        Per-thread tids survive — they are identities, not data."""
        with self._lock:
            self.events.clear()
            self.counters.clear()
            self.histograms.clear()
            self.observations = 0
            self.events_dropped = 0
            self._instant_seq = 0
            self._stack.clear()
            self._span_agg.clear()
            self._epoch_ns = time.perf_counter_ns()

    # ------------------------------------------------------------------
    # streaming export (JSONL)
    # ------------------------------------------------------------------

    def open_stream(self, path: str) -> None:
        """Stream events to ``path`` as JSON Lines: every finished span
        and every kept instant is appended as one Chrome-trace event
        object per line as it happens, so long-running workloads are not
        limited by the bounded in-memory ring."""
        self.close_stream()
        with self._lock:
            self._stream = open(path, "w")

    def close_stream(self) -> None:
        with self._lock:
            stream = self._stream
            self._stream = None
        if stream is not None:
            stream.close()

    def _stream_write(self, rec: Any) -> None:
        self._stream.write(json.dumps(_trace_event(rec)) + "\n")

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def span(self, name: str, **args: Any):
        """Open a hierarchical timing span.  Usable as
        ``with TRACER.span("typecheck", unit=cls):`` from any call site;
        returns a shared no-op context manager while disabled."""
        if not self.enabled:
            return _NULL_SPAN
        with self._lock:
            self.observations += 1
        return _Span(self, name, args)

    def event(self, name: str, **args: Any) -> None:
        """Record an instant semantic event into the ring (and bump the
        same-named counter).  Callers on hot paths must guard with
        ``if TRACER.enabled:`` — this method assumes it is only reached
        while enabled.  Under ``enable(sample_rate=N)`` only one in N
        instants lands in the ring/stream; the counter always bumps."""
        with self._lock:
            self.observations += 1
            self.counters[name] = self.counters.get(name, 0) + 1
            seq = self._instant_seq
            self._instant_seq = seq + 1
            if self.sample_rate > 1 and seq % self.sample_rate:
                return
            rec = InstantRecord(
                name,
                time.perf_counter_ns() - self._epoch_ns,
                tuple(sorted(args.items())),
                self._current_tid_locked(),
            )
            self._append_locked(rec)

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to a named counter (created on first use).  Python
        integers are unbounded, so counters accumulate without overflow."""
        with self._lock:
            self.observations += 1
            self.counters[name] = self.counters.get(name, 0) + n

    def _histogram_locked(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram(name)
        return h

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            return self._histogram_locked(name)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into a named histogram."""
        with self._lock:
            self.observations += 1
            self._histogram_locked(name).observe(value)

    # ------------------------------------------------------------------
    # exporters
    # ------------------------------------------------------------------

    def span_tree(self) -> List[Tuple[Tuple[str, ...], int, int]]:
        """Aggregated spans as (call path, count, total_ns), preorder in
        pipeline order (unknown span names sort after the known phases)."""
        key: Callable[[Tuple[str, ...]], Tuple] = lambda path: tuple(
            (_PHASE_ORDER.get(name, len(_PHASE_ORDER)), name) for name in path
        )
        with self._lock:
            items = list(self._span_agg.items())
        return [
            (path, agg[0], agg[1])
            for path, agg in sorted(items, key=lambda kv: key(kv[0]))
        ]

    def span_args(self, path: Tuple[str, ...]) -> Dict[str, Any]:
        """Bounded per-key summary of the args seen by spans at this call
        path: key -> {"values": [up to SPAN_ARG_VALUES distinct],
        "dropped": count of further distinct values}.  Empty when the
        spans carried no args."""
        agg = self._span_agg.get(path)
        if agg is None:
            return {}
        return {
            k: {"values": list(entry[0]), "dropped": entry[1]}
            for k, entry in agg[2].items()
        }

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The event ring as a Chrome-trace (Trace Event Format) object.

        Finished spans become complete events (``ph: "X"`` with ``ts`` /
        ``dur`` in microseconds); semantic events become thread-scoped
        instants (``ph: "i"``).  Records carry the per-thread ``tid``
        they were made on, so concurrent serve sessions render on
        distinct tracks.  Ring overwrites are reported in
        ``otherData.events_dropped``.  Loads in ``chrome://tracing`` and
        Perfetto; the schema is asserted by ``tests/test_obs.py``.
        """
        with self._lock:
            records = list(self.events)
            dropped = self.events_dropped
        trace_events: List[Dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 1,
                "args": {"name": "repro (J&s)"},
            }
        ]
        for tid in sorted({getattr(rec, "tid", 1) for rec in records}):
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": f"worker-{tid}"},
                }
            )
        trace_events.extend(_trace_event(rec) for rec in records)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {"events_dropped": dropped},
        }

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.to_chrome_trace(), f, indent=1)
            f.write("\n")

    def to_collapsed(self, weight: str = "us") -> str:
        """The span-path aggregate as collapsed-stack lines
        (``root;child;leaf VALUE``), the input format of flamegraph.pl
        and speedscope.  ``weight="us"`` weighs each frame by its *self*
        time in microseconds (child time is subtracted, so the folded
        graph sums correctly); ``weight="count"`` weighs by occurrence
        count, which is wall-clock-free and therefore byte-stable across
        seeded replays — the determinism tests fold with it.

        Frame labels are escaped (``;`` and whitespace are structural in
        the collapsed format: the former separates frames, the latter
        separates the stack from its weight), so a span named
        ``"check A; B"`` folds as one frame, not three."""
        from .profiler import fold_label

        if weight not in ("us", "count"):
            raise ValueError(f"weight must be 'us' or 'count', got {weight!r}")
        rows = self.span_tree()
        totals = {path: total for path, _, total in rows}
        lines = []
        for path, count, total_ns in rows:
            if weight == "count":
                value = count
            else:
                child_ns = sum(
                    t
                    for p, t in totals.items()
                    if len(p) == len(path) + 1 and p[: len(path)] == path
                )
                value = max(0, total_ns - child_ns) // 1000
            lines.append(";".join(fold_label(p) for p in path) + f" {value}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_collapsed(self, path: str, weight: str = "us") -> None:
        with open(path, "w") as f:
            f.write(self.to_collapsed(weight=weight))

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable aggregate snapshot (no ring contents)."""
        return {
            "enabled": self.enabled,
            "observations": self.observations,
            "events_dropped": self.events_dropped,
            "counters": dict(sorted(self.counters.items())),
            "histograms": {
                name: h.to_dict() for name, h in sorted(self.histograms.items())
            },
            "spans": [
                {
                    "path": list(path),
                    "count": count,
                    "total_ns": total,
                    **(
                        {"args": self.span_args(path)}
                        if self._span_agg[path][2]
                        else {}
                    ),
                }
                for path, count, total in self.span_tree()
            ],
        }

    # ------------------------------------------------------------------
    # report
    # ------------------------------------------------------------------

    def format_phases(self) -> str:
        """Human-readable phase-timing tree (indent = span nesting).  Spans
        that carried args show a bounded summary of the distinct values
        seen, e.g. ``unit=Main.main mode=jns`` (PR 3 follow-up)."""
        rows = self.span_tree()
        if not rows:
            return "phase timings: (no spans recorded)"
        lines = ["phase timings:"]
        width = max(2 * (len(p) - 1) + len(p[-1]) for p, _, _ in rows)
        width = max(width, len("phase"))
        lines.append(
            "  {:<{w}}  {:>7}  {:>10}  {:>10}  {:>10}  {:>10}".format(
                "phase", "count", "total", "avg", "p50", "p95", w=width
            )
        )
        for path, count, total_ns in rows:
            label = "  " * (len(path) - 1) + path[-1]
            hist = self.histograms.get("span." + path[-1])
            p50 = hist.p50 if hist is not None else None
            p95 = hist.p95 if hist is not None else None
            row = "  {:<{w}}  {:>7}  {:>10}  {:>10}  {:>10}  {:>10}".format(
                label,
                count,
                _fmt_ns(total_ns),
                _fmt_ns(total_ns // count),
                _fmt_ns(p50) if p50 is not None else "-",
                _fmt_ns(p95) if p95 is not None else "-",
                w=width,
            )
            summary = self._span_agg[path][2]
            if summary:
                row += "  " + _fmt_span_args(summary)
            lines.append(row)
        return "\n".join(lines)

    def format_events(self) -> str:
        """Semantic event counters (everything that isn't a span)."""
        items = sorted(self.counters.items())
        if not items:
            return "semantic events: (none recorded)"
        lines = ["semantic events:"]
        width = max(len(name) for name, _ in items)
        for name, value in items:
            lines.append("  {:<{w}}  {:>10}".format(name, value, w=width))
        return "\n".join(lines)


def _trace_event(rec: Any) -> Dict[str, Any]:
    """One ring record as a Chrome-trace (Trace Event Format) object —
    shared by :meth:`Tracer.to_chrome_trace` and the JSONL stream."""
    if isinstance(rec, SpanRecord):
        return {
            "name": rec.name,
            "cat": "phase",
            "ph": "X",
            "ts": rec.start_ns / 1000.0,
            "dur": rec.dur_ns / 1000.0,
            "pid": 1,
            "tid": rec.tid,
            "args": dict(rec.args),
        }
    return {
        "name": rec.name,
        "cat": "semantic",
        "ph": "i",
        "ts": rec.ts_ns / 1000.0,
        "s": "t",
        "pid": 1,
        "tid": rec.tid,
        "args": dict(rec.args),
    }


def _fmt_span_args(summary: Dict[str, Any]) -> str:
    """Render a span-arg summary: ``key=v1,v2`` per key, with an
    ``…+N`` suffix when distinct values beyond the cap were dropped."""
    parts = []
    for k in sorted(summary):
        values, dropped = summary[k]
        text = ",".join(str(v) for v in values)
        if dropped:
            text += f",…+{dropped}"
        parts.append(f"{k}={text}")
    return " ".join(parts)


def _fmt_ns(ns: float) -> str:
    """Adaptive duration formatting: ns -> µs -> ms -> s."""
    if ns < 1_000:
        return f"{ns:.0f}ns"
    if ns < 1_000_000:
        return f"{ns / 1_000:.1f}µs"
    if ns < 1_000_000_000:
        return f"{ns / 1_000_000:.2f}ms"
    return f"{ns / 1_000_000_000:.3f}s"


#: The process-wide tracer.  Instrumentation sites import this and guard
#: with ``if TRACER.enabled:`` — one attribute load and branch when off.
TRACER = Tracer()


def enabled() -> bool:
    return TRACER.enabled


def enable(reset: bool = True, sample_rate: int = 1) -> None:
    """Turn on the process-wide tracer (clearing old data by default).
    ``sample_rate=N`` keeps 1-in-N instant events in the ring/stream;
    spans and counters are never sampled."""
    TRACER.enable(reset=reset, sample_rate=sample_rate)


def disable() -> None:
    TRACER.disable()


def format_report(
    tracer: Optional[Tracer] = None, cache_stats: Optional[Any] = None
) -> str:
    """The unified observability report: phase timings + semantic events
    (+ a :class:`~repro.lang.queries.CacheStats` section when provided).
    Shared by ``repro run --profile``, ``repro check --profile``, and the
    REPL's ``:profile`` / ``:stats`` meta-commands."""
    tracer = TRACER if tracer is None else tracer
    parts = [tracer.format_phases(), tracer.format_events()]
    if cache_stats is not None:
        parts.append(cache_stats.format())
    return "\n\n".join(parts)
