"""Deterministic fault injection for the CorONA chaos driver (ISSUE 6).

This module supplies the three ingredients the sharded workload driver
(:mod:`repro.programs.corona.driver`) needs to run *reproducible* chaos
experiments:

* :class:`SimLoop` — a deterministic virtual-time scheduler for
  ``async def`` coroutines.  Tasks await :meth:`SimLoop.sleep` (virtual
  milliseconds) and :class:`SimFuture`/:class:`SimEvent`; the loop runs
  the ready queue FIFO and advances the clock only when every task is
  parked on a timer.  No wall clock, no threads, no real I/O — two runs
  with the same seed execute the same interleaving instruction for
  instruction, which is what makes chaos runs replay byte-for-byte.
  (A real asyncio event loop orders timer callbacks by wall-clock
  deadlines measured in real time, so it cannot give that guarantee;
  the coroutines themselves are ordinary ``async``/``await`` code.)
* :class:`Rng` — a splitmix64 generator with labeled :meth:`Rng.fork`
  streams.  Every consumer (workload shape, per-request fault rolls,
  retry jitter) forks its own stream keyed by a stable label, so the
  decisions taken for request *i* do not depend on how requests happen
  to interleave.
* :class:`FaultPlan` — a seeded, declarative description of the faults
  to inject: shard crash/restart windows (:class:`CrashFault`), dropped
  and delayed inter-shard messages (:class:`DropFault`,
  :class:`DelayFault`), and fuel exhaustion — a forced
  :class:`~repro.errors.JnsResourceError` ``JNS-RES-001`` inside a
  shard's interpreter — at chosen request indices (:class:`FuelFault`).
  Plans parse from a compact spec string or a JSON file
  (:meth:`FaultPlan.parse`) and round-trip through
  :meth:`FaultPlan.to_dict`, so a CI job can pin one byte-for-byte.

:class:`RetryPolicy` is the client-side half: capped exponential backoff
with jitter drawn from the *seeded* RNG, so even the retry schedule of a
chaos run replays exactly.

When the process-wide tracer (:mod:`repro.obs`) is enabled, the driver
mirrors every injection into ``chaos.injected`` / ``chaos.injected.<kind>``
counters; this module itself is observability-free so it can be unit
tested in isolation.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import os
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Coroutine,
    Deque,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
)

__all__ = [
    "Rng",
    "SimFuture",
    "SimEvent",
    "SimTask",
    "SimLoop",
    "CrashFault",
    "DropFault",
    "DelayFault",
    "FuelFault",
    "FaultPlan",
    "RetryPolicy",
]

_MASK64 = (1 << 64) - 1


class Rng:
    """splitmix64: a tiny, fast, deterministic PRNG.

    Streams are *forkable*: :meth:`fork` derives an independent generator
    from the parent's seed and a stable string label (hashed with
    blake2b, never Python's salted ``hash``), so the stream consumed by
    one component is a pure function of ``(seed, label)`` — independent
    of how many values any other component drew."""

    __slots__ = ("seed", "_state")

    def __init__(self, seed: int) -> None:
        self.seed = seed & _MASK64
        self._state = self.seed

    def _next(self) -> int:
        self._state = (self._state + 0x9E3779B97F4A7C15) & _MASK64
        z = self._state
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        return z ^ (z >> 31)

    def randrange(self, n: int) -> int:
        """Uniform integer in ``[0, n)``."""
        if n <= 0:
            raise ValueError(f"randrange bound must be positive, got {n}")
        return self._next() % n

    def random(self) -> float:
        """Uniform float in ``[0, 1)`` (53-bit mantissa)."""
        return (self._next() >> 11) / float(1 << 53)

    def randbytes(self, n: int) -> bytes:
        """``n`` deterministic bytes from the stream (big-endian words).
        :class:`repro.telemetry.TraceContext` draws its 128-bit trace ids
        here so chaos replays regenerate identical trace trees."""
        if n < 0:
            raise ValueError(f"randbytes length must be >= 0, got {n}")
        out = bytearray()
        while len(out) < n:
            out += self._next().to_bytes(8, "big")
        return bytes(out[:n])

    def fork(self, label: str) -> "Rng":
        """An independent stream keyed by this generator's *seed* (not
        its current state) and ``label``."""
        digest = hashlib.blake2b(
            f"{self.seed}:{label}".encode(), digest_size=8
        ).digest()
        return Rng(int.from_bytes(digest, "big"))


# ----------------------------------------------------------------------
# deterministic virtual-time scheduling
# ----------------------------------------------------------------------


class SimFuture:
    """A one-shot awaitable resolved by the loop or another task."""

    __slots__ = ("_done", "_result", "_exc", "_callbacks", "_retrieved")

    def __init__(self) -> None:
        self._done = False
        self._result: Any = None
        self._exc: Optional[BaseException] = None
        self._callbacks: List[Callable[["SimFuture"], None]] = []
        self._retrieved = False

    def done(self) -> bool:
        return self._done

    def set_result(self, value: Any = None) -> None:
        if self._done:
            raise RuntimeError("SimFuture already resolved")
        self._done = True
        self._result = value
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def set_exception(self, exc: BaseException) -> None:
        if self._done:
            raise RuntimeError("SimFuture already resolved")
        self._done = True
        self._exc = exc
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)

    def add_done_callback(self, cb: Callable[["SimFuture"], None]) -> None:
        if self._done:
            cb(self)
        else:
            self._callbacks.append(cb)

    def result(self) -> Any:
        if not self._done:
            raise RuntimeError("SimFuture not resolved")
        self._retrieved = True
        if self._exc is not None:
            raise self._exc
        return self._result

    def __await__(self):
        if not self._done:
            yield self
        self._retrieved = True
        if self._exc is not None:
            raise self._exc
        return self._result


class SimEvent:
    """An async event on the virtual loop (used as the shard pause gate:
    cleared while an evolution transition holds the shard, set to admit
    traffic).  Waiters wake in FIFO order — deterministically."""

    __slots__ = ("_set", "_waiters")

    def __init__(self, set_: bool = True) -> None:
        self._set = set_
        self._waiters: List[SimFuture] = []

    def is_set(self) -> bool:
        return self._set

    def set(self) -> None:
        self._set = True
        waiters, self._waiters = self._waiters, []
        for fut in waiters:
            fut.set_result(None)

    def clear(self) -> None:
        self._set = False

    async def wait(self) -> None:
        if self._set:
            return
        fut = SimFuture()
        self._waiters.append(fut)
        await fut


class SimTask:
    """One coroutine driven by the loop; itself awaitable (join)."""

    __slots__ = ("coro", "name", "future", "_loop")

    def __init__(self, coro: Coroutine, name: str, loop: "SimLoop") -> None:
        self.coro = coro
        self.name = name
        self.future = SimFuture()
        self._loop = loop

    def done(self) -> bool:
        return self.future.done()

    def __await__(self):
        return self.future.__await__()


class SimLoop:
    """Deterministic coroutine scheduler on a virtual millisecond clock.

    Ready tasks run FIFO; when the ready queue drains, the clock jumps
    to the earliest timer deadline (ties broken by registration order).
    A task exception is delivered to joiners via the task future; if the
    task is never awaited the exception re-raises out of :meth:`run` —
    failures are loud, never silently dropped."""

    def __init__(self) -> None:
        self.now = 0.0  #: virtual milliseconds since loop start
        self._ready: Deque[SimTask] = deque()
        self._timers: List[Tuple[float, int, SimFuture]] = []
        self._seq = 0
        self._alive = 0
        self._failed: List[SimTask] = []

    def create_task(self, coro: Coroutine, name: str = "task") -> SimTask:
        task = SimTask(coro, name, self)
        self._alive += 1
        self._ready.append(task)
        return task

    def sleep(self, delay_ms: float) -> SimFuture:
        """An awaitable that resolves ``delay_ms`` virtual ms from now."""
        fut = SimFuture()
        self._seq += 1
        heapq.heappush(self._timers, (self.now + max(0.0, delay_ms), self._seq, fut))
        return fut

    def _step(self, task: SimTask) -> None:
        try:
            awaited = task.coro.send(None)
        except StopIteration as stop:
            self._alive -= 1
            task.future.set_result(stop.value)
            return
        except BaseException as exc:
            self._alive -= 1
            task.future.set_exception(exc)
            self._failed.append(task)
            return
        if not isinstance(awaited, SimFuture):
            raise TypeError(
                f"task {task.name!r} awaited {type(awaited).__name__}, "
                "expected a SimFuture (use SimLoop.sleep / SimEvent)"
            )
        awaited.add_done_callback(lambda _fut: self._ready.append(task))

    def run(self, main: Optional[SimTask] = None) -> Any:
        """Run until ``main`` completes (or, with no ``main``, until no
        task can make progress).  Returns ``main``'s result."""
        while True:
            while self._ready:
                task = self._ready.popleft()
                self._step(task)
                if main is not None and main.done():
                    return main.future.result()
            if self._timers:
                deadline, _seq, fut = heapq.heappop(self._timers)
                self.now = max(self.now, deadline)
                fut.set_result(None)
                continue
            break
        if main is not None:
            # main still pending with nothing runnable: deadlock
            raise RuntimeError(
                f"virtual-time deadlock: task {main.name!r} never completed"
            )
        for task in self._failed:
            if not task.future._retrieved:
                task.future.result()  # re-raise the unretrieved failure
        return None


# ----------------------------------------------------------------------
# fault plans
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CrashFault:
    """Crash shard ``shard`` when global request ``at_request`` is
    issued; it stays down for ``down_ms`` virtual ms, then restarts
    (reboot + republish + journal-directed family recovery) on the next
    touch."""

    shard: int
    at_request: int
    down_ms: float = 120.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "crash",
            "shard": self.shard,
            "at_request": self.at_request,
            "down_ms": self.down_ms,
        }


@dataclass(frozen=True)
class DropFault:
    """Drop each inter-shard message with probability ``rate`` (rolled
    from the per-request fault stream, so a given request's fate is a
    pure function of the seed)."""

    rate: float

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "drop", "rate": self.rate}


@dataclass(frozen=True)
class DelayFault:
    """Delay each inter-shard message with probability ``rate`` by
    ``delay_ms`` virtual ms."""

    rate: float
    delay_ms: float = 8.0

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "delay", "rate": self.rate, "delay_ms": self.delay_ms}


@dataclass(frozen=True)
class FuelFault:
    """Exhaust the serving shard's step budget when request
    ``at_request`` first reaches an interpreter: the call raises
    ``JNS-RES-001``, the driver resets the budget and retries."""

    at_request: int

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "fuel", "at_request": self.at_request}


class FaultPlan:
    """A seeded, deterministic description of what to break and when.

    Construct directly, from a JSON file/string (:meth:`parse`), or from
    the compact spec DSL::

        crash:SHARD@REQ+DOWNMS   crash shard SHARD at request REQ for DOWNMS ms
        drop:RATE                drop inter-shard messages with probability RATE
        delay:RATE@MS            delay with probability RATE by MS virtual ms
        fuel:REQ                 trip JNS-RES-001 on the shard serving request REQ

    e.g. ``crash:1@120+150,drop:0.02,delay:0.05@6,fuel:77``.  The plan
    carries no RNG of its own: probabilistic decisions are rolled by the
    driver from per-request forks of the master seed, so a plan replays
    identically regardless of task interleaving."""

    def __init__(
        self,
        crashes: Iterable[CrashFault] = (),
        drops: Iterable[DropFault] = (),
        delays: Iterable[DelayFault] = (),
        fuel: Iterable[FuelFault] = (),
    ) -> None:
        self.crashes: Tuple[CrashFault, ...] = tuple(crashes)
        self.drops: Tuple[DropFault, ...] = tuple(drops)
        self.delays: Tuple[DelayFault, ...] = tuple(delays)
        self.fuel: Tuple[FuelFault, ...] = tuple(fuel)
        self.crash_at: Dict[int, List[CrashFault]] = {}
        for c in self.crashes:
            self.crash_at.setdefault(c.at_request, []).append(c)
        self.fuel_at = {f.at_request for f in self.fuel}

    def __bool__(self) -> bool:
        return bool(self.crashes or self.drops or self.delays or self.fuel)

    # -- message fate ---------------------------------------------------

    def message_fate(self, rng: Rng) -> Tuple[Optional[str], float]:
        """Roll the fate of one inter-shard message from ``rng`` (the
        per-request fault stream): ``("drop", 0)``, ``("delay", ms)``, or
        ``(None, 0)``.  Consumes one roll per configured fault so the
        stream layout is stable under plan growth."""
        for d in self.drops:
            if rng.random() < d.rate:
                return "drop", 0.0
        for d in self.delays:
            if rng.random() < d.rate:
                return "delay", d.delay_ms
        return None, 0.0

    # -- (de)serialization ---------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "faults": [
                f.to_dict()
                for f in (*self.crashes, *self.drops, *self.delays, *self.fuel)
            ]
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        crashes: List[CrashFault] = []
        drops: List[DropFault] = []
        delays: List[DelayFault] = []
        fuel: List[FuelFault] = []
        for entry in payload.get("faults", []):
            kind = entry.get("kind")
            if kind == "crash":
                crashes.append(
                    CrashFault(
                        int(entry["shard"]),
                        int(entry["at_request"]),
                        float(entry.get("down_ms", 120.0)),
                    )
                )
            elif kind == "drop":
                drops.append(DropFault(float(entry["rate"])))
            elif kind == "delay":
                delays.append(
                    DelayFault(float(entry["rate"]), float(entry.get("delay_ms", 8.0)))
                )
            elif kind == "fuel":
                fuel.append(FuelFault(int(entry["at_request"])))
            else:
                raise ValueError(f"unknown fault kind {kind!r}")
        return cls(crashes, drops, delays, fuel)

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a plan from a JSON file path, a JSON object string, or
        the compact spec DSL (see the class docstring)."""
        text = text.strip()
        if not text or text == "none":
            return cls()
        if os.path.isfile(text):
            with open(text) as f:
                return cls.from_dict(json.load(f))
        if text.startswith("{"):
            return cls.from_dict(json.loads(text))
        crashes: List[CrashFault] = []
        drops: List[DropFault] = []
        delays: List[DelayFault] = []
        fuel: List[FuelFault] = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            try:
                kind, _, spec = part.partition(":")
                if kind == "crash":
                    where, _, down = spec.partition("+")
                    shard_s, _, req_s = where.partition("@")
                    crashes.append(
                        CrashFault(
                            int(shard_s), int(req_s), float(down) if down else 120.0
                        )
                    )
                elif kind == "drop":
                    drops.append(DropFault(float(spec)))
                elif kind == "delay":
                    rate_s, _, ms = spec.partition("@")
                    delays.append(
                        DelayFault(float(rate_s), float(ms) if ms else 8.0)
                    )
                elif kind == "fuel":
                    fuel.append(FuelFault(int(spec.lstrip("@"))))
                else:
                    raise ValueError(f"unknown fault kind {kind!r}")
            except (ValueError, TypeError) as exc:
                raise ValueError(
                    f"bad fault spec {part!r}: {exc} "
                    "(expected crash:SHARD@REQ+DOWNMS, drop:RATE, "
                    "delay:RATE@MS, or fuel:REQ)"
                ) from None
        return cls(crashes, drops, delays, fuel)


# ----------------------------------------------------------------------
# client-side retry policy
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with seeded jitter.

    Attempt ``k`` (0-based) backs off ``min(cap_ms, base_ms * mult**k)``
    virtual ms, scaled by ``1 - jitter * u`` with ``u`` drawn from the
    caller's deterministic :class:`Rng` stream — so "random" jitter
    replays exactly from the seed.  ``budget_ms`` is the worst-case sum
    over all attempts; fault plans whose outages outlast it will see
    degraded (stale) serves or exhausted retries."""

    max_attempts: int = 8
    base_ms: float = 4.0
    mult: float = 2.0
    cap_ms: float = 64.0
    jitter: float = 0.5

    def backoff_ms(self, attempt: int, rng: Rng) -> float:
        raw = min(self.cap_ms, self.base_ms * (self.mult ** attempt))
        return raw * (1.0 - self.jitter * rng.random())

    @property
    def budget_ms(self) -> float:
        return sum(
            min(self.cap_ms, self.base_ms * (self.mult ** k))
            for k in range(self.max_attempts)
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_attempts": self.max_attempts,
            "base_ms": self.base_ms,
            "mult": self.mult,
            "cap_ms": self.cap_ms,
            "jitter": self.jitter,
        }
