"""Token definitions for the J&s surface language.

The surface language is the Java-like subset used throughout the paper
(Figures 1-7), extended with the pieces the evaluation programs need:
arrays, ``double`` arithmetic, and a small ``Sys`` native library.
"""

from __future__ import annotations

from dataclasses import dataclass

# Token kinds.
IDENT = "IDENT"
INT_LIT = "INT_LIT"
DOUBLE_LIT = "DOUBLE_LIT"
STRING_LIT = "STRING_LIT"
KEYWORD = "KEYWORD"
PUNCT = "PUNCT"
EOF = "EOF"

KEYWORDS = frozenset(
    {
        "class",
        "extends",
        "shares",
        "adapts",
        "sharing",
        "view",
        "new",
        "final",
        "abstract",
        "this",
        "null",
        "true",
        "false",
        "if",
        "else",
        "while",
        "for",
        "return",
        "break",
        "continue",
        "instanceof",
        "int",
        "double",
        "boolean",
        "String",
        "void",
    }
)

# Multi-character punctuation must be listed longest-first so the lexer
# can do greedy matching.
PUNCTUATION = (
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "+=",
    "-=",
    "*=",
    "/=",
    "++",
    "--",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    ",",
    ".",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "!",
    "&",
    "|",
    "\\",
    "?",
    ":",
)


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (1-based)."""

    kind: str
    value: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.col})"

    def is_keyword(self, word: str) -> bool:
        return self.kind == KEYWORD and self.value == word

    def is_punct(self, punct: str) -> bool:
        return self.kind == PUNCT and self.value == punct
