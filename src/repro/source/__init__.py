"""Lexer, parser, and surface AST for the J&s language."""

from .lexer import LexError, tokenize
from .parser import ParseError, parse_program, parse_type_text

__all__ = ["tokenize", "LexError", "parse_program", "parse_type_text", "ParseError"]
