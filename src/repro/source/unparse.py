"""Pretty-printer for J&s surface syntax.

Produces parseable source from an AST (surface type annotations or
already-resolved types).  Used by tooling, error reporting, and the
parse/print round-trip property tests: ``parse(unparse(parse(s)))`` is
structurally identical to ``parse(s)``.
"""

from __future__ import annotations

from typing import List

from ..lang import types as RT
from . import ast

_INDENT = "  "

# operator precedence, loosest first (mirrors the parser)
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}
_UNARY_LEVEL = 7
_POSTFIX_LEVEL = 8


def type_to_src(t) -> str:
    """Render a type annotation (surface or resolved) as source text."""
    if isinstance(t, ast.TName):
        return ".".join(t.parts)
    if isinstance(t, ast.TPrim):
        return t.name
    if isinstance(t, ast.TDep):
        return ".".join(t.path) + ".class"
    if isinstance(t, ast.TPrefix):
        return f"{type_to_src(t.family)}[{type_to_src(t.index)}]"
    if isinstance(t, ast.TExact):
        return type_to_src(t.inner) + "!"
    if isinstance(t, ast.TMask):
        return type_to_src(t.inner) + "".join("\\" + f for f in t.fields)
    if isinstance(t, ast.TNested):
        return f"{type_to_src(t.outer)}.{t.name}"
    if isinstance(t, ast.TIsect):
        return " & ".join(type_to_src(p) for p in t.parts)
    if isinstance(t, ast.TArray):
        return type_to_src(t.elem) + "[]"
    # resolved types
    if isinstance(t, RT.PrimType):
        return t.name
    if isinstance(t, RT.ClassType):
        return repr(t)
    if isinstance(t, RT.MaskedType):
        return type_to_src(t.base) + "".join("\\" + f for f in sorted(t.masks))
    if isinstance(t, RT.DepType):
        return ".".join(t.path) + ".class"
    if isinstance(t, RT.PrefixType):
        return ".".join(t.family) + f"[{type_to_src(t.index)}]"
    if isinstance(t, RT.NestedType):
        return f"{type_to_src(t.outer)}.{t.name}"
    if isinstance(t, RT.ExactType):
        return type_to_src(t.inner) + "!"
    if isinstance(t, RT.IsectType):
        return " & ".join(type_to_src(p) for p in t.parts)
    if isinstance(t, RT.ArrayType):
        return type_to_src(t.elem) + "[]"
    raise TypeError(f"cannot unparse type {t!r}")


def _escape(s: str) -> str:
    out = []
    for ch in s:
        if ch == "\\":
            out.append("\\\\")
        elif ch == '"':
            out.append('\\"')
        elif ch == "\n":
            out.append("\\n")
        elif ch == "\t":
            out.append("\\t")
        elif ch == "\r":
            out.append("\\r")
        else:
            out.append(ch)
    return "".join(out)


def expr_to_src(e: ast.Expr, level: int = 0) -> str:
    """Render an expression; ``level`` is the minimum precedence the
    context requires (parenthesize below it)."""
    text, my_level = _expr(e)
    if my_level < level:
        return f"({text})"
    return text


def _expr(e: ast.Expr):
    if isinstance(e, ast.Lit):
        if e.kind == "String":
            return f'"{_escape(e.value)}"', _POSTFIX_LEVEL
        if e.kind == "null":
            return "null", _POSTFIX_LEVEL
        if e.kind == "boolean":
            return ("true" if e.value else "false"), _POSTFIX_LEVEL
        if e.kind == "double":
            text = repr(float(e.value))
            return text, _POSTFIX_LEVEL
        return str(e.value), _POSTFIX_LEVEL
    if isinstance(e, ast.This):
        return "this", _POSTFIX_LEVEL
    if isinstance(e, ast.Var):
        return e.name, _POSTFIX_LEVEL
    if isinstance(e, ast.FieldGet):
        return f"{expr_to_src(e.obj, _POSTFIX_LEVEL)}.{e.name}", _POSTFIX_LEVEL
    if isinstance(e, ast.Call):
        args = ", ".join(expr_to_src(a) for a in e.args)
        recv = ""
        if e.obj is not None and not isinstance(e.obj, ast.This):
            recv = expr_to_src(e.obj, _POSTFIX_LEVEL) + "."
        elif isinstance(e.obj, ast.This):
            recv = "this."
        return f"{recv}{e.name}({args})", _POSTFIX_LEVEL
    if isinstance(e, ast.SysCall):
        constants = ("PI", "E", "MAX_INT", "MIN_INT", "MAX_DOUBLE")
        if not e.args and e.name in constants:
            return f"Sys.{e.name}", _POSTFIX_LEVEL
        args = ", ".join(expr_to_src(a) for a in e.args)
        return f"Sys.{e.name}({args})", _POSTFIX_LEVEL
    if isinstance(e, ast.NewObj):
        args = ", ".join(expr_to_src(a) for a in e.args)
        return f"new {type_to_src(e.type)}({args})", _POSTFIX_LEVEL
    if isinstance(e, ast.NewArray):
        elem = e.elem_type
        dims = ""
        while isinstance(elem, (ast.TArray, RT.ArrayType)):
            elem = elem.elem
            dims += "[]"
        return (
            f"new {type_to_src(elem)}[{expr_to_src(e.length)}]{dims}",
            _POSTFIX_LEVEL,
        )
    if isinstance(e, ast.Index):
        return (
            f"{expr_to_src(e.arr, _POSTFIX_LEVEL)}[{expr_to_src(e.idx)}]",
            _POSTFIX_LEVEL,
        )
    if isinstance(e, ast.Unary):
        return f"{e.op}{expr_to_src(e.operand, _UNARY_LEVEL)}", _UNARY_LEVEL
    if isinstance(e, ast.Binary):
        prec = _PRECEDENCE[e.op]
        left = expr_to_src(e.left, prec)
        right = expr_to_src(e.right, prec + 1)
        return f"{left} {e.op} {right}", prec
    if isinstance(e, ast.Cond):
        return (
            f"{expr_to_src(e.cond, 1)} ? {expr_to_src(e.then)} : "
            f"{expr_to_src(e.els)}",
            0,
        )
    if isinstance(e, ast.Cast):
        return f"({type_to_src(e.type)}){expr_to_src(e.expr, _UNARY_LEVEL)}", _UNARY_LEVEL
    if isinstance(e, ast.ViewChange):
        return (
            f"(view {type_to_src(e.type)}){expr_to_src(e.expr, _UNARY_LEVEL)}",
            _UNARY_LEVEL,
        )
    if isinstance(e, ast.InstanceOf):
        return (
            f"{expr_to_src(e.expr, 4)} instanceof {type_to_src(e.type)}",
            4,
        )
    if isinstance(e, ast.Assign):
        return (
            f"{expr_to_src(e.target, _POSTFIX_LEVEL)} {e.op} {expr_to_src(e.value)}",
            0,
        )
    raise TypeError(f"cannot unparse expression {e!r}")


def stmt_to_src(s: ast.Stmt, indent: int = 0) -> List[str]:
    pad = _INDENT * indent
    if isinstance(s, ast.Block):
        lines = [pad + "{"]
        for inner in s.stmts:
            lines.extend(stmt_to_src(inner, indent + 1))
        lines.append(pad + "}")
        return lines
    if isinstance(s, ast.LocalDecl):
        prefix = "final " if s.final else ""
        init = f" = {expr_to_src(s.init)}" if s.init is not None else ""
        return [f"{pad}{prefix}{type_to_src(s.type)} {s.name}{init};"]
    if isinstance(s, ast.ExprStmt):
        return [f"{pad}{expr_to_src(s.expr)};"]
    if isinstance(s, ast.If):
        lines = [f"{pad}if ({expr_to_src(s.cond)})"]
        lines.extend(_branch(s.then, indent))
        if s.els is not None:
            lines.append(pad + "else")
            lines.extend(_branch(s.els, indent))
        return lines
    if isinstance(s, ast.While):
        return [f"{pad}while ({expr_to_src(s.cond)})"] + _branch(s.body, indent)
    if isinstance(s, ast.For):
        init = "" if s.init is None else stmt_to_src(s.init)[0].rstrip(";") + ";"
        init = init.strip()
        if not init:
            init = ";"
        cond = expr_to_src(s.cond) if s.cond is not None else ""
        update = expr_to_src(s.update) if s.update is not None else ""
        return [f"{pad}for ({init} {cond}; {update})"] + _branch(s.body, indent)
    if isinstance(s, ast.Return):
        if s.value is None:
            return [pad + "return;"]
        return [f"{pad}return {expr_to_src(s.value)};"]
    if isinstance(s, ast.Break):
        return [pad + "break;"]
    if isinstance(s, ast.Continue):
        return [pad + "continue;"]
    if isinstance(s, ast.Empty):
        return [pad + ";"]
    raise TypeError(f"cannot unparse statement {s!r}")


def _branch(s: ast.Stmt, indent: int) -> List[str]:
    if isinstance(s, ast.Block):
        return stmt_to_src(s, indent)
    return stmt_to_src(s, indent + 1)


def member_to_src(member, indent: int) -> List[str]:
    pad = _INDENT * indent
    if isinstance(member, ast.ClassDecl):
        return class_to_src(member, indent)
    if isinstance(member, ast.FieldDecl):
        prefix = "final " if member.final else ""
        init = f" = {expr_to_src(member.init)}" if member.init is not None else ""
        return [f"{pad}{prefix}{type_to_src(member.type)} {member.name}{init};"]
    if isinstance(member, ast.MethodDecl):
        prefix = "abstract " if member.abstract else ""
        params = ", ".join(f"{type_to_src(p.type)} {p.name}" for p in member.params)
        head = f"{pad}{prefix}{type_to_src(member.ret_type)} {member.name}({params})"
        if member.constraints:
            clauses = ", ".join(
                f"{type_to_src(c.left)} = {type_to_src(c.right)}"
                for c in member.constraints
            )
            head += f" sharing {clauses}"
        if member.body is None:
            return [head + ";"]
        body = stmt_to_src(member.body, indent)
        body[0] = head + " {"
        return body
    if isinstance(member, ast.CtorDecl):
        params = ", ".join(f"{type_to_src(p.type)} {p.name}" for p in member.params)
        body = stmt_to_src(member.body, indent)
        body[0] = f"{pad}{member.name}({params}) " + "{"
        return body
    raise TypeError(f"cannot unparse member {member!r}")


def class_to_src(decl: ast.ClassDecl, indent: int = 0) -> List[str]:
    pad = _INDENT * indent
    head = pad + ("abstract " if decl.abstract else "") + f"class {decl.name}"
    if decl.extends:
        head += " extends " + " & ".join(type_to_src(t) for t in decl.extends)
    if decl.shares is not None:
        head += " shares " + type_to_src(decl.shares)
    if decl.adapts is not None:
        head += " adapts " + type_to_src(decl.adapts)
    lines = [head + " {"]
    for member in decl.members:
        lines.extend(member_to_src(member, indent + 1))
    lines.append(pad + "}")
    return lines


def unparse(unit: ast.CompilationUnit) -> str:
    """Render a whole compilation unit as J&s source."""
    lines: List[str] = []
    for decl in unit.classes:
        lines.extend(class_to_src(decl))
        lines.append("")
    return "\n".join(lines)
