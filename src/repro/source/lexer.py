"""Hand-written lexer for the J&s surface language."""

from __future__ import annotations

from typing import List, Optional

from ..diagnostics import DiagnosticSink, Span
from ..errors import JnsError
from ..obs import TRACER
from .tokens import (
    DOUBLE_LIT,
    EOF,
    IDENT,
    INT_LIT,
    KEYWORD,
    KEYWORDS,
    PUNCT,
    PUNCTUATION,
    STRING_LIT,
    Token,
)


class LexError(JnsError):
    """Raised when the input contains a character sequence that is not a
    valid J&s token."""

    code = "JNS-LEX-001"

    def __init__(
        self, message: str, line: int, col: int, code: Optional[str] = None
    ) -> None:
        super().__init__(
            f"{message} at {line}:{col}", code=code, span=Span(line, col)
        )
        self.line = line
        self.col = col


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\", "'": "'", "0": "\0"}


def tokenize(source: str, sink: Optional[DiagnosticSink] = None) -> List[Token]:
    """Convert ``source`` into a token list ending with an EOF token.

    Supports ``//`` line comments and ``/* */`` block comments.

    Without a ``sink`` the first lexical error raises :class:`LexError`.
    With one, errors are recorded as diagnostics and lexing continues
    (skipping the offending character / truncating the offending
    literal) so later phases can still report *their* findings.
    """
    if not TRACER.enabled:
        return _tokenize(source, sink)
    with TRACER.span("lex", chars=len(source)):
        tokens = _tokenize(source, sink)
        TRACER.count("lex.tokens", len(tokens))
        return tokens


def _tokenize(source: str, sink: Optional[DiagnosticSink]) -> List[Token]:
    tokens: List[Token] = []

    def fail(message: str, line: int, col: int, code: str) -> None:
        if sink is None:
            raise LexError(message, line, col, code=code)
        sink.error(code, f"{message} at {line}:{col}", span=Span(line, col))
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            start_line, start_col = line, col
            advance(2)
            while i < n and not source.startswith("*/", i):
                advance(1)
            if i >= n:
                fail("unterminated block comment", start_line, start_col, "JNS-LEX-003")
                continue
            advance(2)
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            start_line, start_col = line, col
            j = i
            is_double = False
            while j < n and source[j].isdigit():
                j += 1
            if j < n and source[j] == "." and j + 1 < n and source[j + 1].isdigit():
                is_double = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            if j < n and source[j] in "eE":
                k = j + 1
                if k < n and source[k] in "+-":
                    k += 1
                if k < n and source[k].isdigit():
                    is_double = True
                    j = k
                    while j < n and source[j].isdigit():
                        j += 1
            text = source[i:j]
            advance(j - i)
            kind = DOUBLE_LIT if is_double else INT_LIT
            tokens.append(Token(kind, text, start_line, start_col))
            continue
        if ch.isalpha() or ch == "_":
            start_line, start_col = line, col
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            advance(j - i)
            kind = KEYWORD if text in KEYWORDS else IDENT
            tokens.append(Token(kind, text, start_line, start_col))
            continue
        if ch == '"':
            start_line, start_col = line, col
            advance(1)
            chars: List[str] = []
            while i < n and source[i] != '"':
                if source[i] == "\\":
                    advance(1)
                    if i >= n:
                        break
                    esc = source[i]
                    chars.append(_ESCAPES.get(esc, esc))
                    advance(1)
                else:
                    if source[i] == "\n":
                        fail("newline in string literal", line, col, "JNS-LEX-004")
                        break
                    chars.append(source[i])
                    advance(1)
            if i >= n:
                fail(
                    "unterminated string literal", start_line, start_col, "JNS-LEX-002"
                )
            else:
                advance(1)  # closing quote (or the newline, under recovery)
            tokens.append(Token(STRING_LIT, "".join(chars), start_line, start_col))
            continue
        matched = False
        for punct in PUNCTUATION:
            if source.startswith(punct, i):
                tokens.append(Token(PUNCT, punct, line, col))
                advance(len(punct))
                matched = True
                break
        if not matched:
            fail(f"unexpected character {ch!r}", line, col, "JNS-LEX-001")
            advance(1)  # recovery: skip the offending character

    tokens.append(Token(EOF, "", line, col))
    return tokens
