"""Abstract syntax for the J&s surface language.

Two layers use these nodes:

* the parser produces them with *surface* type annotations
  (:class:`TName` nodes whose meaning is not yet known), and
* the resolver (:mod:`repro.lang.resolve`) rewrites type annotations into
  resolved types (:mod:`repro.lang.types`) and rewrites ``Sys.*`` calls
  into :class:`SysCall` nodes, storing results in the same fields.

Positions are (line, col) pairs for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

Pos = Tuple[int, int]


# ---------------------------------------------------------------------------
# Surface types (pre-resolution)
# ---------------------------------------------------------------------------


class TypeAST:
    """Base class for surface type annotations."""


@dataclass
class TName(TypeAST):
    """A dotted name ``A.B.C``; resolution decides what it denotes."""

    parts: Tuple[str, ...]
    pos: Pos = (0, 0)

    def __repr__(self) -> str:
        return ".".join(self.parts)


@dataclass
class TPrim(TypeAST):
    """A primitive type: int, double, boolean, String, void."""

    name: str
    pos: Pos = (0, 0)

    def __repr__(self) -> str:
        return self.name


@dataclass
class TDep(TypeAST):
    """A dependent class ``p.class`` for a final access path ``p``.

    ``path`` is the sequence of names: ``("this",)`` for ``this.class`` or
    ``("x", "f")`` for ``x.f.class``.
    """

    path: Tuple[str, ...]
    pos: Pos = (0, 0)

    def __repr__(self) -> str:
        return ".".join(self.path) + ".class"


@dataclass
class TPrefix(TypeAST):
    """A prefix type ``P[T]``: the enclosing family of ``T`` at level ``P``."""

    family: TypeAST
    index: TypeAST
    pos: Pos = (0, 0)

    def __repr__(self) -> str:
        return f"{self.family!r}[{self.index!r}]"


@dataclass
class TExact(TypeAST):
    """An exact type ``T!``."""

    inner: TypeAST
    pos: Pos = (0, 0)

    def __repr__(self) -> str:
        return f"{self.inner!r}!"


@dataclass
class TMask(TypeAST):
    """A masked type ``T\\f``: ``T`` without read access to field ``f``."""

    inner: TypeAST
    fields: Tuple[str, ...]
    pos: Pos = (0, 0)

    def __repr__(self) -> str:
        return repr(self.inner) + "".join("\\" + f for f in self.fields)


@dataclass
class TNested(TypeAST):
    """A member access on a non-name type, e.g. ``AST[this.class].Exp``."""

    outer: TypeAST
    name: str
    pos: Pos = (0, 0)

    def __repr__(self) -> str:
        return f"{self.outer!r}.{self.name}"


@dataclass
class TIsect(TypeAST):
    """An intersection type ``T1 & T2``."""

    parts: Tuple[TypeAST, ...]
    pos: Pos = (0, 0)

    def __repr__(self) -> str:
        return " & ".join(repr(p) for p in self.parts)


@dataclass
class TArray(TypeAST):
    """An array type ``T[]``."""

    elem: TypeAST
    pos: Pos = (0, 0)

    def __repr__(self) -> str:
        return f"{self.elem!r}[]"


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for expressions.

    ``rtype`` is filled in by the type checker (a resolved type or None).
    """

    rtype: Any = None


@dataclass
class Lit(Expr):
    value: Any
    kind: str  # "int" | "double" | "boolean" | "String" | "null"
    pos: Pos = (0, 0)


@dataclass
class This(Expr):
    pos: Pos = (0, 0)


@dataclass
class Var(Expr):
    name: str
    pos: Pos = (0, 0)


@dataclass
class FieldGet(Expr):
    obj: Expr
    name: str
    pos: Pos = (0, 0)


@dataclass
class Call(Expr):
    obj: Optional[Expr]  # None means a call on an implicit ``this``
    name: str
    args: List[Expr]
    pos: Pos = (0, 0)


@dataclass
class SysCall(Expr):
    """A call into the native ``Sys`` library (created by the resolver)."""

    name: str
    args: List[Expr]
    pos: Pos = (0, 0)


@dataclass
class NewObj(Expr):
    type: Any  # TypeAST, later resolved type
    args: List[Expr]
    pos: Pos = (0, 0)


@dataclass
class NewArray(Expr):
    elem_type: Any
    length: Expr
    pos: Pos = (0, 0)


@dataclass
class Index(Expr):
    arr: Expr
    idx: Expr
    pos: Pos = (0, 0)


@dataclass
class Unary(Expr):
    op: str
    operand: Expr
    pos: Pos = (0, 0)


@dataclass
class Binary(Expr):
    op: str
    left: Expr
    right: Expr
    pos: Pos = (0, 0)


@dataclass
class Cond(Expr):
    """Ternary conditional ``c ? t : f``."""

    cond: Expr
    then: Expr
    els: Expr
    pos: Pos = (0, 0)


@dataclass
class Cast(Expr):
    type: Any
    expr: Expr
    pos: Pos = (0, 0)


@dataclass
class ViewChange(Expr):
    """The J&s view change ``(view T)e``."""

    type: Any
    expr: Expr
    pos: Pos = (0, 0)


@dataclass
class InstanceOf(Expr):
    expr: Expr
    type: Any
    pos: Pos = (0, 0)


@dataclass
class Assign(Expr):
    """Assignment; target is Var, FieldGet, or Index.  ``op`` is '=' or a
    compound operator like '+='."""

    target: Expr
    value: Expr
    op: str = "="
    pos: Pos = (0, 0)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class for statements."""


@dataclass
class Block(Stmt):
    stmts: List[Stmt]
    pos: Pos = (0, 0)


@dataclass
class LocalDecl(Stmt):
    final: bool
    type: Any
    name: str
    init: Optional[Expr]
    pos: Pos = (0, 0)


@dataclass
class ExprStmt(Stmt):
    expr: Expr
    pos: Pos = (0, 0)


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    els: Optional[Stmt]
    pos: Pos = (0, 0)


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt
    pos: Pos = (0, 0)


@dataclass
class For(Stmt):
    init: Optional[Stmt]
    cond: Optional[Expr]
    update: Optional[Expr]
    body: Stmt
    pos: Pos = (0, 0)


@dataclass
class Return(Stmt):
    value: Optional[Expr]
    pos: Pos = (0, 0)


@dataclass
class Break(Stmt):
    pos: Pos = (0, 0)


@dataclass
class Continue(Stmt):
    pos: Pos = (0, 0)


@dataclass
class Empty(Stmt):
    pos: Pos = (0, 0)


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class FieldDecl:
    final: bool
    type: Any
    name: str
    init: Optional[Expr]
    pos: Pos = (0, 0)


@dataclass
class Param:
    type: Any
    name: str
    pos: Pos = (0, 0)


@dataclass
class SharingConstraint:
    """A method-level sharing constraint ``sharing T1 = T2`` (bidirectional,
    as written in the paper's examples)."""

    left: Any
    right: Any
    pos: Pos = (0, 0)


@dataclass
class MethodDecl:
    abstract: bool
    ret_type: Any
    name: str
    params: List[Param]
    constraints: List[SharingConstraint]
    body: Optional[Block]
    pos: Pos = (0, 0)


@dataclass
class CtorDecl:
    name: str
    params: List[Param]
    body: Block
    pos: Pos = (0, 0)


@dataclass
class ClassDecl:
    name: str
    abstract: bool
    extends: List[Any]
    shares: Optional[Any]  # TypeAST possibly with masks
    adapts: Optional[Any]
    members: List[Any] = field(default_factory=list)
    pos: Pos = (0, 0)

    @property
    def nested_classes(self) -> List["ClassDecl"]:
        return [m for m in self.members if isinstance(m, ClassDecl)]

    @property
    def fields(self) -> List[FieldDecl]:
        return [m for m in self.members if isinstance(m, FieldDecl)]

    @property
    def methods(self) -> List[MethodDecl]:
        return [m for m in self.members if isinstance(m, MethodDecl)]

    @property
    def ctors(self) -> List[CtorDecl]:
        return [m for m in self.members if isinstance(m, CtorDecl)]


@dataclass
class CompilationUnit:
    classes: List[ClassDecl]
