"""Recursive-descent parser for the J&s surface language.

The grammar covers the Java-like subset used by the paper's examples plus
what the evaluation programs need:

* class declarations with ``extends T1 & T2``, ``shares T`` (possibly with
  masks, e.g. ``shares base.Abs\\e``), and ``adapts T``;
* field, method, constructor, and nested class members;
* method-level sharing constraints ``sharing T1 = T2, ...``;
* the J&s type forms: exact types ``T!``, masked types ``T\\f``, prefix
  types ``P[T]``, dependent classes ``p.class``, intersections ``A & B``,
  arrays ``T[]``;
* expressions including casts ``(T)e``, view changes ``(view T)e``,
  ``instanceof``, ``new T(...)`` and ``new T[n]``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..diagnostics import DiagnosticSink, Span
from ..errors import JnsError
from ..obs import TRACER
from . import ast
from .lexer import tokenize
from .tokens import (
    DOUBLE_LIT,
    EOF,
    IDENT,
    INT_LIT,
    KEYWORD,
    PUNCT,
    STRING_LIT,
    Token,
)

PRIMITIVES = ("int", "double", "boolean", "String", "void")

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=")


class ParseError(JnsError):
    """Raised on a syntax error, with the offending token position."""

    code = "JNS-PARSE-001"

    def __init__(
        self, message: str, token: Token, code: Optional[str] = None
    ) -> None:
        super().__init__(
            f"{message} at {token.line}:{token.col} (got {token.value!r})",
            code=code,
            span=Span.from_token(token),
        )
        self.token = token


#: Maximum nesting of expressions/types.  Each level costs a bounded
#: number of Python frames (see :func:`parse_program`), so this keeps
#: adversarial inputs well inside the temporarily-raised stack limit.
MAX_NESTING = 1200


class Parser:
    def __init__(
        self,
        source: str,
        file: Optional[str] = None,
        sink: Optional[DiagnosticSink] = None,
        tokens: Optional[List[Token]] = None,
    ) -> None:
        self.file = file
        self.sink = sink
        # ``tokens`` lets the incremental front end parse a pre-lexed
        # chunk whose token positions were shifted to absolute lines.
        self.tokens = tokenize(source, sink=sink) if tokens is None else tokens
        self.pos = 0
        self._depth = 0  # current expression/type nesting

    # -- token helpers ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def next(self) -> Token:
        tok = self.peek()
        if tok.kind != EOF:
            self.pos += 1
        return tok

    def at_punct(self, punct: str) -> bool:
        return self.peek().is_punct(punct)

    def at_keyword(self, word: str) -> bool:
        return self.peek().is_keyword(word)

    def accept_punct(self, punct: str) -> bool:
        if self.at_punct(punct):
            self.next()
            return True
        return False

    def accept_keyword(self, word: str) -> bool:
        if self.at_keyword(word):
            self.next()
            return True
        return False

    def expect_punct(self, punct: str) -> Token:
        if not self.at_punct(punct):
            raise ParseError(f"expected {punct!r}", self.peek())
        return self.next()

    def expect_keyword(self, word: str) -> Token:
        if not self.at_keyword(word):
            raise ParseError(f"expected {word!r}", self.peek())
        return self.next()

    def expect_ident(self) -> Token:
        tok = self.peek()
        if tok.kind != IDENT:
            raise ParseError("expected identifier", tok)
        return self.next()

    def _pos(self) -> ast.Pos:
        tok = self.peek()
        return (tok.line, tok.col)

    def _enter_nesting(self) -> None:
        self._depth += 1
        if self._depth > MAX_NESTING:
            raise ParseError(
                f"nesting deeper than {MAX_NESTING} levels",
                self.peek(),
                code="JNS-PARSE-005",
            )

    # -- panic-mode recovery ----------------------------------------------

    def _sync_member(self) -> None:
        """After a syntax error in a member: skip to just past the next
        ``;`` at this brace depth, or stop at the ``}`` closing the class
        (or EOF), so the member loop can continue."""
        depth = 0
        while True:
            tok = self.peek()
            if tok.kind == EOF:
                return
            if tok.is_punct("{"):
                depth += 1
            elif tok.is_punct("}"):
                if depth == 0:
                    return  # class closer: leave it for the member loop
                depth -= 1
            elif tok.is_punct(";") and depth == 0:
                self.next()
                return
            self.next()

    def _sync_toplevel(self) -> None:
        """After a syntax error at class level: skip (balancing braces)
        until the next top-level ``class``/``abstract`` or EOF."""
        depth = 0
        while self.peek().kind != EOF:
            tok = self.peek()
            if tok.is_punct("{"):
                depth += 1
            elif tok.is_punct("}"):
                depth = max(0, depth - 1)
            elif depth == 0 and (
                tok.is_keyword("class") or tok.is_keyword("abstract")
            ):
                return
            self.next()

    # -- program ----------------------------------------------------------

    def parse_program(self) -> ast.CompilationUnit:
        classes: List[ast.ClassDecl] = []
        while self.peek().kind != EOF:
            if self.sink is None:
                classes.append(self.parse_class_decl())
                continue
            try:
                classes.append(self.parse_class_decl())
            except ParseError as exc:
                self.sink.add_exc(exc)
                self._sync_toplevel()
        return ast.CompilationUnit(classes)

    def parse_class_decl(self) -> ast.ClassDecl:
        pos = self._pos()
        abstract = self.accept_keyword("abstract")
        self.expect_keyword("class")
        name = self.expect_ident().value
        extends: List[ast.TypeAST] = []
        shares: Optional[ast.TypeAST] = None
        adapts: Optional[ast.TypeAST] = None
        while True:
            if self.accept_keyword("extends"):
                parsed = self.parse_type()
                if isinstance(parsed, ast.TIsect):
                    extends.extend(parsed.parts)
                else:
                    extends.append(parsed)
                while self.accept_punct("&"):
                    extends.append(self.parse_type_no_isect())
            elif self.accept_keyword("shares"):
                shares = self.parse_type()
            elif self.accept_keyword("adapts"):
                adapts = self.parse_type()
            else:
                break
        self.expect_punct("{")
        members: List[object] = []
        while not self.at_punct("}") and self.peek().kind != EOF:
            if self.sink is None:
                members.append(self.parse_member(name))
                continue
            try:
                members.append(self.parse_member(name))
            except ParseError as exc:
                self.sink.add_exc(exc)
                self._sync_member()
        self.expect_punct("}")
        return ast.ClassDecl(
            name=name,
            abstract=abstract,
            extends=extends,
            shares=shares,
            adapts=adapts,
            members=members,
            pos=pos,
        )

    def parse_member(self, class_name: str):
        pos = self._pos()
        if self.at_keyword("class") or (
            self.at_keyword("abstract") and self.peek(1).is_keyword("class")
        ):
            return self.parse_class_decl()
        # Constructor: <ClassName> ( ... )
        if (
            self.peek().kind == IDENT
            and self.peek().value == class_name
            and self.peek(1).is_punct("(")
        ):
            self.next()
            params = self.parse_params()
            body = self.parse_block()
            return ast.CtorDecl(class_name, params, body, pos)
        abstract = self.accept_keyword("abstract")
        final = self.accept_keyword("final")
        decl_type = self.parse_type()
        name = self.expect_ident().value
        if self.at_punct("("):
            params = self.parse_params()
            constraints: List[ast.SharingConstraint] = []
            if self.accept_keyword("sharing"):
                constraints.append(self.parse_sharing_constraint())
                while self.accept_punct(","):
                    constraints.append(self.parse_sharing_constraint())
            if self.accept_punct(";"):
                body: Optional[ast.Block] = None
                if not abstract:
                    raise ParseError(
                        "non-abstract method needs a body",
                        self.peek(),
                        code="JNS-PARSE-004",
                    )
            else:
                body = self.parse_block()
            return ast.MethodDecl(abstract, decl_type, name, params, constraints, body, pos)
        init: Optional[ast.Expr] = None
        if self.accept_punct("="):
            init = self.parse_expr()
        self.expect_punct(";")
        return ast.FieldDecl(final, decl_type, name, init, pos)

    def parse_params(self) -> List[ast.Param]:
        self.expect_punct("(")
        params: List[ast.Param] = []
        if not self.at_punct(")"):
            while True:
                pos = self._pos()
                self.accept_keyword("final")
                ptype = self.parse_type()
                pname = self.expect_ident().value
                params.append(ast.Param(ptype, pname, pos))
                if not self.accept_punct(","):
                    break
        self.expect_punct(")")
        return params

    def parse_sharing_constraint(self) -> ast.SharingConstraint:
        pos = self._pos()
        left = self.parse_type()
        self.expect_punct("=")
        right = self.parse_type()
        return ast.SharingConstraint(left, right, pos)

    # -- types ------------------------------------------------------------

    def parse_type(self) -> ast.TypeAST:
        self._enter_nesting()
        try:
            pos = self._pos()
            first = self.parse_type_no_isect()
            if self.at_punct("&"):
                parts = [first]
                while self.accept_punct("&"):
                    parts.append(self.parse_type_no_isect())
                return ast.TIsect(tuple(parts), pos)
            return first
        finally:
            self._depth -= 1

    def parse_type_no_isect(self) -> ast.TypeAST:
        pos = self._pos()
        t = self.parse_type_primary()
        # Suffixes: .Ident | .class | ! | [Type] (prefix) | [] (array) | \f
        name_path: Optional[List[str]] = None
        if isinstance(t, ast.TName):
            name_path = list(t.parts)
        elif isinstance(t, ast.TPrim) and t.name == "this":  # never happens
            name_path = None
        while True:
            if self.at_punct(".") and self.peek(1).is_keyword("class"):
                if name_path is None:
                    raise ParseError(".class requires a simple access path", self.peek())
                self.next()
                self.next()
                t = ast.TDep(tuple(name_path), pos)
                name_path = None
                continue
            if self.at_punct(".") and self.peek(1).kind == IDENT:
                self.next()
                name = self.expect_ident().value
                if name_path is not None:
                    name_path.append(name)
                    t = ast.TName(tuple(name_path), pos)
                else:
                    t = ast.TNested(t, name, pos)
                continue
            if self.at_punct("!"):
                self.next()
                t = ast.TExact(t, pos)
                name_path = None
                continue
            if self.at_punct("[") and self.peek(1).is_punct("]"):
                self.next()
                self.next()
                t = ast.TArray(t, pos)
                name_path = None
                continue
            if self.at_punct("["):
                self.next()
                index = self.parse_type()
                self.expect_punct("]")
                t = ast.TPrefix(t, index, pos)
                name_path = None
                continue
            if self.at_punct("\\"):
                masks: List[str] = []
                while self.accept_punct("\\"):
                    masks.append(self.expect_ident().value)
                t = ast.TMask(t, tuple(masks), pos)
                name_path = None
                continue
            break
        return t

    def parse_type_primary(self) -> ast.TypeAST:
        pos = self._pos()
        tok = self.peek()
        if tok.kind == KEYWORD and tok.value in PRIMITIVES:
            self.next()
            return ast.TPrim(tok.value, pos)
        if tok.is_keyword("this"):
            # Only valid as the head of a dependent class path: this.class
            # or this.f.class.
            self.next()
            path = ["this"]
            while self.at_punct(".") and self.peek(1).kind == IDENT:
                self.next()
                path.append(self.expect_ident().value)
            self.expect_punct(".")
            self.expect_keyword("class")
            return ast.TDep(tuple(path), pos)
        if tok.kind == IDENT:
            self.next()
            return ast.TName((tok.value,), pos)
        raise ParseError("expected type", tok, code="JNS-PARSE-002")

    # -- statements ---------------------------------------------------------

    def parse_block(self) -> ast.Block:
        pos = self._pos()
        self.expect_punct("{")
        stmts: List[ast.Stmt] = []
        while not self.at_punct("}"):
            stmts.append(self.parse_stmt())
        self.expect_punct("}")
        return ast.Block(stmts, pos)

    def parse_stmt(self) -> ast.Stmt:
        pos = self._pos()
        if self.at_punct("{"):
            return self.parse_block()
        if self.accept_punct(";"):
            return ast.Empty(pos)
        if self.accept_keyword("if"):
            self.expect_punct("(")
            cond = self.parse_expr()
            self.expect_punct(")")
            then = self.parse_stmt()
            els = self.parse_stmt() if self.accept_keyword("else") else None
            return ast.If(cond, then, els, pos)
        if self.accept_keyword("while"):
            self.expect_punct("(")
            cond = self.parse_expr()
            self.expect_punct(")")
            body = self.parse_stmt()
            return ast.While(cond, body, pos)
        if self.accept_keyword("for"):
            self.expect_punct("(")
            init: Optional[ast.Stmt] = None
            if not self.at_punct(";"):
                init = self.parse_simple_stmt()
            else:
                self.next()
            cond: Optional[ast.Expr] = None
            if not self.at_punct(";"):
                cond = self.parse_expr()
            self.expect_punct(";")
            update: Optional[ast.Expr] = None
            if not self.at_punct(")"):
                update = self.parse_expr()
            self.expect_punct(")")
            body = self.parse_stmt()
            return ast.For(init, cond, update, body, pos)
        if self.accept_keyword("return"):
            value: Optional[ast.Expr] = None
            if not self.at_punct(";"):
                value = self.parse_expr()
            self.expect_punct(";")
            return ast.Return(value, pos)
        if self.accept_keyword("break"):
            self.expect_punct(";")
            return ast.Break(pos)
        if self.accept_keyword("continue"):
            self.expect_punct(";")
            return ast.Continue(pos)
        return self.parse_simple_stmt()

    def parse_simple_stmt(self) -> ast.Stmt:
        """A local variable declaration or an expression statement, ending
        with ';'.  Disambiguated by backtracking."""
        pos = self._pos()
        final = False
        save = self.pos
        if self.accept_keyword("final"):
            final = True
        try:
            decl_type = self.parse_type()
            name_tok = self.peek()
            if name_tok.kind == IDENT and (
                self.peek(1).is_punct("=") or self.peek(1).is_punct(";")
            ):
                self.next()
                init: Optional[ast.Expr] = None
                if self.accept_punct("="):
                    init = self.parse_expr()
                self.expect_punct(";")
                return ast.LocalDecl(final, decl_type, name_tok.value, init, pos)
            raise ParseError("not a declaration", name_tok)
        except ParseError:
            if final:
                raise
            self.pos = save
        expr = self.parse_expr()
        self.expect_punct(";")
        return ast.ExprStmt(expr, pos)

    # -- expressions --------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        self._enter_nesting()
        try:
            return self.parse_assign()
        finally:
            self._depth -= 1

    def parse_assign(self) -> ast.Expr:
        pos = self._pos()
        left = self.parse_cond()
        tok = self.peek()
        if tok.kind == PUNCT and tok.value in _ASSIGN_OPS:
            if not isinstance(left, (ast.Var, ast.FieldGet, ast.Index)):
                raise ParseError(
                    "invalid assignment target", tok, code="JNS-PARSE-003"
                )
            self.next()
            value = self.parse_assign()
            return ast.Assign(left, value, tok.value, pos)
        return left

    def parse_cond(self) -> ast.Expr:
        pos = self._pos()
        cond = self.parse_or()
        if self.accept_punct("?"):
            then = self.parse_expr()
            self.expect_punct(":")
            els = self.parse_cond()
            return ast.Cond(cond, then, els, pos)
        return cond

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.at_punct("||"):
            pos = self._pos()
            self.next()
            right = self.parse_and()
            left = ast.Binary("||", left, right, pos)
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_equality()
        while self.at_punct("&&"):
            pos = self._pos()
            self.next()
            right = self.parse_equality()
            left = ast.Binary("&&", left, right, pos)
        return left

    def parse_equality(self) -> ast.Expr:
        left = self.parse_relational()
        while self.at_punct("==") or self.at_punct("!="):
            pos = self._pos()
            op = self.next().value
            right = self.parse_relational()
            left = ast.Binary(op, left, right, pos)
        return left

    def parse_relational(self) -> ast.Expr:
        left = self.parse_additive()
        while True:
            tok = self.peek()
            if tok.kind == PUNCT and tok.value in ("<", "<=", ">", ">="):
                pos = self._pos()
                self.next()
                right = self.parse_additive()
                left = ast.Binary(tok.value, left, right, pos)
            elif tok.is_keyword("instanceof"):
                pos = self._pos()
                self.next()
                ref_type = self.parse_type()
                left = ast.InstanceOf(left, ref_type, pos)
            else:
                return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while self.at_punct("+") or self.at_punct("-"):
            pos = self._pos()
            op = self.next().value
            right = self.parse_multiplicative()
            left = ast.Binary(op, left, right, pos)
        return left

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_unary()
        while self.at_punct("*") or self.at_punct("/") or self.at_punct("%"):
            pos = self._pos()
            op = self.next().value
            right = self.parse_unary()
            left = ast.Binary(op, left, right, pos)
        return left

    def parse_unary(self) -> ast.Expr:
        self._enter_nesting()
        try:
            pos = self._pos()
            if self.at_punct("!"):
                self.next()
                return ast.Unary("!", self.parse_unary(), pos)
            if self.at_punct("-"):
                self.next()
                return ast.Unary("-", self.parse_unary(), pos)
            if self.at_punct("+"):
                self.next()
                return self.parse_unary()
            cast = self.try_parse_cast()
            if cast is not None:
                return cast
            return self.parse_postfix()
        finally:
            self._depth -= 1

    def try_parse_cast(self) -> Optional[ast.Expr]:
        """Parse ``(T)e`` or ``(view T)e``, backtracking if the parenthesized
        text is not a type or is not followed by an expression start."""
        if not self.at_punct("("):
            return None
        pos = self._pos()
        save = self.pos
        self.next()
        is_view = self.accept_keyword("view")
        try:
            cast_type = self.parse_type()
            self.expect_punct(")")
        except ParseError:
            if is_view:
                raise
            self.pos = save
            return None
        if is_view:
            return ast.ViewChange(cast_type, self.parse_unary(), pos)
        # Heuristic: (T)e is a cast only if what follows can start an
        # expression, and T is not a bare name followed by an operator
        # (e.g. ``(a) + b`` must stay a parenthesized expression).
        tok = self.peek()
        starts_expr = (
            tok.kind in (IDENT, INT_LIT, DOUBLE_LIT, STRING_LIT)
            or tok.is_punct("(")
            or tok.is_keyword("new")
            or tok.is_keyword("this")
            or tok.is_keyword("null")
            or tok.is_keyword("true")
            or tok.is_keyword("false")
            or tok.is_punct("!")
        )
        if isinstance(cast_type, ast.TName) and len(cast_type.parts) == 1:
            # A single identifier could be a variable; only treat as a cast
            # when followed by something that cannot continue an expression.
            if not starts_expr:
                self.pos = save
                return None
        elif not starts_expr:
            self.pos = save
            return None
        return ast.Cast(cast_type, self.parse_unary(), pos)

    def parse_postfix(self) -> ast.Expr:
        expr = self.parse_primary()
        while True:
            pos = self._pos()
            if self.at_punct(".") and self.peek(1).kind == IDENT:
                self.next()
                name = self.expect_ident().value
                if self.at_punct("("):
                    args = self.parse_args()
                    expr = ast.Call(expr, name, args, pos)
                else:
                    expr = ast.FieldGet(expr, name, pos)
                continue
            if self.at_punct("["):
                self.next()
                idx = self.parse_expr()
                self.expect_punct("]")
                expr = ast.Index(expr, idx, pos)
                continue
            if self.at_punct("++") or self.at_punct("--"):
                op = self.next().value
                if not isinstance(expr, (ast.Var, ast.FieldGet, ast.Index)):
                    raise ParseError(
                        "invalid increment target", self.peek(), code="JNS-PARSE-003"
                    )
                one = ast.Lit(1, "int", pos)
                expr = ast.Assign(expr, one, "+=" if op == "++" else "-=", pos)
                continue
            return expr

    def parse_args(self) -> List[ast.Expr]:
        self.expect_punct("(")
        args: List[ast.Expr] = []
        if not self.at_punct(")"):
            while True:
                args.append(self.parse_expr())
                if not self.accept_punct(","):
                    break
        self.expect_punct(")")
        return args

    def parse_primary(self) -> ast.Expr:
        pos = self._pos()
        tok = self.peek()
        if tok.kind == INT_LIT:
            self.next()
            return ast.Lit(int(tok.value), "int", pos)
        if tok.kind == DOUBLE_LIT:
            self.next()
            return ast.Lit(float(tok.value), "double", pos)
        if tok.kind == STRING_LIT:
            self.next()
            return ast.Lit(tok.value, "String", pos)
        if tok.is_keyword("true"):
            self.next()
            return ast.Lit(True, "boolean", pos)
        if tok.is_keyword("false"):
            self.next()
            return ast.Lit(False, "boolean", pos)
        if tok.is_keyword("null"):
            self.next()
            return ast.Lit(None, "null", pos)
        if tok.is_keyword("this"):
            self.next()
            return ast.This(pos)
        if tok.is_keyword("new"):
            self.next()
            return self.parse_new(pos)
        if tok.is_punct("("):
            self.next()
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        if tok.kind == IDENT:
            self.next()
            if self.at_punct("("):
                args = self.parse_args()
                return ast.Call(None, tok.value, args, pos)
            return ast.Var(tok.value, pos)
        raise ParseError("expected expression", tok)

    def parse_new(self, pos: ast.Pos) -> ast.Expr:
        """Parse the type and arguments of a ``new`` expression."""
        new_type = self.parse_new_type()
        if self.at_punct("("):
            args = self.parse_args()
            return ast.NewObj(new_type, args, pos)
        if self.at_punct("["):
            self.next()
            length = self.parse_expr()
            self.expect_punct("]")
            elem: ast.TypeAST = new_type
            while self.at_punct("[") and self.peek(1).is_punct("]"):
                self.next()
                self.next()
                elem = ast.TArray(elem, pos)
            return ast.NewArray(elem, length, pos)
        raise ParseError("expected '(' or '[' after new T", self.peek())

    def parse_new_type(self) -> ast.TypeAST:
        """A type usable in ``new``: names, nested names, prefix types,
        exactness -- but array suffixes are handled by parse_new."""
        pos = self._pos()
        t = self.parse_type_primary()
        name_path: Optional[List[str]] = (
            list(t.parts) if isinstance(t, ast.TName) else None
        )
        while True:
            if self.at_punct(".") and self.peek(1).is_keyword("class"):
                if name_path is None:
                    raise ParseError(".class requires a simple path", self.peek())
                self.next()
                self.next()
                t = ast.TDep(tuple(name_path), pos)
                name_path = None
                continue
            if self.at_punct(".") and self.peek(1).kind == IDENT:
                self.next()
                name = self.expect_ident().value
                if name_path is not None:
                    name_path.append(name)
                    t = ast.TName(tuple(name_path), pos)
                else:
                    t = ast.TNested(t, name, pos)
                continue
            if self.at_punct("!"):
                self.next()
                t = ast.TExact(t, pos)
                name_path = None
                continue
            if self.at_punct("[") and not self.peek(1).is_punct("]"):
                # Could be a prefix type P[T] or the array length bracket.
                save = self.pos
                self.next()
                try:
                    index = self.parse_type()
                    if not self.at_punct("]"):
                        raise ParseError("expected ']'", self.peek())
                    # An index that parses as a type but is followed by ']('
                    # could still be an array length expression like
                    # ``new Node[n]`` (n parses as TName).  Prefix-type
                    # indices are always dependent or exact; plain variable
                    # names are lengths.
                    if isinstance(index, ast.TName) and len(index.parts) == 1:
                        raise ParseError("ambiguous: treat as array length", self.peek())
                    self.next()
                    t = ast.TPrefix(t, index, pos)
                    name_path = None
                    continue
                except ParseError:
                    self.pos = save
                    break
            break
        return t


def parse_program(
    source: str,
    file: Optional[str] = None,
    sink: Optional[DiagnosticSink] = None,
) -> ast.CompilationUnit:
    """Parse a full J&s compilation unit from source text.

    Without a ``sink``, the first syntax error raises :class:`ParseError`
    (the historical behavior).  With a sink, the parser runs in
    panic-mode-recovery: lexical and syntax errors are recorded as
    diagnostics, the parser re-synchronizes on ``;``/``}`` boundaries,
    and a (possibly partial) compilation unit is still returned so later
    phases can report additional, independent errors.
    """
    import sys

    # The expression grammar costs ~13 Python frames per nesting level.
    # Raise the interpreter stack limit for the duration of the parse
    # only, and restore it afterwards — the process-wide limit must be
    # left untouched (MAX_NESTING bounds how much of it we can use).
    old_limit = sys.getrecursionlimit()
    try:
        if old_limit < 20000:
            sys.setrecursionlimit(20000)
        if not TRACER.enabled:
            return Parser(source, file=file, sink=sink).parse_program()
        with TRACER.span("parse", chars=len(source)):
            unit = Parser(source, file=file, sink=sink).parse_program()
            TRACER.count("parse.classes", len(unit.classes))
            return unit
    finally:
        sys.setrecursionlimit(old_limit)


def parse_decls(tokens: List[Token], file: Optional[str] = None) -> List[ast.ClassDecl]:
    """Parse a run of top-level class declarations from pre-made tokens
    (the list must end with an EOF token).

    Raises :class:`ParseError` on the first syntax error — the incremental
    front end (:mod:`repro.lang.incremental`) uses this for per-chunk
    reparsing and falls back to a full :func:`parse_program` whenever a
    chunk fails, so panic-mode recovery is never needed here.
    """
    import sys

    old_limit = sys.getrecursionlimit()
    try:
        if old_limit < 20000:
            sys.setrecursionlimit(20000)
        return Parser("", file=file, tokens=tokens).parse_program().classes
    finally:
        sys.setrecursionlimit(old_limit)


def parse_type_text(source: str) -> ast.TypeAST:
    """Parse a single type, for tests and the API."""
    parser = Parser(source)
    result = parser.parse_type()
    if parser.peek().kind != EOF:
        raise ParseError("trailing input after type", parser.peek())
    return result
