"""Public API of the J&s reproduction.

Typical use::

    from repro import compile_program

    program = compile_program(SOURCE)          # parse + resolve + typecheck
    interp = program.interp(mode="jns")        # pick an execution mode
    interp.run("Main.main")                    # instantiate Main, call main
    print(interp.output)                       # lines from Sys.print

Modes (Section 7.1 / Table 1): ``java``, ``jx``, ``jx_cl``, ``jns``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from .lang.classtable import ClassTable, JnsError, ResolveError, TypeError_
from .lang.resolve import resolve_program
from .lang.typecheck import CheckReport, check_program
from .runtime.interp import Interp
from .source.parser import parse_program


@dataclass
class Program:
    """A compiled J&s program: resolved AST + class table + check report."""

    table: ClassTable
    report: Optional[CheckReport]

    def interp(
        self,
        mode: str = "jns",
        echo: bool = False,
        memoize_views: bool = True,
        eager_views: bool = False,
        compiled: bool = False,
    ) -> Interp:
        """Create a fresh interpreter for this program.  The keyword flags
        select the ablation variants described in DESIGN.md (D1: disable
        view-change memoization; D3: eager instead of lazy implicit view
        changes)."""
        return Interp(
            self.table,
            mode=mode,
            echo=echo,
            memoize_views=memoize_views,
            eager_views=eager_views,
            compiled=compiled,
        )


def compile_program(
    source: str,
    check: bool = True,
    strict_sharing: bool = False,
) -> Program:
    """Parse, resolve, and (optionally) type-check a J&s program.

    ``strict_sharing=True`` enforces the paper's modular rule that every
    view change must be justified by a sharing constraint in scope; the
    default also accepts view changes justified by the global closed
    world, reporting them as warnings."""
    unit = parse_program(source)
    table = ClassTable(unit)
    resolve_program(table)
    report: Optional[CheckReport] = None
    if check:
        report = check_program(table, strict_sharing=strict_sharing)
        report.raise_on_error()
    return Program(table, report)


def run_program(
    source: str,
    entry: str = "Main.main",
    mode: str = "jns",
    check: bool = True,
) -> Tuple[Any, List[str]]:
    """Compile and run; returns (result value, printed output lines)."""
    program = compile_program(source, check=check)
    interp = program.interp(mode=mode)
    result = interp.run(entry)
    return result, interp.output
