"""Public API of the J&s reproduction.

Typical use::

    from repro import compile_program

    program = compile_program(SOURCE)          # parse + resolve + typecheck
    interp = program.interp(mode="jns")        # pick an execution mode
    interp.run("Main.main")                    # instantiate Main, call main
    print(interp.output)                       # lines from Sys.print

Modes (Section 7.1 / Table 1): ``java``, ``jx``, ``jx_cl``, ``jns``.

For tooling that wants *all* problems in a source file rather than the
first raised exception, use :func:`check_source`, which drives every
front-end and semantic stage through one :class:`~repro.diagnostics.DiagnosticSink`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from .diagnostics import DiagnosticSink
from .errors import JnsError
from .lang.classtable import ClassTable, ResolveError, TypeError_
from .lang.queries import (
    CacheStats,
    caches_enabled,
    clear_caches,
    collect_stats,
    global_stats,
    set_caches_enabled,
)
from .lang.resolve import resolve_program
from .lang.typecheck import CheckReport, check_program
from .runtime.interp import Interp
from .source.parser import parse_program


def cache_stats() -> CacheStats:
    """Aggregate hit/miss/size counters for every live query cache in the
    process (class tables, sharing checkers, loaders, interpreters, and
    the program compile cache)."""
    return global_stats()


@dataclass
class Program:
    """A compiled J&s program: resolved AST + class table + check report."""

    table: ClassTable
    report: Optional[CheckReport]

    def interp(
        self,
        mode: str = "jns",
        echo: bool = False,
        memoize_views: bool = True,
        eager_views: bool = False,
        compiled: bool = False,
        specialized: bool = False,
        backend: Optional[str] = None,
        max_steps: Optional[int] = None,
        max_depth: Optional[int] = None,
        line_profile: bool = False,
    ) -> Interp:
        """Create a fresh interpreter for this program.  The keyword flags
        select the ablation variants described in DESIGN.md (D1: disable
        view-change memoization; D3: eager instead of lazy implicit view
        changes).  ``backend`` is the unified selector over
        ``("walker", "compiled", "specialized", "codegen")`` and overrides
        the legacy booleans: ``compiled=True`` selects the closure-compiled
        backend; ``specialized=True`` additionally runs the ahead-of-time
        specialization pass (slotted layouts, register frames, sealed-family
        devirtualization — see ``repro/runtime/specialize.py``) and implies
        ``compiled``; ``backend="codegen"`` emits and ``compile()``s real
        Python source per specialized method body on top of that
        (``repro/runtime/codegen.py``).  ``max_steps``/``max_depth`` bound
        evaluation fuel and J&s call depth; exceeding either raises
        :class:`~repro.errors.JnsResourceError`."""
        return Interp(
            self.table,
            mode=mode,
            echo=echo,
            memoize_views=memoize_views,
            eager_views=eager_views,
            compiled=compiled,
            specialized=specialized,
            backend=backend,
            max_steps=max_steps,
            max_depth=max_depth,
            line_profile=line_profile,
        )

    def cache_stats(self) -> CacheStats:
        """Live counters for this program's class-table queries (they keep
        moving after the check, as interpreters run against the same
        table).  The snapshot taken at check time — including the sharing
        checker's queries — is on ``report.cache_stats``."""
        return collect_stats([self.table.queries])


def compile_program(
    source: str,
    check: bool = True,
    strict_sharing: bool = False,
) -> Program:
    """Parse, resolve, and (optionally) type-check a J&s program.

    ``strict_sharing=True`` enforces the paper's modular rule that every
    view change must be justified by a sharing constraint in scope; the
    default also accepts view changes justified by the global closed
    world, reporting them as warnings."""
    unit = parse_program(source)
    table = ClassTable(unit)
    resolve_program(table)
    report: Optional[CheckReport] = None
    if check:
        report = check_program(table, strict_sharing=strict_sharing)
        report.raise_on_error()
    return Program(table, report)


def check_source(
    source: str,
    file: Optional[str] = None,
    strict_sharing: bool = False,
    sink: Optional[DiagnosticSink] = None,
    explain: bool = False,
) -> DiagnosticSink:
    """Run the whole static pipeline, accumulating *every* diagnostic.

    Unlike :func:`compile_program`, no stage aborts on the first error:
    the lexer skips bad characters, the parser resynchronizes at ``;`` /
    ``}`` boundaries, resolution records per-member failures, and the
    type checker reports per-construct errors (skipping classes whose
    resolution failed).  Returns the sink; callers decide how to render
    it (carets via ``sink.render(source)``, machine-readable via
    ``sink.to_json()``).  ``explain=True`` records derivations during the
    check and attaches refutation trees to failing sharing diagnostics
    (see :mod:`repro.lang.provenance`)."""
    if sink is None:
        sink = DiagnosticSink(file=file)
    try:
        unit = parse_program(source, file=file, sink=sink)
        table = ClassTable(unit)
        resolve_program(table, sink=sink)
        # Partially resolved members are flagged by the resolver and
        # skipped member-by-member inside check_program, so sibling
        # members of a broken one still get their own diagnostics.
        report = check_program(table, strict_sharing=strict_sharing, explain=explain)
        for diag in report.errors + report.warnings:
            sink.add(diag)
    except JnsError as exc:
        # A table-construction failure (duplicate class, cyclic
        # inheritance) can still abort the later stages wholesale.
        sink.add_exc(exc)
    return sink


def run_program(
    source: str,
    entry: str = "Main.main",
    mode: str = "jns",
    check: bool = True,
    backend: Optional[str] = None,
    max_steps: Optional[int] = None,
    max_depth: Optional[int] = None,
) -> Tuple[Any, List[str]]:
    """Compile and run; returns (result value, printed output lines)."""
    program = compile_program(source, check=check)
    interp = program.interp(
        mode=mode, backend=backend, max_steps=max_steps, max_depth=max_depth
    )
    result = interp.run(entry)
    return result, interp.output
