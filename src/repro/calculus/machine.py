"""Small-step operational semantics of the J&s calculus (Figures 16-17).

A configuration is ⟨e, σ, H, R⟩:

* ``e`` — the expression under evaluation (:mod:`repro.calculus.syntax`);
* ``σ`` — the stack, mapping variable names to values (frames are never
  popped, as in the paper);
* ``H`` — the heap, mapping ⟨location, class, field⟩ triples to values;
  the class component is the ``fclass`` of the writing view, which is how
  duplicated unshared fields get distinct copies;
* ``R`` — the reference set recording every value created during
  evaluation (used by the soundness checks, exactly as in the paper's
  proof).

Rules implemented: R-CONG, R-VAR, R-LET, R-GET, R-SET, R-CALL, R-ALLOC,
R-SEQ, R-VIEW.  ``new S`` desugars as in R-ALLOC into a let binding the
fresh reference (with all fields masked) followed by the field
initializers, each of which removes its mask.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import JnsResourceError
from ..lang import types as T
from ..lang.classtable import ClassTable, JnsError, ResolveError, path_str
from ..lang.types import ClassType, Path, Type, View
from ..source import ast as surface
from .syntax import (
    CalcExpr,
    ECall,
    EField,
    ELet,
    ENew,
    ESeq,
    ESet,
    EValue,
    EVar,
    EView,
    rename_var,
)


class StuckError(JnsError):
    """The machine cannot take a step and the expression is not a value —
    for a well-typed program this would contradict Lemma 5.7 (progress)."""

    code = "JNS-RUN-009"


class _NoRedex(Exception):
    """Internal: the (sub)expression is already a value."""


@dataclass
class Config:
    expr: CalcExpr
    stack: Dict[str, EValue] = field(default_factory=dict)
    heap: Dict[Tuple[int, Path, str], EValue] = field(default_factory=dict)
    refs: List[EValue] = field(default_factory=list)
    next_loc: int = 0
    next_var: int = 0

    def fresh_loc(self) -> int:
        self.next_loc += 1
        return self.next_loc

    def fresh_var(self, base: str = "y") -> str:
        self.next_var += 1
        return f"${base}{self.next_var}"

    def add_ref(self, v: EValue) -> EValue:
        self.refs.append(v)
        return v


def from_surface(e: surface.Expr) -> CalcExpr:
    """Convert a resolved surface expression (the calculus fragment) into a
    calculus expression.  Method bodies of calculus programs must be a
    single ``return <expr>;``."""
    if isinstance(e, surface.This):
        return EVar("this")
    if isinstance(e, surface.Var):
        return EVar(e.name)
    if isinstance(e, surface.FieldGet):
        return EField(from_surface(e.obj), e.name)
    if isinstance(e, surface.Assign):
        if e.op != "=" or not isinstance(e.target, surface.FieldGet):
            raise ValueError("calculus assignments are x.f = e")
        return ESet(from_surface(e.target.obj), e.target.name, from_surface(e.value))
    if isinstance(e, surface.Call):
        return ECall(
            from_surface(e.obj), e.name, tuple(from_surface(a) for a in e.args)
        )
    if isinstance(e, surface.NewObj):
        if e.args:
            raise ValueError("calculus object allocation takes no arguments")
        return ENew(e.type)
    if isinstance(e, surface.ViewChange):
        return EView(e.type, from_surface(e.expr))
    raise ValueError(f"not a calculus expression: {e!r}")


def body_expr(decl: surface.MethodDecl) -> CalcExpr:
    """The calculus body of a method: a single ``return e;``."""
    body = decl.body
    if body is None or len(body.stmts) != 1 or not isinstance(
        body.stmts[0], surface.Return
    ):
        raise ValueError(
            f"calculus method {decl.name!r} must have a single return statement"
        )
    value = body.stmts[0].value
    if value is None:
        raise ValueError("calculus methods return a value")
    return from_surface(value)


class Machine:
    """Executes calculus configurations over a compiled class table."""

    def __init__(self, table: ClassTable) -> None:
        self.table = table

    # ------------------------------------------------------------------
    # type evaluation (the TE contexts of Figure 16, taken as one step)
    # ------------------------------------------------------------------

    def eval_type(self, t: Type, cfg: Config) -> Type:
        return self.table.eval_type(t, lambda p: self._path_view(p, cfg))

    def _path_view(self, path: Path, cfg: Config) -> View:
        head = path[0]
        v = cfg.stack.get(head)
        if v is None:
            raise StuckError(f"unbound variable {head!r} in dependent type")
        for fname in path[1:]:
            v = self._heap_get(v, fname, cfg)
        return v.view

    # ------------------------------------------------------------------
    # auxiliary functions of Section 4.15
    # ------------------------------------------------------------------

    def ftype(self, view: View, fname: str) -> Type:
        """ftype(∅, S, f): the field's declared type interpreted at the
        view; undefined (stuck) when f is masked in the view."""
        if fname in view.masks:
            raise StuckError(f"field {fname!r} is masked in {view!r}")
        found = self.table.find_field(view.path, fname)
        if found is None:
            raise StuckError(f"no field {fname!r} on {path_str(view.path)}")
        _, decl = found
        try:
            return self.table.eval_type(
                decl.type, lambda p: self._field_path_view(p, view)
            )
        except (ResolveError, JnsError) as exc:
            raise StuckError(str(exc)) from exc

    def _field_path_view(self, path: Path, view: View) -> View:
        if path == ("this",):
            return View(view.path)
        raise StuckError(
            f"field type depends on path {'.'.join(path)}, not just this"
        )

    def view_fn(self, v: EValue, target: Type, cfg: Config) -> EValue:
        """The ``view`` auxiliary function: retarget a reference's view."""
        try:
            new_view = self.table.view_of(v.view, target)
        except JnsError as exc:
            raise StuckError(str(exc)) from exc
        return EValue(v.loc, new_view)

    def _heap_get(self, v: EValue, fname: str, cfg: Config) -> EValue:
        owner = self.table.fclass(v.view.path, fname)
        stored = cfg.heap.get((v.loc, owner, fname))
        if stored is None:
            raise StuckError(
                f"heap has no ⟨{v.loc}, {path_str(owner)}, {fname}⟩ "
                "(uninitialized field)"
            )
        return stored

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------

    def step(self, cfg: Config) -> bool:
        """Take one small step; returns False when cfg.expr is a value."""
        if isinstance(cfg.expr, EValue):
            return False
        cfg.expr = self._step(cfg.expr, cfg)
        return True

    def run(self, cfg: Config, max_steps: int = 100000) -> EValue:
        for _ in range(max_steps):
            if not self.step(cfg):
                assert isinstance(cfg.expr, EValue)
                return cfg.expr
        # Fuel exhaustion is a resource condition, not stuckness: the
        # expression may well still be reducible.
        raise JnsResourceError(
            f"no value after {max_steps} steps", code="JNS-RES-003"
        )

    def _step(self, e: CalcExpr, cfg: Config) -> CalcExpr:
        if isinstance(e, EValue):
            raise _NoRedex()
        if isinstance(e, EVar):
            # R-VAR
            v = cfg.stack.get(e.name)
            if v is None:
                raise StuckError(f"unbound variable {e.name!r}")
            return v
        if isinstance(e, EField):
            try:
                return EField(self._step(e.obj, cfg), e.fname)
            except _NoRedex:
                pass
            # R-GET
            v = e.obj
            assert isinstance(v, EValue)
            stored = self._heap_get(v, e.fname, cfg)
            target = self.ftype(v.view, e.fname)
            result = self.view_fn(stored, target, cfg)
            cfg.add_ref(result)
            return result
        if isinstance(e, ESet):
            if isinstance(e.target, EVar):
                v_target = cfg.stack.get(e.target.name)
                if v_target is None:
                    raise StuckError(f"unbound variable {e.target.name!r}")
            elif isinstance(e.target, EValue):
                v_target = e.target
            else:
                raise StuckError("assignment receiver must be a variable")
            try:
                return ESet(e.target, e.fname, self._step(e.value, cfg))
            except _NoRedex:
                pass
            # R-SET
            value = e.value
            assert isinstance(value, EValue)
            view = v_target.view
            owner = self.table.fclass(view.path, e.fname)
            cfg.heap[(v_target.loc, owner, e.fname)] = value
            # grant: remove the mask on f from the stored view
            if e.fname in view.masks:
                granted = EValue(v_target.loc, View(view.path, view.masks - {e.fname}))
                if isinstance(e.target, EVar):
                    cfg.stack[e.target.name] = granted
                cfg.add_ref(granted)
            return value
        if isinstance(e, ESeq):
            try:
                return ESeq(self._step(e.first, cfg), e.second)
            except _NoRedex:
                return e.second  # R-SEQ
        if isinstance(e, ECall):
            try:
                return ECall(self._step(e.obj, cfg), e.mname, e.args)
            except _NoRedex:
                pass
            new_args = list(e.args)
            for i, arg in enumerate(e.args):
                try:
                    new_args[i] = self._step(arg, cfg)
                    return ECall(e.obj, e.mname, tuple(new_args))
                except _NoRedex:
                    continue
            # R-CALL
            recv = e.obj
            assert isinstance(recv, EValue)
            found = self.table.find_method(recv.view.path, e.mname)
            if found is None:
                raise StuckError(
                    f"no method {e.mname!r} on {path_str(recv.view.path)}"
                )
            _, decl = found
            if len(decl.params) != len(e.args):
                raise StuckError(f"arity mismatch calling {e.mname!r}")
            body = body_expr(decl)
            y0 = cfg.fresh_var("this")
            cfg.stack[y0] = recv
            body = rename_var(body, "this", y0)
            for param, arg in zip(decl.params, e.args):
                assert isinstance(arg, EValue)
                y = cfg.fresh_var(param.name)
                cfg.stack[y] = arg
                body = rename_var(body, param.name, y)
            return body
        if isinstance(e, ENew):
            # evaluate the type, then R-ALLOC
            t = self.eval_type(e.type, cfg).pure()
            if isinstance(t, T.IsectType):
                t = t.parts[0]
            if not isinstance(t, ClassType):
                raise StuckError(f"cannot allocate {e.type!r}")
            path = t.path
            loc = cfg.fresh_loc()
            fields = self.table.all_fields(path)
            fnames = frozenset(decl.name for _, decl in fields)
            v = EValue(loc, View(path, fnames))
            cfg.add_ref(v)
            x = cfg.fresh_var("new")
            # body: x.f1 = e1{x/this}; ...; x
            body: CalcExpr = EVar(x)
            for owner, decl in fields:
                if decl.init is None:
                    raise StuckError(
                        f"calculus field {decl.name!r} of {path_str(owner)} "
                        "has no initializer"
                    )
                init = rename_var(from_surface(decl.init), "this", x)
                body = ESeq(ESet(EVar(x), decl.name, init), body)
            return ELet(T.exact_class(path).with_masks(fnames), x, v, body)
        if isinstance(e, EView):
            try:
                return EView(e.type, self._step(e.expr, cfg))
            except _NoRedex:
                pass
            # R-VIEW
            v = e.expr
            assert isinstance(v, EValue)
            target = self.eval_type(e.type, cfg)
            result = self.view_fn(v, target, cfg)
            cfg.add_ref(result)
            return result
        if isinstance(e, ELet):
            try:
                return ELet(e.type, e.name, self._step(e.init, cfg), e.body)
            except _NoRedex:
                pass
            # R-LET
            v = e.init
            assert isinstance(v, EValue)
            y = cfg.fresh_var(e.name)
            cfg.stack[y] = v
            return rename_var(e.body, e.name, y)
        raise StuckError(f"unknown expression {e!r}")
