"""Expression syntax of the J&s calculus (Figure 8).

    values        v ::= ⟨l, S⟩
    access paths  p ::= v | x | p.f
    expressions   e ::= v | x | e.f | x.f = e | e0.m(e̅) | e1; e2
                      | new T | (view T)e | final T x = e1; e2

Values carry their own view (a non-dependent exact type with masks), so a
reference literally is a ⟨location, view⟩ pair.  Class declarations are
not duplicated here: a calculus program is a set of J&s class
declarations (with field initializers and no constructors, exactly the
calculus fragment) compiled through the normal front end, plus a main
expression built from these nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..lang.types import Type, View


class CalcExpr:
    """Base class of calculus expressions."""


@dataclass(frozen=True)
class EValue(CalcExpr):
    """⟨l, S⟩ — a reference: heap location + view."""

    loc: int
    view: View

    def __repr__(self) -> str:
        return f"<{self.loc},{self.view!r}>"


@dataclass(frozen=True)
class EVar(CalcExpr):
    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class EField(CalcExpr):
    obj: CalcExpr
    fname: str

    def __repr__(self) -> str:
        return f"{self.obj!r}.{self.fname}"


@dataclass(frozen=True)
class ESet(CalcExpr):
    """``x.f = e`` — the receiver of an assignment is always a variable
    (or, during evaluation, a value), as in the calculus grammar."""

    target: CalcExpr  # EVar or EValue
    fname: str
    value: CalcExpr

    def __repr__(self) -> str:
        return f"{self.target!r}.{self.fname} = {self.value!r}"


@dataclass(frozen=True)
class ECall(CalcExpr):
    obj: CalcExpr
    mname: str
    args: Tuple[CalcExpr, ...]

    def __repr__(self) -> str:
        return f"{self.obj!r}.{self.mname}({', '.join(map(repr, self.args))})"


@dataclass(frozen=True)
class ESeq(CalcExpr):
    first: CalcExpr
    second: CalcExpr

    def __repr__(self) -> str:
        return f"({self.first!r}; {self.second!r})"


@dataclass(frozen=True)
class ENew(CalcExpr):
    type: Type

    def __repr__(self) -> str:
        return f"new {self.type!r}"


@dataclass(frozen=True)
class EView(CalcExpr):
    type: Type
    expr: CalcExpr

    def __repr__(self) -> str:
        return f"(view {self.type!r}){self.expr!r}"


@dataclass(frozen=True)
class ELet(CalcExpr):
    """``final T x = e1; e2``."""

    type: Type
    name: str
    init: CalcExpr
    body: CalcExpr

    def __repr__(self) -> str:
        return f"final {self.type!r} {self.name} = {self.init!r}; {self.body!r}"


def rename_var_in_type(t: Type, old: str, new: str) -> Type:
    """Rename the head of dependent-class paths inside a type (the type
    half of the substitution e{y/x}, Figure 14)."""
    from ..lang import types as T

    if isinstance(t, T.DepType):
        if t.path and t.path[0] == old:
            return T.DepType((new,) + t.path[1:])
        return t
    if isinstance(t, T.PrefixType):
        return T.PrefixType(t.family, rename_var_in_type(t.index, old, new))
    if isinstance(t, T.NestedType):
        return T.NestedType(rename_var_in_type(t.outer, old, new), t.name)
    if isinstance(t, T.ExactType):
        return T.ExactType(rename_var_in_type(t.inner, old, new))
    if isinstance(t, T.IsectType):
        return T.IsectType(tuple(rename_var_in_type(p, old, new) for p in t.parts))
    if isinstance(t, T.MaskedType):
        return rename_var_in_type(t.base, old, new).with_masks(t.masks)
    if isinstance(t, T.ArrayType):
        return T.ArrayType(rename_var_in_type(t.elem, old, new))
    return t


def rename_var(e: CalcExpr, old: str, new: str) -> CalcExpr:
    """Capture-avoiding variable renaming e{new/old} (fresh ``new``),
    applied to both expressions and the dependent types inside them."""
    if isinstance(e, EValue):
        return e
    if isinstance(e, EVar):
        return EVar(new) if e.name == old else e
    if isinstance(e, EField):
        return EField(rename_var(e.obj, old, new), e.fname)
    if isinstance(e, ESet):
        return ESet(
            rename_var(e.target, old, new), e.fname, rename_var(e.value, old, new)
        )
    if isinstance(e, ECall):
        return ECall(
            rename_var(e.obj, old, new),
            e.mname,
            tuple(rename_var(a, old, new) for a in e.args),
        )
    if isinstance(e, ESeq):
        return ESeq(rename_var(e.first, old, new), rename_var(e.second, old, new))
    if isinstance(e, ENew):
        return ENew(rename_var_in_type(e.type, old, new))
    if isinstance(e, EView):
        return EView(rename_var_in_type(e.type, old, new), rename_var(e.expr, old, new))
    if isinstance(e, ELet):
        init = rename_var(e.init, old, new)
        let_type = rename_var_in_type(e.type, old, new)
        if e.name == old:
            return ELet(let_type, e.name, init, e.body)  # shadowed
        return ELet(let_type, e.name, init, rename_var(e.body, old, new))
    raise TypeError(f"unknown calculus expression {e!r}")


def free_vars(e: CalcExpr) -> List[str]:
    out: List[str] = []

    def walk(e: CalcExpr, bound: Tuple[str, ...]) -> None:
        if isinstance(e, EVar):
            if e.name not in bound and e.name not in out:
                out.append(e.name)
        elif isinstance(e, EField):
            walk(e.obj, bound)
        elif isinstance(e, ESet):
            walk(e.target, bound)
            walk(e.value, bound)
        elif isinstance(e, ECall):
            walk(e.obj, bound)
            for a in e.args:
                walk(a, bound)
        elif isinstance(e, ESeq):
            walk(e.first, bound)
            walk(e.second, bound)
        elif isinstance(e, EView):
            walk(e.expr, bound)
        elif isinstance(e, ELet):
            walk(e.init, bound)
            walk(e.body, bound + (e.name,))

    walk(e, ())
    return out
