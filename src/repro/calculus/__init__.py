"""The formal J&s calculus (Sections 4-5 of the paper).

This subpackage implements the object calculus the paper proves sound,
separately from the practical interpreter:

* :mod:`repro.calculus.syntax` — the expression grammar of Figure 8
  (values are explicit location/view pairs; fields carry initializers;
  methods carry sharing constraints);
* :mod:`repro.calculus.machine` — the small-step operational semantics of
  Figures 16-17: configurations ⟨e, σ, H, R⟩ with a heap keyed by
  ⟨location, fclass, field⟩, the ``view`` auxiliary function, and the
  reference set R threaded through evaluation exactly as in the paper;
* :mod:`repro.calculus.soundness` — executable analogues of the soundness
  ingredients: runtime typing environments ⌊σ,H,R⌋, configuration
  well-formedness (Figure 19), and per-step subject-reduction/progress
  checks used by the hypothesis property tests (Theorem 5.8).

Class-level machinery (CT/CT', subclassing, sharing groups, fclass) is
shared with :mod:`repro.lang.classtable`, which implements those
definitions once for both the calculus and the practical runtime.
"""

from .machine import Config, Machine, StuckError, body_expr, from_surface
from .soundness import (
    SoundnessViolation,
    check_progress_and_preservation,
    runtime_env,
    type_expr,
    well_formed_config,
)
from .syntax import (
    CalcExpr,
    ECall,
    EField,
    ELet,
    ENew,
    ESeq,
    ESet,
    EValue,
    EVar,
    EView,
    free_vars,
    rename_var,
)

__all__ = [
    "Config",
    "Machine",
    "StuckError",
    "body_expr",
    "from_surface",
    "SoundnessViolation",
    "check_progress_and_preservation",
    "runtime_env",
    "type_expr",
    "well_formed_config",
    "CalcExpr",
    "EValue",
    "EVar",
    "EField",
    "ESet",
    "ECall",
    "ESeq",
    "ENew",
    "EView",
    "ELet",
    "free_vars",
    "rename_var",
]
