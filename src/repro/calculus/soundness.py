"""Executable soundness ingredients for the J&s calculus (Section 5).

The paper proves soundness via subject reduction (Lemma 5.6) and progress
(Lemma 5.7).  This module provides the runtime artifacts those lemmas
quantify over, so property-based tests can *check* them on generated
programs:

* :func:`runtime_env` — the runtime typing environment ⌊σ, H, R⌋: every
  stack variable is typed by the view its value carries (F-REF makes a
  reference self-typing);
* :func:`well_formed_config` — Figure 19: every unmasked field of every
  reference in R holds a value whose view conforms to (or can be viewed
  at) the field's interpreted type;
* :func:`type_expr` — expression typing for calculus configurations
  (the T-rules of Figure 10 restricted to the calculus fragment);
* :func:`check_progress_and_preservation` — runs a configuration to a
  value, checking at every step that a well-typed expression steps
  (progress) and that the type is preserved up to subsumption and
  environment extension (subject reduction).
"""

from __future__ import annotations

from typing import Optional

from ..lang import types as T
from ..lang.classtable import ClassTable, JnsError, ResolveError, TypeError_, path_str
from ..lang.sharing import SharingChecker
from ..lang.subtype import Env, substitute_this, subtype
from ..lang.types import ClassType, Type, View
from .machine import Config, Machine, StuckError
from .syntax import (
    CalcExpr,
    ECall,
    EField,
    ELet,
    ENew,
    ESeq,
    ESet,
    EValue,
    EVar,
    EView,
)


class SoundnessViolation(AssertionError):
    """A counterexample to subject reduction or progress."""


def runtime_env(table: ClassTable, cfg: Config) -> Env:
    """⌊σ, H, R⌋ as a practical typing environment: each stack variable is
    typed by its value's view."""
    env = Env(table, ())
    for name, value in cfg.stack.items():
        env.vars[name] = value.view.as_type()
    return env


def well_formed_config(table: ClassTable, cfg: Config) -> Optional[str]:
    """Check Figure 19's CONFIG judgment; returns an explanation when the
    configuration is ill-formed, else None."""
    machine = Machine(table)
    for ref in cfg.refs:
        view = ref.view
        for _, decl in table.all_fields(view.path):
            fname = decl.name
            if fname in view.masks:
                continue
            owner = table.fclass(view.path, fname)
            stored = cfg.heap.get((ref.loc, owner, fname))
            if stored is None:
                return (
                    f"unmasked field {fname!r} of ⟨{ref.loc}, {view!r}⟩ "
                    "is not in the heap"
                )
            try:
                target = machine.ftype(view, fname)
            except StuckError as exc:
                return str(exc)
            if _conforms(table, stored.view, target):
                continue
            # or the stored value can be viewed at the field type
            try:
                table.view_of(stored.view, target)
            except JnsError:
                return (
                    f"field {fname!r} of ⟨{ref.loc}, {view!r}⟩ holds "
                    f"{stored.view!r}, incompatible with {target!r}"
                )
    return None


def _conforms(table: ClassTable, view: View, t: Type) -> bool:
    t = t.pure()
    if isinstance(t, ClassType):
        m = max(t.exact, default=0)
        if m > 0:
            if len(view.path) < m or view.path[:m] != t.path[:m]:
                return False
            if m == len(t.path) and view.path != t.path:
                return False
        return table.inherits(view.path, t.path)
    if isinstance(t, T.IsectType):
        return all(_conforms(table, view, p) for p in t.parts)
    return False


def type_expr(table: ClassTable, env: Env, e: CalcExpr) -> Type:
    """Type a calculus expression in ⌊σ, H, R⌋ (Figure 10's T-rules)."""
    sharing = SharingChecker(table)
    return _type(table, sharing, env, e)


def _type(table: ClassTable, sharing: SharingChecker, env: Env, e: CalcExpr) -> Type:
    if isinstance(e, EValue):
        return e.view.as_type()  # F-REF
    if isinstance(e, EVar):
        t = env.lookup(e.name)
        if t is None:
            raise TypeError_(f"unbound variable {e.name!r}")
        return t
    if isinstance(e, EField):
        t_obj = _type(table, sharing, env, e.obj)
        return env.field_type(t_obj, e.fname)  # T-GET (raises when masked)
    if isinstance(e, ESet):
        t_target = _type(table, sharing, env, e.target)
        t_value = _type(table, sharing, env, e.value)
        # declared field type, receiver-substituted, ignoring the mask
        recv = t_target.pure()
        bound = env.bound(recv).pure()
        cls = env._single_class(bound)
        found = table.find_field(cls.path, e.fname)
        if found is None:
            raise TypeError_(f"no field {e.fname!r} on {recv!r}")
        _, decl = found
        ftype = substitute_this(decl.type, recv, env)
        if not subtype(env, t_value, ftype):
            raise TypeError_(
                f"T-SET: {t_value!r} is not assignable to {ftype!r}"
            )
        # grant (Figure 10's updated environment Γ'): the assignment removes
        # the mask on the receiver variable — the typer threads one mutable
        # environment exactly like the flow-sensitive judgment Γ ⊢ e:T,Γ'.
        if isinstance(e.target, EVar) and e.fname in t_target.masks:
            env.vars[e.target.name] = t_target.pure().with_masks(
                t_target.masks - {e.fname}
            )
        return t_value
    if isinstance(e, ECall):
        t_obj = _type(table, sharing, env, e.obj)
        if t_obj.masks:
            raise TypeError_("method call on a value with masked fields")
        sig = env.method_sig(t_obj, e.mname)
        if sig is None:
            raise TypeError_(f"no method {e.mname!r} on {t_obj!r}")
        params, ret, decl, owner = sig
        if len(params) != len(e.args):
            raise TypeError_(f"arity mismatch calling {e.mname!r}")
        for param_t, arg in zip(params, e.args):
            t_arg = _type(table, sharing, env, arg)
            if not subtype(env, t_arg, param_t):
                raise TypeError_(
                    f"T-CALL: argument {t_arg!r} is not a {param_t!r}"
                )
        return ret
    if isinstance(e, ESeq):
        _type(table, sharing, env, e.first)
        return _type(table, sharing, env, e.second)
    if isinstance(e, ENew):
        return T.make_exact(e.type)  # T-NEW
    if isinstance(e, EView):
        t_src = _type(table, sharing, env, e.expr)
        holds, _how = sharing.sharing_judgment(env, t_src, e.type)
        if not holds:
            raise TypeError_(
                f"T-VIEW: no sharing relationship {t_src!r} ~> {e.type!r}"
            )
        return e.type
    if isinstance(e, ELet):
        t_init = _type(table, sharing, env, e.init)
        if not subtype(env, t_init, e.type):
            raise TypeError_(f"T-LET: {t_init!r} is not a {e.type!r}")
        inner = env.copy()
        inner.vars[e.name] = e.type
        return _type(table, sharing, inner, e.body)
    raise TypeError_(f"unknown calculus expression {e!r}")


def check_progress_and_preservation(
    table: ClassTable, cfg: Config, max_steps: int = 2000
) -> EValue:
    """Run ``cfg`` to a value, checking soundness at every step:

    * the initial and every intermediate configuration is well-formed and
      well-typed;
    * a well-typed non-value configuration always steps (progress);
    * after each step the expression's type is a subtype of the previous
      type (subject reduction, with subsumption).

    Raises :class:`SoundnessViolation` with a counterexample otherwise."""
    machine = Machine(table)
    env = runtime_env(table, cfg)
    problem = well_formed_config(table, cfg)
    if problem is not None:
        raise SoundnessViolation(f"initial configuration ill-formed: {problem}")
    t_prev = type_expr(table, env, cfg.expr)
    for step_no in range(max_steps):
        if isinstance(cfg.expr, EValue):
            return cfg.expr
        expr_before = cfg.expr
        try:
            stepped = machine.step(cfg)
        except StuckError as exc:
            raise SoundnessViolation(
                f"progress violated at step {step_no}: {expr_before!r} is "
                f"well-typed ({t_prev!r}) but stuck: {exc}"
            ) from exc
        if not stepped:
            return cfg.expr  # value
        env = runtime_env(table, cfg)
        problem = well_formed_config(table, cfg)
        if problem is not None:
            raise SoundnessViolation(
                f"configuration ill-formed after step {step_no}: {problem}"
            )
        try:
            t_now = type_expr(table, env, cfg.expr)
        except (TypeError_, ResolveError) as exc:
            raise SoundnessViolation(
                f"preservation violated at step {step_no}: result of "
                f"{expr_before!r} no longer types: {exc}"
            ) from exc
        if not subtype(env, t_now, t_prev):
            raise SoundnessViolation(
                f"preservation violated at step {step_no}: type went from "
                f"{t_prev!r} to {t_now!r} (not a subtype)"
            )
        t_prev = t_now
    raise SoundnessViolation(f"no value after {max_steps} steps")
