"""The J&s runtime: values, the classloader, and the interpreter."""

from .interp import Interp, MODES
from .values import (
    Instance,
    JnsFailure,
    JnsRuntimeError,
    NullDereference,
    Ref,
    UninitializedFieldError,
)

__all__ = [
    "Interp",
    "MODES",
    "Instance",
    "Ref",
    "JnsRuntimeError",
    "JnsFailure",
    "NullDereference",
    "UninitializedFieldError",
]
