"""Closure compilation of J&s method bodies.

The paper's implementation *translates* J&s (to Java bytecode via
Polyglot, Section 6) rather than interpreting it; this module is the
analogous backend for the Python substrate: each method body is compiled
once into a tree of Python closures (the standard closure-compilation
technique for fast interpreters), eliminating the per-node dispatch of
the tree walker.  Semantics are shared with the interpreter — field
access, dispatch, views, and the Sys natives all go through the same
:class:`~repro.runtime.interp.Interp` entry points — so the two
execution strategies agree by construction on everything but speed.

Enabled with ``Program.interp(compiled=True)`` (any mode).

:class:`RegisterCompiler` extends this with the ahead-of-time
specializations of :mod:`repro.runtime.specialize`: bodies run over
fixed-size *list* frames (locals and parameters get integer registers;
``this`` is register 0, parameters fill 1..n), field accesses go through
per-site inline caches over the slotted object layouts, and call sites
whose method name is sealed in the locally closed world are bound
statically.  Enabled with ``Program.interp(specialized=True)``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..lang import types as T
from ..lang.classtable import path_str
from ..lang.types import ClassType
from ..obs import TRACER
from ..profiler import PROFILER
from ..source import ast
from .values import (
    ABSENT,
    JnsRuntimeError,
    NullDereference,
    Ref,
    UninitializedFieldError,
    default_value,
)

Frame = Dict[str, Any]
ExprFn = Callable[[Frame], Any]
StmtFn = Callable[[Frame], None]


class _Return(Exception):
    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class BodyCompiler:
    """Compiles statements/expressions of one program against a live
    interpreter (which supplies field/dispatch/view semantics)."""

    def __init__(self, interp) -> None:
        self.interp = interp

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------

    def compile_body(self, body: ast.Block) -> Callable[[Frame], Any]:
        if TRACER.enabled:
            with TRACER.span("compile"):
                stmt = self.stmt(body)
        else:
            stmt = self.stmt(body)

        def run(frame: Frame) -> Any:
            try:
                stmt(frame)
            except _Return as r:
                return r.value
            return None

        return run

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def stmt(self, s: ast.Stmt) -> StmtFn:
        fn = self._compile_stmt(s)
        if (
            self.interp.line_profile
            and type(s) is not ast.Block
            and type(s) is not ast.Empty
            and s.pos[0]
        ):
            # Per-statement hit wrapper, bound at compile time: profiled
            # interpreters compile fresh bodies, so unprofiled runs never
            # see it (same discipline as the fuel tick).
            line = s.pos[0]
            hit = PROFILER.stmt_hit

            def run_profiled(frame: Frame) -> None:
                hit(line)
                fn(frame)

            return run_profiled
        return fn

    def _compile_stmt(self, s: ast.Stmt) -> StmtFn:
        cls = type(s)
        if cls is ast.Block:
            stmts = tuple(self.stmt(x) for x in s.stmts)
            if len(stmts) == 1:
                return stmts[0]

            def run_block(frame: Frame) -> None:
                for fn in stmts:
                    fn(frame)

            return run_block
        if cls is ast.LocalDecl:
            name = s.name
            if s.init is not None:
                init = self.expr(s.init)

                def run_decl(frame: Frame) -> None:
                    frame[name] = init(frame)

                return run_decl
            from .values import default_value

            default = default_value(s.type)

            def run_decl_default(frame: Frame) -> None:
                frame[name] = default

            return run_decl_default
        if cls is ast.ExprStmt:
            fn = self.expr(s.expr)

            def run_expr(frame: Frame) -> None:
                fn(frame)

            return run_expr
        if cls is ast.If:
            cond = self.expr(s.cond)
            then = self.stmt(s.then)
            els = self.stmt(s.els) if s.els is not None else None

            def run_if(frame: Frame) -> None:
                if cond(frame):
                    then(frame)
                elif els is not None:
                    els(frame)

            return run_if
        if cls is ast.While:
            cond = self.expr(s.cond)
            body = self.stmt(s.body)
            # Compiled closures bypass Interp.eval, so a finite step
            # budget is charged per loop iteration instead.  The hook is
            # bound at compile time: unmetered interpreters pay nothing.
            tick = self.interp._tick if self.interp._max_steps is not None else None

            def run_while(frame: Frame) -> None:
                while cond(frame):
                    if tick is not None:
                        tick()
                    try:
                        body(frame)
                    except _Break:
                        break
                    except _Continue:
                        continue

            return run_while
        if cls is ast.For:
            init = self.stmt(s.init) if s.init is not None else None
            cond = self.expr(s.cond) if s.cond is not None else None
            update = self.expr(s.update) if s.update is not None else None
            body = self.stmt(s.body)
            tick = self.interp._tick if self.interp._max_steps is not None else None

            def run_for(frame: Frame) -> None:
                if init is not None:
                    init(frame)
                while cond is None or cond(frame):
                    if tick is not None:
                        tick()
                    try:
                        body(frame)
                    except _Break:
                        break
                    except _Continue:
                        pass
                    if update is not None:
                        update(frame)

            return run_for
        if cls is ast.Return:
            if s.value is None:

                def run_return_void(frame: Frame) -> None:
                    raise _Return(None)

                return run_return_void
            value = self.expr(s.value)

            def run_return(frame: Frame) -> None:
                raise _Return(value(frame))

            return run_return
        if cls is ast.Break:

            def run_break(frame: Frame) -> None:
                raise _Break()

            return run_break
        if cls is ast.Continue:

            def run_continue(frame: Frame) -> None:
                raise _Continue()

            return run_continue
        if cls is ast.Empty:
            return lambda frame: None
        raise JnsRuntimeError(f"cannot compile statement {s!r}")

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def expr(self, e: ast.Expr) -> ExprFn:
        cls = type(e)
        interp = self.interp
        if cls is ast.Lit:
            value = e.value
            return lambda frame: value
        if cls is ast.This:
            return lambda frame: frame["this"]
        if cls is ast.Var:
            name = e.name
            return lambda frame: frame[name]
        if cls is ast.FieldGet:
            obj = self.expr(e.obj)
            name = e.name
            get_field = interp.get_field
            return lambda frame: get_field(obj(frame), name)
        if cls is ast.Call:
            obj = self.expr(e.obj)
            name = e.name
            args = tuple(self.expr(a) for a in e.args)
            call = interp.call_method
            if not interp.loader.cached:
                # jx mode: no run-time caching anywhere, including here.

                def run_call(frame: Frame):
                    receiver = obj(frame)
                    if receiver is None:
                        raise NullDereference(f"null dereference calling {name!r}")
                    if not isinstance(receiver, Ref):
                        raise JnsRuntimeError(
                            f"cannot call {name!r} on {receiver!r}"
                        )
                    return call(receiver, name, [a(frame) for a in args])

                return run_call
            # Monomorphic per-call-site inline cache: remember the last
            # (view path -> resolved method) so the common same-receiver-
            # class case skips even the dispatch query.  Compared with
            # ``==`` (not ``is``): equal-but-not-identical path tuples
            # occur.  ``site_q`` supplies hit/miss counters and the live
            # enabled flag (the cache degrades to plain dispatch when
            # caching is globally disabled).
            invoke = interp._invoke
            lookup = interp._lookup_method
            site_q = interp._q_site
            site: List[Any] = [None, None, None]  # view path, owner, decl

            def run_call_ic(frame: Frame):
                receiver = obj(frame)
                if receiver is None:
                    raise NullDereference(f"null dereference calling {name!r}")
                if not isinstance(receiver, Ref):
                    raise JnsRuntimeError(f"cannot call {name!r} on {receiver!r}")
                vp = receiver.view.path
                if site[0] == vp:
                    site_q.hits += 1
                    if TRACER.enabled:
                        TRACER.count("dispatch.ic_hit")
                    return invoke(
                        site[1], site[2], receiver, name, [a(frame) for a in args]
                    )
                site_q.misses += 1
                if TRACER.enabled:
                    TRACER.count("dispatch.ic_miss")
                found = lookup(vp, name)
                if found is None:
                    raise JnsRuntimeError(f"no method {name!r} on {path_str(vp)}")
                owner, decl = found
                if site_q._enabled:
                    site[0], site[1], site[2] = vp, owner, decl
                else:
                    site[0] = None
                return invoke(owner, decl, receiver, name, [a(frame) for a in args])

            return run_call_ic
        if cls is ast.SysCall:
            fn = interp._sys[e.name]
            args = tuple(self.expr(a) for a in e.args)
            if not args:
                return lambda frame: fn()
            if len(args) == 1:
                a0 = args[0]
                return lambda frame: fn(a0(frame))
            return lambda frame: fn(*[a(frame) for a in args])
        if cls is ast.NewObj:
            new_type = e.type
            args = tuple(self.expr(a) for a in e.args)
            new_instance = interp.new_instance
            if type(new_type) is ClassType:
                path = new_type.path

                def run_new_static(frame: Frame):
                    return new_instance(path, tuple(a(frame) for a in args))

                return run_new_static
            eval_type = interp._eval_type

            def run_new(frame: Frame):
                evaled = eval_type(new_type, frame).pure()
                if isinstance(evaled, T.IsectType):
                    evaled = evaled.parts[0]
                return new_instance(evaled.path, tuple(a(frame) for a in args))

            return run_new
        if cls is ast.NewArray:
            from .values import default_value

            default = default_value(e.elem_type)
            length = self.expr(e.length)

            def run_new_array(frame: Frame):
                n = length(frame)
                if not isinstance(n, int) or n < 0:
                    raise JnsRuntimeError(f"bad array length {n!r}")
                return [default] * n

            return run_new_array
        if cls is ast.Index:
            arr = self.expr(e.arr)
            idx = self.expr(e.idx)

            def run_index(frame: Frame):
                a = arr(frame)
                i = idx(frame)
                if a is None:
                    raise NullDereference("null array")
                if not 0 <= i < len(a):
                    raise JnsRuntimeError(
                        f"array index {i} out of bounds (length {len(a)})"
                    )
                return a[i]

            return run_index
        if cls is ast.Unary:
            operand = self.expr(e.operand)
            if e.op == "!":
                return lambda frame: not operand(frame)
            return lambda frame: -operand(frame)
        if cls is ast.Binary:
            return self._binary(e)
        if cls is ast.Cond:
            cond = self.expr(e.cond)
            then = self.expr(e.then)
            els = self.expr(e.els)
            return lambda frame: then(frame) if cond(frame) else els(frame)
        if cls is ast.Cast:
            return self._cast(e)
        if cls is ast.ViewChange:
            inner = self.expr(e.expr)
            target = e.type
            if not interp.sharing:
                mode = interp.mode

                def run_view_unsupported(frame: Frame):
                    raise JnsRuntimeError(
                        f"view changes require the jns mode (running in {mode!r})"
                    )

                return run_view_unsupported
            eval_type = interp._eval_type
            adapt = interp._adapt

            def run_view(frame: Frame):
                v = inner(frame)
                if v is None:
                    return None
                if not isinstance(v, Ref):
                    raise JnsRuntimeError(f"view change applied to non-object {v!r}")
                target_t = eval_type(target, frame)
                if TRACER.enabled:
                    TRACER.event(
                        "view_change.explicit",
                        source=path_str(v.view.path),
                        target=str(target_t),
                    )
                result = adapt(v, target_t)
                if interp.eager_views:
                    interp.propagate_views(result)
                return result

            return run_view
        if cls is ast.InstanceOf:
            inner = self.expr(e.expr)
            t = e.type
            instanceof_value = interp.instanceof_value
            return lambda frame: instanceof_value(inner(frame), t, frame)
        if cls is ast.Assign:
            return self._assign(e)
        raise JnsRuntimeError(f"cannot compile expression {e!r}")

    # ------------------------------------------------------------------

    def _binary(self, e: ast.Binary) -> ExprFn:
        from .interp import _jdiv, _jmod, to_jstring

        op = e.op
        left = self.expr(e.left)
        right = self.expr(e.right)
        if op == "&&":
            return lambda frame: bool(left(frame)) and bool(right(frame))
        if op == "||":
            return lambda frame: bool(left(frame)) or bool(right(frame))
        if op == "+":

            def run_add(frame: Frame):
                a = left(frame)
                b = right(frame)
                if isinstance(a, str) or isinstance(b, str):
                    if isinstance(a, str) and isinstance(b, str):
                        return a + b
                    return to_jstring(a) + to_jstring(b)
                return a + b

            return run_add
        if op == "-":
            return lambda frame: left(frame) - right(frame)
        if op == "*":
            return lambda frame: left(frame) * right(frame)
        if op == "/":
            return lambda frame: _jdiv(left(frame), right(frame))
        if op == "%":
            return lambda frame: _jmod(left(frame), right(frame))
        equals = self.interp._equals
        if op == "==":
            return lambda frame: equals(left(frame), right(frame))
        if op == "!=":
            return lambda frame: not equals(left(frame), right(frame))
        if op == "<":
            return lambda frame: left(frame) < right(frame)
        if op == "<=":
            return lambda frame: left(frame) <= right(frame)
        if op == ">":
            return lambda frame: left(frame) > right(frame)
        if op == ">=":
            return lambda frame: left(frame) >= right(frame)
        raise JnsRuntimeError(f"unknown operator {op!r}")

    def _cast(self, e: ast.Cast) -> ExprFn:
        interp = self.interp
        inner = self.expr(e.expr)
        t = e.type
        t_pure = t.pure()
        if isinstance(t_pure, T.PrimType):
            if t_pure == T.INT:
                return lambda frame: int(inner(frame))
            if t_pure == T.DOUBLE:
                return lambda frame: float(inner(frame))
            if t_pure == T.BOOLEAN:
                return lambda frame: bool(inner(frame))
            return inner
        cast_value = interp.cast_value
        return lambda frame: cast_value(inner(frame), t, frame)

    def _load(self, target: ast.Expr) -> ExprFn:
        return self.expr(target)

    def _store(self, target: ast.Expr) -> Callable[[Frame, Any], None]:
        interp = self.interp
        if type(target) is ast.Var:
            name = target.name

            def store_var(frame: Frame, v: Any) -> None:
                frame[name] = v

            return store_var
        if type(target) is ast.FieldGet:
            obj = self.expr(target.obj)
            name = target.name
            set_field = interp.set_field

            def store_field(frame: Frame, v: Any) -> None:
                set_field(obj(frame), name, v)

            return store_field
        if type(target) is ast.Index:
            arr = self.expr(target.arr)
            idx = self.expr(target.idx)

            def store_index(frame: Frame, v: Any) -> None:
                a = arr(frame)
                i = idx(frame)
                if a is None:
                    raise NullDereference("null array")
                if not 0 <= i < len(a):
                    raise JnsRuntimeError(
                        f"array index {i} out of bounds (length {len(a)})"
                    )
                a[i] = v

            return store_index
        raise JnsRuntimeError("invalid assignment target")

    def _assign(self, e: ast.Assign) -> ExprFn:
        store = self._store(e.target)
        if e.op == "=":
            value = self.expr(e.value)

            def run_assign(frame: Frame):
                v = value(frame)
                store(frame, v)
                return v

            return run_assign
        # compound: mirror the interpreter's semantics (incl. Java's
        # truncate-back-to-int on int /= and similar)
        from .interp import _jdiv, to_jstring

        load = self._load(e.target)
        rhs = self.expr(e.value)
        binop = e.op[0]

        def run_compound(frame: Frame):
            current = load(frame)
            r = rhs(frame)
            if binop == "+":
                if isinstance(current, str) or isinstance(r, str):
                    if isinstance(current, str) and isinstance(r, str):
                        v = current + r
                    else:
                        v = to_jstring(current) + to_jstring(r)
                else:
                    v = current + r
            elif binop == "-":
                v = current - r
            elif binop == "*":
                v = current * r
            else:
                v = _jdiv(current, r)
            if isinstance(current, int) and isinstance(v, float):
                v = int(v)
            store(frame, v)
            return v

        return run_compound


# ---------------------------------------------------------------------------
# register-frame compilation (ahead-of-time specialization)
# ---------------------------------------------------------------------------


class CompiledBody:
    """A register-compiled unit: the entry closure, the frame size, and
    the precomputed padding row appended after the positionally-seeded
    registers (``this`` + parameters) so frame construction is two list
    extends, no per-call arithmetic."""

    __slots__ = ("run", "nregs", "pad")

    def __init__(self, run: Callable, nregs: int, nseed: int) -> None:
        self.run = run
        self.nregs = nregs
        self.pad = (ABSENT,) * (nregs - nseed)


class _RegView:
    """Dict-like adapter over a register frame for the cold dependent-type
    paths (``eval_type`` / ``cast_value`` / ``instanceof_value``), which
    resolve frame variables by name via ``.get``.  An allocated but
    unassigned register reads as absent, matching the dict frames."""

    __slots__ = ("names", "regs")

    def __init__(self, names: Dict[str, int], regs: List[Any]) -> None:
        self.names = names
        self.regs = regs

    def get(self, name: str, default: Any = None) -> Any:
        i = self.names.get(name)
        if i is None:
            return default
        v = self.regs[i]
        return default if v is ABSENT else v


class RegisterCompiler(BodyCompiler):
    """Body compiler over fixed-size list frames, with specialized field
    and call sites.

    Register allocation is demand-driven during compilation (J&s locals
    are function-scoped with last-assignment-wins, and the resolver has
    already rewritten bare field names to ``this.f``, so every ``Var`` is
    a genuine local): ``this`` is register 0, parameters take 1..n in
    declaration order (a duplicated parameter name maps to its last
    occurrence, as in dict frames), and each further name gets the next
    free register on first mention.  Closures capture integer indices, so
    the frame is just ``[this, *args, ABSENT…]``.

    Everything frame-shape-agnostic (blocks, loops, operators, arrays,
    Sys natives, fuel ticks) is inherited from :class:`BodyCompiler`
    unchanged — the overrides below cover variable access, the slotted
    field accesses, devirtualized calls, and the dependent-type sites
    that need a by-name view of the frame."""

    def __init__(self, interp) -> None:
        super().__init__(interp)
        self.spec = interp.spec
        self.names: Dict[str, int] = {}
        self._next = 0

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------

    def _reg(self, name: str) -> int:
        i = self.names.get(name)
        if i is None:
            i = self.names[name] = self._next
            self._next += 1
        return i

    def compile_method(self, decl) -> CompiledBody:
        """Compile a method or constructor declaration (anything with
        ``params`` and a ``body`` block) to a register-frame unit."""
        self.names = {"this": 0}
        self._next = 1 + len(decl.params)
        for i, p in enumerate(decl.params):
            self.names[p.name] = i + 1
        run = self.compile_body(decl.body)
        return CompiledBody(run, self._next, 1 + len(decl.params))

    def compile_init(self, expr: ast.Expr) -> CompiledBody:
        """Compile a field initializer expression (frame: ``this`` only)."""
        self.names = {"this": 0}
        self._next = 1
        if TRACER.enabled:
            with TRACER.span("compile"):
                fn = self.expr(expr)
        else:
            fn = self.expr(expr)
        return CompiledBody(fn, self._next, 1)

    # ------------------------------------------------------------------
    # statements / stores
    # ------------------------------------------------------------------

    def _compile_stmt(self, s: ast.Stmt) -> StmtFn:
        if type(s) is ast.LocalDecl:
            i = self._reg(s.name)
            if s.init is not None:
                init = self.expr(s.init)

                def run_decl(frame: List[Any]) -> None:
                    frame[i] = init(frame)

                return run_decl
            default = default_value(s.type)

            def run_decl_default(frame: List[Any]) -> None:
                frame[i] = default

            return run_decl_default
        return super()._compile_stmt(s)

    def _store(self, target: ast.Expr) -> Callable[[List[Any], Any], None]:
        if type(target) is ast.Var:
            i = self._reg(target.name)

            def store_var(frame: List[Any], v: Any) -> None:
                frame[i] = v

            return store_var
        if type(target) is ast.FieldGet:
            return self._field_store(target)
        return super()._store(target)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def expr(self, e: ast.Expr) -> ExprFn:
        cls = type(e)
        if cls is ast.This:
            i = self._reg("this")
            return lambda frame: frame[i]
        if cls is ast.Var:
            i = self._reg(e.name)
            name = e.name

            def run_var(frame: List[Any]) -> Any:
                v = frame[i]
                if v is ABSENT:
                    raise JnsRuntimeError(f"unbound variable {name!r}")
                return v

            return run_var
        if cls is ast.FieldGet:
            return self._field_read(e)
        if cls is ast.Call:
            devirt = self._devirt_call(e)
            if devirt is not None:
                return devirt
            return super().expr(e)
        if cls is ast.NewObj and type(e.type) is not ClassType:
            new_type = e.type
            args = tuple(self.expr(a) for a in e.args)
            interp = self.interp
            eval_type = interp._eval_type
            new_instance = interp.new_instance
            names = self.names

            def run_new_dep(frame: List[Any]):
                evaled = eval_type(new_type, _RegView(names, frame)).pure()
                if isinstance(evaled, T.IsectType):
                    evaled = evaled.parts[0]
                if not isinstance(evaled, ClassType):
                    raise JnsRuntimeError(f"cannot instantiate {new_type!r}")
                return new_instance(evaled.path, tuple(a(frame) for a in args))

            return run_new_dep
        if cls is ast.Cast and not isinstance(e.type.pure(), T.PrimType):
            inner = self.expr(e.expr)
            t = e.type
            cast_value = self.interp.cast_value
            names = self.names
            return lambda frame: cast_value(inner(frame), t, _RegView(names, frame))
        if cls is ast.ViewChange and self.interp.sharing:
            inner = self.expr(e.expr)
            target = e.type
            interp = self.interp
            eval_type = interp._eval_type
            adapt = interp._adapt
            names = self.names
            static = self._static_view_target(target)
            if static is not None:
                # Non-dependent target: the type evaluated once at
                # compile time and the no-op source set is proven, so a
                # hot view change (including call receivers like
                # ``((view T)e).m()``) skips the per-call ``_RegView``
                # adapter and, when the source view is in the set, the
                # whole runtime ``view`` call.
                evaled, noops = static

                def run_view_static(frame: List[Any]):
                    v = inner(frame)
                    if v is None:
                        return None
                    if not isinstance(v, Ref):
                        raise JnsRuntimeError(
                            f"view change applied to non-object {v!r}"
                        )
                    if TRACER.enabled:
                        TRACER.event(
                            "view_change.explicit",
                            source=path_str(v.view.path),
                            target=str(evaled),
                        )
                    w = v.view
                    if w.path in noops and not w.masks:
                        if TRACER.enabled:
                            TRACER.count("view_change.elided")
                        if PROFILER.enabled:
                            PROFILER.view_hit()
                        result = v
                    else:
                        result = adapt(v, evaled)
                    if interp.eager_views:
                        interp.propagate_views(result)
                    return result

                return run_view_static

            def run_view(frame: List[Any]):
                v = inner(frame)
                if v is None:
                    return None
                if not isinstance(v, Ref):
                    raise JnsRuntimeError(
                        f"view change applied to non-object {v!r}"
                    )
                target_t = eval_type(target, _RegView(names, frame))
                if TRACER.enabled:
                    TRACER.event(
                        "view_change.explicit",
                        source=path_str(v.view.path),
                        target=str(target_t),
                    )
                result = adapt(v, target_t)
                if interp.eager_views:
                    interp.propagate_views(result)
                return result

            return run_view
        if cls is ast.InstanceOf:
            inner = self.expr(e.expr)
            t = e.type
            instanceof_value = self.interp.instanceof_value
            names = self.names
            return lambda frame: instanceof_value(
                inner(frame), t, _RegView(names, frame)
            )
        return super().expr(e)

    # ------------------------------------------------------------------
    # specialized field access
    # ------------------------------------------------------------------

    def _field_read(self, e: ast.FieldGet) -> ExprFn:
        obj = self.expr(e.obj)
        name = e.name
        interp = self.interp
        spec = self.spec
        get_field = interp.get_field
        if not interp.sharing:
            # Non-sharing modes: a direct slot hit or the generic path
            # (which also owns the unknown-field diagnostics and the
            # spilled ``extra`` keys of unchecked java-mode programs).
            site: List[Any] = [None, None]  # view path, slot index

            def read_plain(frame: List[Any]):
                o = obj(frame)
                if o.__class__ is not Ref:
                    return get_field(o, name)
                vp = o.view.path
                if site[0] != vp:
                    cspec = spec.class_spec(vp)
                    site[0] = vp
                    site[1] = cspec.slot_of.get(name)
                i = site[1]
                if i is None:
                    return get_field(o, name)
                v = o.inst.slots[i]
                if v is ABSENT:
                    return get_field(o, name)
                return v

            return read_plain
        adapt = interp._adapt
        retarget_dyn = interp._retarget_type
        rtclass = interp.loader.rtclass
        # view path, slot index, read plan — monomorphic per-site cache
        site = [None, -1, None]

        def read_shared(frame: List[Any]):
            o = obj(frame)
            if o.__class__ is not Ref:
                return get_field(o, name)
            view = o.view
            if TRACER.enabled:
                TRACER.count("mask.check")
            if PROFILER.enabled:
                PROFILER.mask_hit()
            if name in view.masks:
                if TRACER.enabled:
                    TRACER.event(
                        "mask.blocked", field=name, view=path_str(view.path)
                    )
                raise UninitializedFieldError(
                    f"field {name!r} is masked in view {view!r}"
                )
            vp = view.path
            if site[0] != vp:
                cspec = spec.class_spec(vp)
                i = cspec.slot_of.get(name)
                if i is None:
                    raise JnsRuntimeError(
                        f"no field {name!r} on {path_str(vp)}"
                    )
                site[0], site[1], site[2] = vp, i, cspec.read_plan.get(name)
            v = o.inst.slots[site[1]]
            if v is ABSENT:
                # uninitialized duplicated field: take the full generic
                # read (sharing-group fallback + its diagnostics)
                return get_field(o, name)
            plan = site[2]
            if plan is None or v.__class__ is not Ref:
                return v
            tag = plan[0]
            if tag == 0:  # PLAN_NOOP
                w = v.view
                if w.path in plan[1] and not w.masks:
                    if PROFILER.enabled:
                        PROFILER.view_hit()
                    return v
                return adapt(v, plan[2])
            if tag == 1:  # PLAN_ADAPT
                return adapt(v, plan[1])
            # PLAN_DYNAMIC: target depends on runtime state
            target = retarget_dyn(rtclass(vp), name, o)
            if target is not None:
                return adapt(v, target)
            return v

        return read_shared

    def _field_store(self, target: ast.FieldGet) -> Callable[[List[Any], Any], None]:
        obj = self.expr(target.obj)
        name = target.name
        interp = self.interp
        spec = self.spec
        set_field = interp.set_field
        if not interp.sharing:
            site: List[Any] = [None, None]

            def store_plain(frame: List[Any], value: Any) -> None:
                o = obj(frame)
                if o.__class__ is not Ref:
                    set_field(o, name, value)  # raises the generic errors
                    return
                vp = o.view.path
                if site[0] != vp:
                    cspec = spec.class_spec(vp)
                    site[0] = vp
                    site[1] = cspec.slot_of.get(name)
                i = site[1]
                if i is None:
                    set_field(o, name, value)  # unknown name: extra dict
                    return
                o.inst.slots[i] = value

            return store_plain
        from ..lang.types import View

        site = [None, -1]

        def store_shared(frame: List[Any], value: Any) -> None:
            o = obj(frame)
            if o.__class__ is not Ref:
                set_field(o, name, value)
                return
            view = o.view
            vp = view.path
            if site[0] != vp:
                cspec = spec.class_spec(vp)
                i = cspec.slot_of.get(name)
                if i is None:
                    raise JnsRuntimeError(
                        f"no field {name!r} on {path_str(vp)}"
                    )
                site[0], site[1] = vp, i
            o.inst.slots[site[1]] = value
            if name in view.masks:
                # R-SET removes the mask (see Interp.set_field)
                if TRACER.enabled:
                    TRACER.event(
                        "mask.removed", field=name, view=path_str(vp)
                    )
                o.view = View(vp, view.masks - {name})

        return store_shared

    # ------------------------------------------------------------------
    # devirtualized calls
    # ------------------------------------------------------------------

    def _static_view_target(self, target):
        """``(evaled type, no-op source path set)`` when the view-change
        target is non-dependent and statically evaluable, else ``None``
        (fall back to per-call evaluation over a ``_RegView``)."""
        if T.paths_in(target):
            return None
        from ..lang.classtable import JnsError, ResolveError

        def _no_paths(p):
            raise ResolveError(f"unexpected dependent path {'.'.join(p)}")

        try:
            evaled = self.interp.table.eval_type(target, _no_paths)
        except (ResolveError, JnsError):
            return None
        return evaled, self.spec.noop_view_paths(evaled)

    def _devirt_call(self, e: ast.Call) -> Optional[ExprFn]:
        """Statically bind the call when the method name is sealed in the
        locally closed world — or, failing that, monomorphic for the
        receiver's checker-annotated static type.  The receiver guard
        keeps the binding sound on unchecked programs: receivers outside
        the proven path set take the generic path (which raises the usual
        no-method error)."""
        target = self.spec.static_target_for(
            e.name, getattr(e.obj, "rtype", None)
        )
        if target is None:
            return None
        owner, decl, valid = target
        name = e.name
        obj = self.expr(e.obj)
        args = tuple(self.expr(a) for a in e.args)
        self.spec.note_devirtualized()
        interp = self.interp
        label = path_str(owner) + "." + name
        invoke = interp._invoke_spec
        call = interp.call_method
        cbox: List[Any] = [None]  # compiled body, resolved on first call

        def run_devirt(frame: List[Any]):
            receiver = obj(frame)
            if receiver is None:
                raise NullDereference(f"null dereference calling {name!r}")
            if receiver.__class__ is not Ref:
                raise JnsRuntimeError(f"cannot call {name!r} on {receiver!r}")
            if receiver.view.path in valid:
                if TRACER.enabled:
                    TRACER.count("dispatch.devirt_hit")
                return invoke(
                    owner, decl, label, cbox, receiver, name,
                    [a(frame) for a in args],
                )
            return call(receiver, name, [a(frame) for a in args])

        return run_devirt
