"""Run-time values for the J&s interpreter.

An object is represented the way Section 6.3 describes the J&s
implementation: a level of indirection separates the *instance* (the
representative storage collecting all field copies, including duplicated
unshared fields) from the *reference object* pairing it with a view.

``Instance.fields`` is keyed by ``(owner_path, field_name)`` where
``owner_path`` is the ``fclass`` of the field for the writing view — this
realizes the heap of the calculus, whose domain is tuples ⟨l, P, f⟩.
``Instance.view_refs`` memoizes one reference object per view class
(Section 6.3's memoized view changes).

:class:`SlottedInstance` is the specialized representation built by
:mod:`repro.runtime.specialize`: the same heap keys, but laid out as a
flat list indexed by a per-sharing-group :class:`~repro.runtime.specialize.Layout`
computed ahead of time (one slot per ``fclass``-distinct field copy, so
duplicated/masked fields from Section 6.3 keep separate storage).  Both
representations answer ``load``/``store`` on heap keys so the generic
interpreter entry points work on either.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from ..lang.classtable import JnsError
from ..lang.types import Path, Type, View

#: Sentinel for "this heap key holds no value".  Slots of a
#: :class:`SlottedInstance` are initialized to it (reads of an ABSENT
#: slot take the duplicated-field fallback path, exactly like a missing
#: dict key on :class:`Instance`), and ``load`` returns it for unmapped
#: keys.  Never flows into J&s programs as a value.
ABSENT: Any = object()


class JnsRuntimeError(JnsError):
    """A run-time failure of an executing J&s program."""

    code = "JNS-RUN-000"


class NullDereference(JnsRuntimeError):
    code = "JNS-RUN-001"


class UninitializedFieldError(JnsRuntimeError):
    """A masked/duplicated field was read before being initialized in the
    current view's family.  The static masked-type discipline prevents
    this; the runtime check makes the guarantee observable in tests."""

    code = "JNS-RUN-002"


class JnsFailure(JnsRuntimeError):
    """Raised by the Sys.fail native."""

    code = "JNS-RUN-008"


class Instance:
    """The shared storage of one J&s object (all views point here)."""

    __slots__ = ("fields", "created_as", "view_refs")

    def __init__(self, created_as: Path) -> None:
        self.created_as = created_as
        self.fields: Dict[Tuple[Path, str], Any] = {}
        self.view_refs: Dict[Path, "Ref"] = {}

    def __repr__(self) -> str:
        return f"<instance of {'.'.join(self.created_as)} at {id(self):#x}>"

    def load(self, key: Any) -> Any:
        return self.fields.get(key, ABSENT)

    def store(self, key: Any, value: Any) -> None:
        self.fields[key] = value


class SlottedInstance:
    """Specialized object storage: a flat slot list over a fixed layout.

    ``slots[i]`` holds the value of the heap key ``layout.keys[i]``; keys
    outside the layout (possible only in the non-sharing modes, where
    writes are unchecked) spill into the lazily-created ``extra`` dict.
    The ``__repr__`` matches :class:`Instance` so diagnostics are
    identical across backends (up to the object address)."""

    __slots__ = ("created_as", "view_refs", "layout", "slots", "extra")

    def __init__(self, created_as: Path, layout: Any) -> None:
        self.created_as = created_as
        self.view_refs: Dict[Path, "Ref"] = {}
        self.layout = layout
        self.slots: list = [ABSENT] * layout.nslots
        self.extra: Optional[Dict[Any, Any]] = None

    def __repr__(self) -> str:
        return f"<instance of {'.'.join(self.created_as)} at {id(self):#x}>"

    def load(self, key: Any) -> Any:
        i = self.layout.index.get(key)
        if i is None:
            extra = self.extra
            return extra.get(key, ABSENT) if extra is not None else ABSENT
        return self.slots[i]

    def store(self, key: Any, value: Any) -> None:
        i = self.layout.index.get(key)
        if i is None:
            extra = self.extra
            if extra is None:
                extra = self.extra = {}
            extra[key] = value
        else:
            self.slots[i] = value


class Ref:
    """A reference object: heap location + view (Section 2.3)."""

    __slots__ = ("inst", "view")

    def __init__(self, inst: Instance, view: View) -> None:
        self.inst = inst
        self.view = view

    def __repr__(self) -> str:
        return f"<ref {self.view!r} -> {self.inst!r}>"


def default_value(t: Type) -> Any:
    """The Java-style default for an uninitialized field of type ``t``."""
    from ..lang import types as T

    p = t.pure()
    if p == T.INT:
        return 0
    if p == T.DOUBLE:
        return 0.0
    if p == T.BOOLEAN:
        return False
    return None
