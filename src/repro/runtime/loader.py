"""The run-time "classloader" (Section 6.2).

The paper's implementation synthesizes classes for implicit J&s classes
lazily at run time with a custom classloader, and this caching is what
separates the slow J& [31] implementation from the fast classloader-based
one in Table 1.  Here the loader lazily builds one :class:`RTClass`
record per class path (per *view* in J&s mode): a resolved dispatch table,
field layout with ``fclass`` storage keys, field initializer schedule, and
the per-field view-retargeting plan used for lazy implicit view changes.

``cached=False`` reproduces the J& [31] configuration: every dispatch and
field access recomputes its lookup from the class table.

The ahead-of-time specializer (:mod:`repro.runtime.specialize`) consumes
these records: ``field_slot`` supplies the heap keys that the slotted
layouts number, ``init_schedule`` becomes the slot-indexed initializer
plan, and ``retarget`` seeds the per-field read plans.  Specialization
therefore requires a cached loader (it is disabled in ``jx`` mode).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..lang import types as T
from ..lang.classtable import ClassTable, ResolveError, path_str
from ..lang.queries import MISS, QueryEngine
from ..lang.types import Path, Type
from ..obs import TRACER
from ..source import ast


class RTClass:
    """Synthesized run-time information for one class (one view)."""

    __slots__ = (
        "path",
        "vtable",
        "field_slot",
        "field_decl",
        "init_schedule",
        "retarget",
        "retarget_eval",
        "ctors",
        "is_abstract",
    )

    def __init__(self, path: Path) -> None:
        self.path = path
        #: method name -> (owner path, MethodDecl)
        self.vtable: Dict[str, Tuple[Path, ast.MethodDecl]] = {}
        #: field name -> fclass owner path (heap key component)
        self.field_slot: Dict[str, Path] = {}
        #: field name -> (owner path, FieldDecl)
        self.field_decl: Dict[str, Tuple[Path, ast.FieldDecl]] = {}
        #: initializers, base classes first
        self.init_schedule: List[Tuple[Path, ast.FieldDecl]] = []
        #: field name -> declared type if reads may need a view retarget
        self.retarget: Dict[str, Type] = {}
        #: field name -> evaluated target type (memoized when this-only)
        self.retarget_eval: Dict[str, Type] = {}
        #: arity -> (owner, CtorDecl)
        self.ctors: Dict[int, Optional[Tuple[Path, ast.CtorDecl]]] = {}
        self.is_abstract = False


class Loader:
    def __init__(self, table: ClassTable, cached: bool = True, sharing: bool = True):
        self.table = table
        self.cached = cached
        self.sharing = sharing  # J&s mode: fclass keys + view retargeting
        self.queries = QueryEngine("loader")
        self._q_rtclass = self.queries.query("rtclass")
        table.add_edit_listener(self._on_table_edit)

    def _on_table_edit(self, notice) -> None:
        """Per-class eviction on an incremental splice: a synthesized
        runtime class embeds member declarations from every ancestor, so
        the affected set (edited classes plus their subclasses) is
        exactly what must re-synthesize."""
        cache = self._q_rtclass.table
        for path in notice.affected:
            cache.pop(path, None)

    def rtclass(self, path: Path) -> RTClass:
        if not self.cached:
            # The J& [31] configuration: no classloader caching at all —
            # bypass the query layer entirely so the mode stays honest
            # (no hits, no stored classes) regardless of the global flag.
            return self._synthesize(path)
        rtc = self._q_rtclass.get(path)
        if rtc is not MISS:
            return rtc
        return self._q_rtclass.put(path, self._synthesize(path))

    def _synthesize(self, path: Path) -> RTClass:
        # jx mode re-synthesizes on every dispatch, so the tracing guard
        # must stay a single branch on the disabled path.
        if not TRACER.enabled:
            return self._synthesize_impl(path)
        with TRACER.span("load", unit=path_str(path)):
            return self._synthesize_impl(path)

    def _synthesize_impl(self, path: Path) -> RTClass:
        table = self.table
        rtc = RTClass(path)
        info = table.explicit.get(path)
        if info is not None:
            rtc.is_abstract = info.decl.abstract
        for name in table.all_method_names(path):
            found = table.find_method(path, name)
            if found is not None:
                rtc.vtable[name] = found
        fields = table.all_fields(path)
        for owner, decl in fields:
            slot = table.fclass(path, decl.name) if self.sharing else path[:0]
            rtc.field_slot[decl.name] = slot
            rtc.field_decl[decl.name] = (owner, decl)
            if self.sharing and isinstance(decl.type, T.Type):
                if T.is_reference_type(decl.type) and T.paths_in(decl.type):
                    # a view-dependent reference field: reads may require a
                    # lazy implicit view change (Section 6.3)
                    rtc.retarget[decl.name] = decl.type
        rtc.init_schedule = list(reversed(fields))
        return rtc

    def find_ctor(self, rtc: RTClass, argc: int):
        if self.cached and argc in rtc.ctors:
            return rtc.ctors[argc]
        found = self.table.find_ctor(rtc.path, argc)
        if self.cached:
            rtc.ctors[argc] = found
        return found
