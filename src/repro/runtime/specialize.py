"""Ahead-of-time runtime specialization (the translation-style backend).

The paper's implementation does not interpret J&s — it *translates* it to
Java bytecode (Section 6), with Section 6.3 describing an object layout
engineered so view changes are cheap and shared field access is direct.
This module is the analogous ahead-of-time pass for the Python substrate.
It runs after loading and before execution, and feeds three
specializations consumed by :class:`~repro.runtime.compiler.RegisterCompiler`
and the interpreter's specialized allocation/call paths:

1. **Slotted object layouts** — for each runtime class, a fixed
   field→integer-slot table over the class's *sharing group*: one slot
   per ``fclass``-distinct field copy (shared fields collapse onto one
   slot; duplicated unshared/masked fields keep one slot per family,
   Section 6.3).  Instances become flat lists
   (:class:`~repro.runtime.values.SlottedInstance`) instead of
   tuple-keyed dicts.
2. **Read plans** — per view-dependent reference field, the statically
   evaluated retarget type plus the set of view classes for which the
   lazy implicit view change is provably a no-op (SH-REFL over the
   locally closed world), so those reads skip the runtime ``view`` call.
3. **Sealed-family devirtualization** — method names whose dispatch is
   sealed in the locally closed world (the same SH-CLS enumeration the
   sharing checker relies on) resolve to a single declaration; call
   sites bind it statically behind a membership guard and fall back to
   the generic path (and its inline caches) otherwise.

All whole-program analyses (slot universes, sealed targets, conformance
sets) live on the :class:`~repro.lang.classtable.ClassTable` query
engine, so they amortize across every interpreter sharing the table;
this class only assembles the per-interpreter :class:`ClassSpec` records
(which embed compiled initializers and mode-dependent layouts).

Escape hatch: ``repro run --backend specialized`` keeps this pass but
skips the codegen tier above it (:mod:`repro.runtime.codegen`), and
``--backend compiled``/``walker`` (or ``Program.interp(backend=...)``;
``--no-specialize`` survives as a deprecated alias for
``--backend compiled``) restore the unspecialized backends.  The
four-way differential test locks the semantics.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..lang import types as T
from ..lang.classtable import JnsError, ResolveError
from ..lang.queries import MISS, QueryEngine
from ..lang.types import Path, Type, View
from ..obs import TRACER
from .loader import RTClass
from .values import default_value

#: Read-plan tags (first element of the plan tuple).
PLAN_NOOP = 0  #: statically evaluated target; elide when view in noop set
PLAN_ADAPT = 1  #: statically evaluated target with masks; always adapt
PLAN_DYNAMIC = 2  #: target depends on runtime state; evaluate per read


class Layout:
    """A fixed heap-key → slot-index numbering shared by every class in
    one sharing group (the keys are sorted, so all members compute the
    identical numbering independently)."""

    __slots__ = ("keys", "index", "nslots")

    def __init__(self, keys: Tuple[Any, ...]) -> None:
        self.keys = keys
        self.index: Dict[Any, int] = {k: i for i, k in enumerate(keys)}
        self.nslots = len(keys)

    def __repr__(self) -> str:
        return f"<Layout {self.nslots} slots>"


class ClassSpec:
    """Specialized per-class execution plan: the slot layout, this view's
    name→slot mapping, the field-read retarget plans, and the initializer
    schedule in slot form."""

    __slots__ = ("path", "layout", "slot_of", "read_plan", "init_plan")

    def __init__(
        self,
        path: Path,
        layout: Layout,
        slot_of: Dict[str, int],
        read_plan: Dict[str, Tuple],
        init_plan: List[Tuple[int, Any, Any]],
    ) -> None:
        self.path = path
        self.layout = layout
        self.slot_of = slot_of
        self.read_plan = read_plan
        self.init_plan = init_plan


class Specializer:
    """Assembles and caches :class:`ClassSpec` records for one
    interpreter, and answers the devirtualization query for its compiled
    call sites.  Counters (``slots_built`` / ``sites_devirtualized`` /
    ``views_elided``) are maintained unconditionally; the matching
    ``specialize.*`` tracer counters fire only while tracing is on."""

    def __init__(self, interp) -> None:
        self.interp = interp
        self.table = interp.table
        self.sharing = interp.sharing
        self.queries = QueryEngine("specialize")
        self._q_spec = self.queries.query("class_spec")
        self._q_layout = self.queries.query("layout")
        self._checker = None  # lazy SharingChecker for no-op view sets
        self.slots_built = 0
        self.sites_devirtualized = 0
        self.views_elided = 0

    def invalidate_classes(self, affected) -> None:
        """Drop the :class:`ClassSpec` of each affected class (called on
        an incremental splice via ``Interp._on_table_edit``).  Layouts
        are derived purely from their key tuple, so they can never go
        stale and stay cached."""
        cache = self._q_spec.table
        for path in affected:
            cache.pop(path, None)

    # ------------------------------------------------------------------
    # entry point: run after loading, before execution
    # ------------------------------------------------------------------

    def specialize_program(self) -> None:
        """Precompute every class spec (and thereby every layout and read
        plan) for the program's locally closed world.  Classes whose
        sharing state cannot be resolved are skipped — the lazy per-class
        path re-raises the same error at the access point the generic
        backend would."""
        if not TRACER.enabled:
            self._specialize_all()
            return
        with TRACER.span("specialize", mode=self.interp.mode):
            self._specialize_all()

    def _specialize_all(self) -> None:
        for path in self.table.all_class_paths():
            try:
                self.class_spec(path)
            except JnsError:
                pass

    # ------------------------------------------------------------------
    # per-class specs
    # ------------------------------------------------------------------

    def class_spec(self, path: Path) -> ClassSpec:
        spec = self._q_spec.get(path)
        if spec is not MISS:
            return spec
        return self._q_spec.put(path, self._build_spec(path))

    def _build_spec(self, path: Path) -> ClassSpec:
        rtc = self.interp.loader.rtclass(path)
        if self.sharing:
            keys = self.table.slot_universe(path)
        else:
            # Non-sharing modes key storage by plain field name; the
            # layout is just this class's own field list.
            keys = tuple(name for name in rtc.field_slot)
        layout = self._layout(keys)
        if self.sharing:
            slot_of = {
                name: layout.index[(slot, name)]
                for name, slot in rtc.field_slot.items()
            }
        else:
            slot_of = {name: layout.index[name] for name in rtc.field_slot}
        read_plan = self._read_plans(rtc) if self.sharing else {}
        init_plan: List[Tuple[int, Any, Any]] = []
        for _, decl in rtc.init_schedule:
            idx = slot_of[decl.name]
            if decl.init is not None:
                init_plan.append((idx, decl, None))
            else:
                init_plan.append((idx, None, default_value(decl.type)))
        return ClassSpec(path, layout, slot_of, read_plan, init_plan)

    def _layout(self, keys: Tuple[Any, ...]) -> Layout:
        """One Layout object per distinct key tuple — every member of a
        sharing group shares the same object (the universes are sorted,
        hence equal)."""
        layout = self._q_layout.get(keys)
        if layout is not MISS:
            return layout
        layout = Layout(keys)
        self.slots_built += layout.nslots
        if TRACER.enabled:
            TRACER.count("specialize.slots_built", layout.nslots)
        return self._q_layout.put(keys, layout)

    def _read_plans(self, rtc: RTClass) -> Dict[str, Tuple]:
        """Static evaluation of each view-dependent reference field's
        retarget type, mirroring ``Interp._retarget_type``: this-only
        types evaluate against the view class; evaluation failure means
        no adapt is ever applied (the generic backend memoizes ``None``
        for exactly these); anything mentioning other paths stays
        dynamic."""
        plans: Dict[str, Tuple] = {}
        for name, decl_type in rtc.retarget.items():
            paths = T.paths_in(decl_type)
            if not all(p == ("this",) for p in paths):
                plans[name] = (PLAN_DYNAMIC,)
                continue
            this_view = View(rtc.path)
            try:
                evaled: Optional[Type] = self.table.eval_type(
                    decl_type, lambda p: this_view
                )
            except (ResolveError, JnsError):
                evaled = None
            if evaled is None:
                continue  # reads never adapt; omit the plan entirely
            if evaled.masks:
                plans[name] = (PLAN_ADAPT, evaled)
            else:
                noops = self._noop_paths(evaled)
                plans[name] = (PLAN_NOOP, noops, evaled)
                self.views_elided += 1
                if TRACER.enabled:
                    TRACER.count("specialize.views_elided")
        return plans

    def _noop_paths(self, target: Type):
        if self._checker is None:
            from ..lang.sharing import SharingChecker

            self._checker = SharingChecker(self.table)
        return self._checker.noop_view_paths(target)

    def noop_view_paths(self, target: Type):
        """Public wrapper over the sharing checker's no-op view set: the
        source view paths from which an unmasked adapt to ``target`` is
        provably the identity.  Used by the compiled backends to elide
        explicit view changes and call-receiver adapters per site."""
        return self._noop_paths(target)

    # ------------------------------------------------------------------
    # devirtualization
    # ------------------------------------------------------------------

    def static_target(self, name: str):
        """Unique dispatch target for ``name`` across the locally closed
        world, or ``None`` when the name is polymorphic (the call site
        keeps its inline cache).  The underlying enumeration is memoized
        on the class table."""
        return self.table.sealed_method_target(name)

    def static_target_for(self, name: str, rtype: Optional[Type]):
        """Like :meth:`static_target`, but additionally devirtualizes
        names that are monomorphic *for this receiver's static type* even
        when polymorphic globally: when the checker annotated the
        receiver expression with a non-dependent class type, every
        conforming path in the locally closed world resolving ``name`` to
        one declaration seals the site just as well (the same membership
        guard keeps it sound on unchecked receivers)."""
        target = self.table.sealed_method_target(name)
        if target is not None or rtype is None:
            return target
        if T.paths_in(rtype):
            return None  # dependent receiver type: no static path set
        pure = rtype.pure()
        if isinstance(pure, (T.PrimType, T.ArrayType)):
            return None
        try:
            paths = self.table.conforming_paths(rtype)
        except (ResolveError, JnsError):
            return None
        if not paths:
            return None
        return self.table.monomorphic_method_target(name, paths)

    def note_devirtualized(self) -> None:
        """Called by the compiler when it statically binds a call site."""
        self.sites_devirtualized += 1
        if TRACER.enabled:
            TRACER.count("specialize.sites_devirtualized")

    def stats(self) -> Dict[str, int]:
        return {
            "slots_built": self.slots_built,
            "sites_devirtualized": self.sites_devirtualized,
            "views_elided": self.views_elided,
        }
