"""The J&s interpreter.

One evaluator, four execution modes reproducing the four implementations
of Table 1 (Section 7.1):

* ``java``  — the flat-Java baseline: fields keyed by plain name, method
  dispatch through a prebuilt per-class vtable, no family or view
  machinery at run time.
* ``jx``    — J& as described in [31], *without* the classloader caches:
  dispatch tables, field layouts, and constructor lookups are re-derived
  from the class table on every use.
* ``jx_cl`` — J& with the custom classloader (Section 6.2): run-time
  class records are synthesized lazily and cached.
* ``jns``   — full J&s: reference objects carry views (Section 6.3);
  method dispatch and duplicated-field selection are view-dependent
  (``fclass`` heap keys); reads of view-dependent reference fields apply
  lazy, memoized implicit view changes; explicit ``(view T)e`` is
  supported.

Only ``jns`` permits sharing features; the other modes reject view
changes, matching the paper's setup where the jolden programs "do not use
the new extensibility features of J&s".
"""

from __future__ import annotations

import math
import sys
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..errors import JnsResourceError
from ..lang import types as T
from ..obs import TRACER
from ..profiler import PROFILER
from ..lang.classtable import ClassTable, JnsError, ResolveError, path_str
from ..lang.queries import MISS, CacheStats, QueryEngine, collect_stats
from ..lang.types import ClassType, Path, Type, View
from ..source import ast
from .loader import Loader, RTClass
from .values import (
    ABSENT,
    Instance,
    JnsFailure,
    JnsRuntimeError,
    NullDereference,
    Ref,
    SlottedInstance,
    UninitializedFieldError,
    default_value,
)

MODES = ("java", "jx", "jx_cl", "jns")

#: Execution backends, slowest to fastest.  ``walker`` tree-walks,
#: ``compiled`` builds Python closure trees over dict frames,
#: ``specialized`` adds AOT specialization with register-list frames,
#: ``codegen`` emits and ``compile()``s real Python source per
#: specialized method body (the default for ``repro run``).
BACKENDS = ("walker", "compiled", "specialized", "codegen")

#: "No value at this heap key" — shared with the slotted representation so
#: the generic accessors treat an ABSENT slot exactly like a missing dict
#: key.
_MISSING = ABSENT

#: Default J&s call-depth budget.  Deep enough for every jolden workload
#: (treeadd/bisort recurse to tree height; the deepest tier-1 program
#: recurses 2000 calls) while still catching runaway recursion long
#: before the Python stack would.
DEFAULT_MAX_DEPTH = 4000

#: Python frames consumed per J&s call in the tree-walking evaluator
#: (call_method -> exec_stmt -> eval chains), with slack for expression
#: nesting inside each body.
_FRAMES_PER_CALL = 12

#: Ceiling for the *temporary* recursion-limit raise during ``run()``:
#: matches the old global limit; anything deeper trips the
#: RecursionError safety net (JNS-RES-004) instead of the C stack.
_MAX_PY_RECURSION = 100000


class _Return(Exception):
    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


def _jdiv(a, b):
    """Java division: ints truncate toward zero."""
    if isinstance(a, int) and isinstance(b, int):
        if b == 0:
            raise JnsRuntimeError("integer division by zero")
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    if b == 0:
        return math.inf if a > 0 else (-math.inf if a < 0 else math.nan)
    return a / b


def _jmod(a, b):
    if isinstance(a, int) and isinstance(b, int):
        if b == 0:
            raise JnsRuntimeError("integer modulo by zero")
        return a - _jdiv(a, b) * b
    return math.fmod(a, b)


def to_jstring(v: Any) -> str:
    """Java-flavored string conversion for Sys.print and ``+``."""
    if v is None:
        return "null"
    if v is True:
        return "true"
    if v is False:
        return "false"
    if isinstance(v, float):
        if v == int(v) and abs(v) < 1e15 and not math.isinf(v):
            return f"{v:.1f}"
        return repr(v)
    if isinstance(v, Ref):
        return f"{path_str(v.view.path)}@{id(v.inst) & 0xFFFFFF:x}"
    if isinstance(v, list):
        return "[" + ", ".join(to_jstring(x) for x in v) + "]"
    return str(v)


class Interp:
    """Evaluates a resolved J&s program."""

    def __init__(
        self,
        table: ClassTable,
        mode: str = "jns",
        echo: bool = False,
        memoize_views: bool = True,
        eager_views: bool = False,
        compiled: bool = False,
        specialized: bool = False,
        backend: Optional[str] = None,
        max_steps: Optional[int] = None,
        max_depth: Optional[int] = None,
        line_profile: bool = False,
    ) -> None:
        """``memoize_views=False`` disables the per-instance reference-object
        memoization of Section 6.3 (ablation D1); ``eager_views=True``
        propagates an explicit view change through all reachable shared
        fields immediately instead of lazily at access time (ablation D3);
        ``compiled=True`` translates method bodies to Python closures once
        instead of tree-walking them (the Section 6 compilation strategy
        on the Python substrate).

        ``specialized=True`` additionally runs the ahead-of-time
        specialization pass of :mod:`repro.runtime.specialize` (slotted
        object layouts, register frames, sealed-family devirtualization)
        and implies ``compiled``.  It is ignored in ``jx`` mode, whose
        point is the *absence* of run-time precomputation.

        ``backend`` is the unified selector (one of :data:`BACKENDS`); it
        overrides the legacy ``compiled``/``specialized`` booleans when
        given.  ``codegen`` emits and ``compile()``s real Python source
        per specialized method body (see :mod:`repro.runtime.codegen`)
        and implies ``specialized``.

        ``max_steps`` bounds the number of expression evaluations (fuel;
        ``None`` = unlimited); ``max_depth`` bounds the J&s call depth.
        Exhausting either raises :class:`JnsResourceError` carrying the
        J&s call stack, instead of hitting Python's recursion limit."""
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
        if backend is not None:
            if backend not in BACKENDS:
                raise ValueError(
                    f"unknown backend {backend!r}; expected one of {BACKENDS}"
                )
            compiled = backend in ("compiled", "specialized", "codegen")
            specialized = backend in ("specialized", "codegen")
        self.table = table
        self.mode = mode
        self.sharing = mode == "jns"
        self.echo = echo
        self.memoize_views = memoize_views
        self.eager_views = eager_views
        self.specialized = bool(specialized) and mode != "jx"
        self.codegen = backend == "codegen" and self.specialized
        self.compiled = bool(compiled) or self.specialized
        #: the resolved backend name (jx mode degrades codegen/specialized
        #: to compiled, mirroring the ``specialized`` docstring above)
        self.backend = (
            "codegen" if self.codegen
            else "specialized" if self.specialized
            else "compiled" if self.compiled
            else "walker"
        )
        #: deterministic per-jns-line profiling (see repro.profiler):
        #: compilers plant statement hooks, the walker swaps in a
        #: counting exec_stmt — unprofiled interpreters pay nothing
        self.line_profile = bool(line_profile)
        self.spec = None
        self._compiler = None
        self._cg = None
        self.output: List[str] = []
        self.loader = Loader(table, cached=(mode != "jx"), sharing=self.sharing)
        if self.specialized:
            from .specialize import Specializer

            self.spec = Specializer(self)
        # Run-time query caches (see lang/queries.py).  ``dispatch`` is
        # the (view path, method name) inline cache that makes steady-state
        # dispatch a single dict hit; ``call_site`` counts the compiler's
        # per-call-site monomorphic inline caches.  jx mode (uncached
        # loader) bypasses all of them to reproduce the J& [31] row of
        # Table 1.
        self.queries = QueryEngine("interp")
        q = self.queries.query
        self._q_dispatch = q("dispatch")
        self._q_body = q("body")
        self._q_init = q("init")
        self._q_retarget = q("retarget")
        self._q_conforms = q("conforms")
        self._q_site = q("call_site")
        # Legacy aliases: the underlying dicts of the queries (cleared in
        # place, never replaced), kept for introspection/tests.
        self._body_cache = self._q_body.table
        self._init_cache = self._q_init.table
        self._retarget_cache = self._q_retarget.table
        self._conforms_cache = self._q_conforms.table
        table.add_edit_listener(self._on_table_edit)
        self._sys = self._build_sys()
        self._max_steps = max_steps
        self._max_depth = DEFAULT_MAX_DEPTH if max_depth is None else max_depth
        self._steps = 0
        self._depth = 0
        #: J&s-level call stack ("A.B.m" frames, deepest last) — attached
        #: to JnsResourceError so resource diagnostics are actionable.
        self.call_stack: List[str] = []
        #: snapshot of the deepest call stack when a RecursionError is
        #: first seen (the stack has unwound by the time run() converts it)
        self._res_stack: Optional[List[str]] = None
        self._eval_dispatch: Dict[type, Callable] = {
            ast.Lit: self._eval_lit,
            ast.This: self._eval_this,
            ast.Var: self._eval_var,
            ast.FieldGet: self._eval_fieldget,
            ast.Call: self._eval_call,
            ast.SysCall: self._eval_sys,
            ast.NewObj: self._eval_new,
            ast.NewArray: self._eval_newarray,
            ast.Index: self._eval_index,
            ast.Unary: self._eval_unary,
            ast.Binary: self._eval_binary,
            ast.Cond: self._eval_cond,
            ast.Cast: self._eval_cast,
            ast.ViewChange: self._eval_view,
            ast.InstanceOf: self._eval_instanceof,
            ast.Assign: self._eval_assign,
        }
        if max_steps is not None:
            # Shadow the unlimited fast path with the counting evaluator
            # only when a budget is set, so fuel tracking costs nothing
            # on ordinary runs.
            self.eval = self._eval_counting  # type: ignore[method-assign]
        if self.line_profile:
            # Same zero-overhead trick for the walker tier's line
            # profiler: recursion goes through the bound attribute, so
            # every executed statement takes one hit.
            self.exec_stmt = self._exec_stmt_profiled  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------

    def run(self, entry: str = "Main.main", args: Tuple = ()) -> Any:
        """Instantiate the entry class with a no-arg constructor and invoke
        the entry method (e.g. ``"Main.main"``).

        The Python recursion limit is raised only for the duration of the
        run (sized to ``max_depth``) and restored afterwards; a
        RecursionError that still escapes the depth guard is converted to
        a :class:`JnsResourceError` rather than leaking a Python-level
        crash."""
        *cls_parts, method = entry.split(".")
        path = tuple(cls_parts)
        if not self.table.class_exists(path):
            raise ResolveError(f"no entry class {'.'.join(cls_parts)}")
        self._steps = 0
        self._depth = 0
        self.call_stack = []
        self._res_stack = None
        if self.specialized:
            # Ahead-of-time: precompute layouts, read plans, and sealed
            # targets for the locally closed world before execution.
            self.spec.specialize_program()
        if not TRACER.enabled:
            ref = self.new_instance(path, ())
            return self.call_method(ref, method, list(args))
        with TRACER.span("run", unit=entry, mode=self.mode):
            ref = self.new_instance(path, ())
            return self.call_method(ref, method, list(args))

    def reset_budget(self) -> None:
        """Re-arm the resource budget after a ``JnsResourceError`` so the
        interpreter (and its caches) can serve subsequent requests.

        The guard paths already restore the recursion limit and unwind
        ``_depth`` on their ``finally`` edges; what survives a trip is the
        cumulative step counter and the captured crash stack.  Callers
        that treat fuel exhaustion as a recoverable fault (the chaos
        driver, long-lived services) call this between requests."""
        if self._depth != 0:
            raise RuntimeError("reset_budget called while J&s code is running")
        self._steps = 0
        self.call_stack = []
        self._res_stack = None

    def _enter_boundary(self) -> int:
        """Called when execution enters J&s code from the host (depth 0):
        temporarily raises the Python recursion limit so the J&s depth
        guard — not the host stack — is what bounds recursion.  Returns
        the previous limit for the matching ``_exit_boundary``."""
        old_limit = sys.getrecursionlimit()
        needed = min(
            max(old_limit, self._max_depth * _FRAMES_PER_CALL + 2000),
            _MAX_PY_RECURSION,
        )
        self._res_stack = None
        if needed > old_limit:
            sys.setrecursionlimit(needed)
        return old_limit

    def _boundary_resource_error(self) -> JnsResourceError:
        return JnsResourceError(
            "Python recursion limit exceeded; lower max_depth or rewrite "
            "the program iteratively",
            code="JNS-RES-004",
            jns_stack=self._res_stack or [],
        )

    def new_instance(self, path: Path, args: Tuple) -> Ref:
        rtc = self.loader.rtclass(path)
        if rtc.is_abstract:
            raise JnsRuntimeError(f"cannot instantiate abstract class {path_str(path)}")
        if self._depth == 0:
            old_limit = self._enter_boundary()
            try:
                return self._guarded_new(rtc, path, args)
            except RecursionError:
                raise self._boundary_resource_error() from None
            finally:
                sys.setrecursionlimit(old_limit)
        return self._guarded_new(rtc, path, args)

    def _guarded_new(self, rtc: RTClass, path: Path, args: Tuple) -> Ref:
        self._depth += 1
        self.call_stack.append(f"new {path_str(path)}")
        try:
            if self._depth > self._max_depth:
                raise JnsResourceError(
                    f"J&s call depth limit exceeded ({self._max_depth})",
                    code="JNS-RES-002",
                    jns_stack=list(self.call_stack),
                )
            if self.codegen:
                return self._codegen().allocate(rtc, path, args)
            if self.specialized:
                return self._new_instance_spec(rtc, path, args)
            return self._new_instance(rtc, path, args)
        except RecursionError:
            if self._res_stack is None:
                self._res_stack = list(self.call_stack)
            raise
        finally:
            self._depth -= 1
            self.call_stack.pop()

    def _new_instance(self, rtc: RTClass, path: Path, args: Tuple) -> Ref:
        if TRACER.enabled:
            TRACER.count("alloc")
        inst = Instance(path)
        view = View(path)
        ref = Ref(inst, view)
        inst.view_refs[path] = ref
        frame = {"this": ref}
        for owner, decl in rtc.init_schedule:
            slot = rtc.field_slot[decl.name] if self.sharing else None
            key = (slot, decl.name) if self.sharing else decl.name
            if decl.init is not None:
                if self.compiled:
                    inst.fields[key] = self._compiled_init(decl)(frame)
                else:
                    inst.fields[key] = self.eval(decl.init, frame)
            else:
                inst.fields[key] = default_value(decl.type)
        found = self.loader.find_ctor(rtc, len(args))
        if found is None:
            if args:
                raise JnsRuntimeError(
                    f"no {len(args)}-argument constructor for {path_str(path)}"
                )
        else:
            _, ctor = found
            frame = {"this": ref}
            for param, arg in zip(ctor.params, args):
                frame[param.name] = arg
            if self.compiled:
                self._compiled_body(ctor)(frame)
            else:
                try:
                    self.exec_stmt(ctor.body, frame)
                except _Return:
                    pass
        return ref

    def _new_instance_spec(self, rtc: RTClass, path: Path, args: Tuple) -> Ref:
        """Specialized allocation: a :class:`SlottedInstance` over the
        precomputed layout, initializers written straight into their
        slots, constructor run over a register frame."""
        if TRACER.enabled:
            TRACER.count("alloc")
        cspec = self.spec.class_spec(path)
        inst = SlottedInstance(path, cspec.layout)
        view = View(path)
        ref = Ref(inst, view)
        inst.view_refs[path] = ref
        slots = inst.slots
        for idx, decl, default in cspec.init_plan:
            if decl is not None:
                cb = self._compiled_init(decl)
                frame = [ref]
                frame.extend(cb.pad)
                slots[idx] = cb.run(frame)
            else:
                slots[idx] = default
        found = self.loader.find_ctor(rtc, len(args))
        if found is None:
            if args:
                raise JnsRuntimeError(
                    f"no {len(args)}-argument constructor for {path_str(path)}"
                )
        else:
            _, ctor = found
            cb = self._compiled_body(ctor)
            frame = [ref]
            frame.extend(args)
            frame.extend(cb.pad)
            cb.run(frame)
        return ref

    def call_method(self, ref: Ref, name: str, args: List[Any]) -> Any:
        found = self._lookup_method(ref.view.path, name)
        if found is None:
            raise JnsRuntimeError(
                f"no method {name!r} on {path_str(ref.view.path)}"
            )
        owner, decl = found
        return self._invoke(owner, decl, ref, name, args)

    def _invoke(self, owner: Path, decl, ref: Ref, name: str, args: List[Any]) -> Any:
        """Invoke an already-resolved method (lookup done by the caller —
        ``call_method`` or a compiled call site's inline cache)."""
        if decl.body is None:
            raise JnsRuntimeError(
                f"abstract method {path_str(owner)}.{name} called"
            )
        if len(decl.params) != len(args):
            raise JnsRuntimeError(
                f"{name!r} expects {len(decl.params)} arguments, got {len(args)}"
            )
        if self._depth == 0:
            old_limit = self._enter_boundary()
            try:
                return self._guarded_call(owner, decl, ref, name, args)
            except RecursionError:
                raise self._boundary_resource_error() from None
            finally:
                sys.setrecursionlimit(old_limit)
        return self._guarded_call(owner, decl, ref, name, args)

    def _guarded_call(self, owner, decl, ref: Ref, name: str, args: List[Any]) -> Any:
        self._depth += 1
        self.call_stack.append(f"{path_str(owner)}.{name}")
        try:
            if self._depth > self._max_depth:
                raise JnsResourceError(
                    f"J&s call depth limit exceeded ({self._max_depth})",
                    code="JNS-RES-002",
                    jns_stack=list(self.call_stack),
                )
            if self.codegen:
                fn = self._codegen().method_fn(decl, ref.view.path)
                return fn(ref, *args)
            if self.specialized:
                cb = self._compiled_body(decl)
                rframe = [ref]
                rframe.extend(args)
                rframe.extend(cb.pad)
                return cb.run(rframe)
            frame = {"this": ref}
            for param, arg in zip(decl.params, args):
                frame[param.name] = arg
            if self.compiled:
                return self._compiled_body(decl)(frame)
            try:
                self.exec_stmt(decl.body, frame)
            except _Return as r:
                return r.value
            return None
        except RecursionError:
            if self._res_stack is None:
                self._res_stack = list(self.call_stack)
            raise
        finally:
            self._depth -= 1
            self.call_stack.pop()

    def _invoke_spec(
        self, owner: Path, decl, label: str, cbox: List[Any],
        ref: Ref, name: str, args: List[Any],
    ) -> Any:
        """Invoke a statically-bound (devirtualized) method: the call-site
        label and compiled body are precomputed, so a hot call is a guard,
        a frame build, and the closure."""
        if decl.body is None:
            raise JnsRuntimeError(
                f"abstract method {path_str(owner)}.{name} called"
            )
        if len(decl.params) != len(args):
            raise JnsRuntimeError(
                f"{name!r} expects {len(decl.params)} arguments, got {len(args)}"
            )
        cb = cbox[0]
        if cb is None:
            cb = cbox[0] = self._compiled_body(decl)
        if self._depth == 0:
            old_limit = self._enter_boundary()
            try:
                return self._guarded_call_spec(label, cb, ref, args)
            except RecursionError:
                raise self._boundary_resource_error() from None
            finally:
                sys.setrecursionlimit(old_limit)
        return self._guarded_call_spec(label, cb, ref, args)

    def _guarded_call_spec(self, label: str, cb, ref: Ref, args: List[Any]) -> Any:
        """Mirror of ``_guarded_call`` for devirtualized sites (identical
        depth accounting, stack labels, and resource diagnostics)."""
        self._depth += 1
        self.call_stack.append(label)
        try:
            if self._depth > self._max_depth:
                raise JnsResourceError(
                    f"J&s call depth limit exceeded ({self._max_depth})",
                    code="JNS-RES-002",
                    jns_stack=list(self.call_stack),
                )
            frame = [ref]
            frame.extend(args)
            frame.extend(cb.pad)
            return cb.run(frame)
        except RecursionError:
            if self._res_stack is None:
                self._res_stack = list(self.call_stack)
            raise
        finally:
            self._depth -= 1
            self.call_stack.pop()

    def _codegen_call(self, label: str, fn, ref: Ref, args) -> Any:
        """Mirror of ``_guarded_call_spec`` for emitted (codegen) bodies:
        identical depth accounting, stack labels, and resource
        diagnostics, with the frame build replaced by a plain Python
        call.  Only reachable from inside an already-guarded call, so the
        depth-0 boundary handling lives with the entry points."""
        self._depth += 1
        self.call_stack.append(label)
        try:
            if self._depth > self._max_depth:
                raise JnsResourceError(
                    f"J&s call depth limit exceeded ({self._max_depth})",
                    code="JNS-RES-002",
                    jns_stack=list(self.call_stack),
                )
            return fn(ref, *args)
        except RecursionError:
            if self._res_stack is None:
                self._res_stack = list(self.call_stack)
            raise
        finally:
            self._depth -= 1
            self.call_stack.pop()

    def _codegen(self):
        cg = self._cg
        if cg is None:
            from .codegen import CodegenCompiler

            cg = self._cg = CodegenCompiler(self)
        return cg

    def _make_compiler(self):
        if self.specialized:
            from .compiler import RegisterCompiler

            return RegisterCompiler(self)
        from .compiler import BodyCompiler

        return BodyCompiler(self)

    def _on_table_edit(self, notice) -> None:
        """Eviction on an incremental splice.  Compiled bodies and
        initializers key on member-declaration identity, so the retired
        ids are dropped explicitly — a recycled ``id()`` must never hit a
        stale closure.  The coarse-grained caches (dispatch, retargets,
        conformance, inline call sites) embed types and vtable entries
        from the edited classes transitively; they are cheap warm-up
        state, so they clear in place (counters survive)."""
        for i in notice.retired_ids:
            self._body_cache.pop(i, None)
            self._init_cache.pop(i, None)
        if notice.retired_ids or notice.affected:
            # Emitted codegen bodies capture lazily-resolved callee cells
            # from their compiler, so even a body-only graft drops the
            # whole unit (see runtime/codegen.py's eviction note).
            self._cg = None
        if notice.affected:
            self._q_dispatch.table.clear()
            self._retarget_cache.clear()
            self._conforms_cache.clear()
            self._q_site.table.clear()
            if self.spec is not None:
                self.spec.invalidate_classes(notice.affected)
            self._compiler = None

    def _compiled_body(self, decl):
        """Method/constructor body compiled once to Python closures (a
        :class:`~repro.runtime.compiler.CompiledBody` register unit when
        specialized)."""
        fn = self._q_body.get(id(decl))
        if fn is MISS:
            if self._compiler is None:
                self._compiler = self._make_compiler()
            if self.specialized:
                compiled = self._compiler.compile_method(decl)
            else:
                compiled = self._compiler.compile_body(decl.body)
            fn = self._q_body.put(id(decl), compiled)
        return fn

    def _compiled_init(self, decl):
        fn = self._q_init.get(id(decl))
        if fn is MISS:
            if self._compiler is None:
                self._compiler = self._make_compiler()
            if self.specialized:
                compiled = self._compiler.compile_init(decl.init)
            else:
                compiled = self._compiler.expr(decl.init)
            fn = self._q_init.put(id(decl), compiled)
        return fn

    def _lookup_method(self, path: Path, name: str):
        if PROFILER.enabled:
            PROFILER.dispatch_hit()
        # All modes dispatch through the loader; mode differences live in
        # the loader itself (jx re-synthesizes the table on every call).
        # In cached-loader modes the (view path, method name) dispatch
        # query reuses the precomputed vtable entry — steady-state
        # dispatch is one dict hit, no find_method walk.
        if self.loader.cached:
            key = (path, name)
            found = self._q_dispatch.get(key)
            if found is not MISS:
                if TRACER.enabled:
                    TRACER.count("dispatch.hit")
                return found
            if TRACER.enabled:
                TRACER.count("dispatch.miss")
            return self._q_dispatch.put(
                key, self.loader.rtclass(path).vtable.get(name)
            )
        if TRACER.enabled:
            TRACER.count("dispatch.uncached")
        return self.loader.rtclass(path).vtable.get(name)

    def cache_stats(self) -> CacheStats:
        """Snapshot of this interpreter's query caches plus the loader's
        and the class table's (they all serve this run), and the
        specializer's when the specialized backend is active."""
        engines = [self.queries, self.loader.queries, self.table.queries]
        if self.spec is not None:
            engines.append(self.spec.queries)
            if self.spec._checker is not None:
                engines.append(self.spec._checker.queries)
        return collect_stats(engines)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def exec_stmt(self, s: ast.Stmt, frame: Dict[str, Any]) -> None:
        cls = type(s)
        if cls is ast.Block:
            for inner in s.stmts:
                self.exec_stmt(inner, frame)
            return
        if cls is ast.LocalDecl:
            frame[s.name] = (
                self.eval(s.init, frame) if s.init is not None else default_value(s.type)
            )
            return
        if cls is ast.ExprStmt:
            self.eval(s.expr, frame)
            return
        if cls is ast.If:
            if self.eval(s.cond, frame):
                self.exec_stmt(s.then, frame)
            elif s.els is not None:
                self.exec_stmt(s.els, frame)
            return
        if cls is ast.While:
            while self.eval(s.cond, frame):
                try:
                    self.exec_stmt(s.body, frame)
                except _Break:
                    break
                except _Continue:
                    continue
            return
        if cls is ast.For:
            if s.init is not None:
                self.exec_stmt(s.init, frame)
            while s.cond is None or self.eval(s.cond, frame):
                try:
                    self.exec_stmt(s.body, frame)
                except _Break:
                    break
                except _Continue:
                    pass
                if s.update is not None:
                    self.eval(s.update, frame)
            return
        if cls is ast.Return:
            raise _Return(self.eval(s.value, frame) if s.value is not None else None)
        if cls is ast.Break:
            raise _Break()
        if cls is ast.Continue:
            raise _Continue()
        if cls is ast.Empty:
            return
        raise JnsRuntimeError(f"unknown statement {s!r}")

    def _exec_stmt_profiled(self, s: ast.Stmt, frame: Dict[str, Any]) -> None:
        """Installed over ``exec_stmt`` when ``line_profile`` is set:
        counts one statement entry per executed non-block statement,
        which also anchors anonymous profiler events to this line."""
        cls = type(s)
        if cls is not ast.Block and cls is not ast.Empty and s.pos[0]:
            PROFILER.stmt_hit(s.pos[0])
        Interp.exec_stmt(self, s, frame)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def eval(self, e: ast.Expr, frame: Dict[str, Any]) -> Any:
        return self._eval_dispatch[type(e)](e, frame)

    def _eval_counting(self, e: ast.Expr, frame: Dict[str, Any]) -> Any:
        """Fuel-metered evaluation: installed as ``self.eval`` when a step
        budget is configured."""
        self._steps += 1
        if self._steps > self._max_steps:
            raise JnsResourceError(
                f"step budget exhausted ({self._max_steps} steps)",
                code="JNS-RES-001",
                jns_stack=list(self.call_stack),
            )
        return self._eval_dispatch[type(e)](e, frame)

    def _tick(self, weight: int = 1) -> None:
        """Charge ``weight`` fuel from the compiled backend, whose loop
        bodies do not route through :meth:`eval`."""
        if self._max_steps is None:
            return
        self._steps += weight
        if self._steps > self._max_steps:
            raise JnsResourceError(
                f"step budget exhausted ({self._max_steps} steps)",
                code="JNS-RES-001",
                jns_stack=list(self.call_stack),
            )

    def _eval_lit(self, e: ast.Lit, frame):
        return e.value

    def _eval_this(self, e: ast.This, frame):
        return frame["this"]

    def _eval_var(self, e: ast.Var, frame):
        try:
            return frame[e.name]
        except KeyError:
            raise JnsRuntimeError(f"unbound variable {e.name!r}") from None

    # -- fields ---------------------------------------------------------

    def _eval_fieldget(self, e: ast.FieldGet, frame):
        obj = self.eval(e.obj, frame)
        return self.get_field(obj, e.name)

    def get_field(self, obj: Any, name: str) -> Any:
        if obj is None:
            raise NullDereference(f"null dereference reading field {name!r}")
        if isinstance(obj, list):
            if name == "length":
                return len(obj)
            raise JnsRuntimeError(f"arrays have no field {name!r}")
        if not isinstance(obj, Ref):
            if isinstance(obj, str) and name == "length":
                return len(obj)
            raise JnsRuntimeError(f"cannot read field {name!r} of {obj!r}")
        view = obj.view
        inst = obj.inst
        if not self.sharing:
            if self.mode != "java":
                rtc = self.loader.rtclass(view.path)
                if name not in rtc.field_decl:
                    raise JnsRuntimeError(
                        f"no field {name!r} on {path_str(view.path)}"
                    )
            # both representations answer load(); the dict fast path keeps
            # the unspecialized backends free of an extra method call
            if type(inst) is Instance:
                v = inst.fields.get(name, _MISSING)
            else:
                v = inst.load(name)
            if v is _MISSING:
                raise JnsRuntimeError(
                    f"no field {name!r} on {path_str(view.path)}"
                )
            return v
        # J&s mode: fclass-keyed storage + lazy implicit view change
        if TRACER.enabled:
            TRACER.count("mask.check")
        if PROFILER.enabled:
            PROFILER.mask_hit()
        if name in view.masks:
            if TRACER.enabled:
                TRACER.event(
                    "mask.blocked", field=name, view=path_str(view.path)
                )
            raise UninitializedFieldError(
                f"field {name!r} is masked in view {view!r}"
            )
        rtc = self.loader.rtclass(view.path)
        slot = rtc.field_slot.get(name)
        if slot is None:
            raise JnsRuntimeError(f"no field {name!r} on {path_str(view.path)}")
        if type(inst) is Instance:
            v = inst.fields.get((slot, name), _MISSING)
        else:
            v = inst.load((slot, name))
        if v is _MISSING:
            v = self._fallback_read(obj, rtc, name, slot)
        elif isinstance(v, Ref):
            target = self._retarget_type(rtc, name, obj)
            if target is not None:
                v = self._adapt(v, target)
        return v

    def _fallback_read(self, obj: Ref, rtc: RTClass, name: str, slot: Path) -> Any:
        """The current view's copy of a duplicated field is uninitialized.
        Directional sharing (Section 3.3) lets a read fall back to another
        view's copy when its content can be viewed into this family;
        otherwise the read fails (statically prevented by masked types)."""
        inst = obj.inst
        if TRACER.enabled:
            TRACER.event(
                "sharing.group_lookup",
                field=name,
                view=path_str(obj.view.path),
                group=len(self.table.sharing_group(slot)),
            )
        for other in self.table.sharing_group(slot):
            if other == slot:
                continue
            v = inst.load((other, name))
            if v is _MISSING:
                continue
            if isinstance(v, Ref):
                target = self._retarget_type(rtc, name, obj)
                if target is not None:
                    v = self._adapt(v, target)  # raises if not shareable
            # memoize into this view's slot so later reads are direct
            if TRACER.enabled:
                TRACER.count("sharing.fallback_read")
            inst.store((slot, name), v)
            return v
        raise UninitializedFieldError(
            f"field {name!r} of {inst!r} is uninitialized in view "
            f"{path_str(obj.view.path)} (duplicated/unshared field)"
        )

    def _retarget_type(self, rtc: RTClass, name: str, obj: Ref) -> Optional[Type]:
        """Evaluated field target type for lazy implicit view changes,
        memoized per (view, field) when it depends only on ``this``."""
        decl_type = rtc.retarget.get(name)
        if decl_type is None:
            return None
        key = (rtc.path, name)
        cached = self._q_retarget.get(key)
        if cached is not MISS:
            return cached
        paths = T.paths_in(decl_type)
        this_only = all(p == ("this",) or p[0] == "this" for p in paths)
        try:
            evaled = self.table.eval_type(
                decl_type, lambda p: self._path_view(p, obj)
            )
        except (ResolveError, JnsError):
            evaled = None
        if this_only and all(p == ("this",) for p in paths):
            self._q_retarget.put(key, evaled)
        return evaled

    def _path_view(self, path: Path, this: Ref) -> View:
        if path[0] == "this":
            current: Any = this
        else:
            raise ResolveError(f"cannot evaluate path {'.'.join(path)} here")
        for fname in path[1:]:
            current = self.get_field(current, fname)
        if not isinstance(current, Ref):
            raise ResolveError(f"path {'.'.join(path)} is not an object")
        return current.view

    def set_field(self, obj: Any, name: str, value: Any) -> None:
        if obj is None:
            raise NullDereference(f"null dereference writing field {name!r}")
        if not isinstance(obj, Ref):
            raise JnsRuntimeError(f"cannot write field {name!r} of {obj!r}")
        inst = obj.inst
        if not self.sharing:
            if type(inst) is Instance:
                inst.fields[name] = value
            else:
                inst.store(name, value)
            return
        view = obj.view
        rtc = self.loader.rtclass(view.path)
        slot = rtc.field_slot.get(name)
        if slot is None:
            raise JnsRuntimeError(f"no field {name!r} on {path_str(view.path)}")
        if type(inst) is Instance:
            inst.fields[(slot, name)] = value
        else:
            inst.store((slot, name), value)
        if name in view.masks:
            # R-SET removes the mask; reference objects are immutable pairs,
            # so the unmasked view is what subsequent reads should use.
            if TRACER.enabled:
                TRACER.event(
                    "mask.removed", field=name, view=path_str(view.path)
                )
            obj.view = View(view.path, view.masks - {name})

    # -- calls ------------------------------------------------------------

    def _eval_call(self, e: ast.Call, frame):
        obj = self.eval(e.obj, frame)
        if obj is None:
            raise NullDereference(f"null dereference calling {e.name!r}")
        if not isinstance(obj, Ref):
            raise JnsRuntimeError(f"cannot call {e.name!r} on {obj!r}")
        args = [self.eval(a, frame) for a in e.args]
        return self.call_method(obj, e.name, args)

    # -- allocation --------------------------------------------------------

    def _eval_new(self, e: ast.NewObj, frame):
        t = e.type
        if type(t) is ClassType:
            path = t.path
        else:
            evaled = self._eval_type(t, frame).pure()
            if isinstance(evaled, T.IsectType):
                evaled = evaled.parts[0]
            if not isinstance(evaled, ClassType):
                raise JnsRuntimeError(f"cannot instantiate {t!r}")
            path = evaled.path
        args = [self.eval(a, frame) for a in e.args]
        return self.new_instance(path, tuple(args))

    def _eval_newarray(self, e: ast.NewArray, frame):
        length = self.eval(e.length, frame)
        if not isinstance(length, int) or length < 0:
            raise JnsRuntimeError(f"bad array length {length!r}")
        return [default_value(e.elem_type)] * length

    def _eval_index(self, e: ast.Index, frame):
        arr = self.eval(e.arr, frame)
        idx = self.eval(e.idx, frame)
        if arr is None:
            raise NullDereference("null array")
        try:
            if idx < 0:
                raise IndexError
            return arr[idx]
        except IndexError:
            raise JnsRuntimeError(
                f"array index {idx} out of bounds (length {len(arr)})"
            ) from None

    # -- operators ----------------------------------------------------------

    def _eval_unary(self, e: ast.Unary, frame):
        v = self.eval(e.operand, frame)
        if e.op == "!":
            return not v
        return -v

    def _eval_binary(self, e: ast.Binary, frame):
        op = e.op
        if op == "&&":
            return bool(self.eval(e.left, frame)) and bool(self.eval(e.right, frame))
        if op == "||":
            return bool(self.eval(e.left, frame)) or bool(self.eval(e.right, frame))
        a = self.eval(e.left, frame)
        b = self.eval(e.right, frame)
        if op == "+":
            if isinstance(a, str) or isinstance(b, str):
                return to_jstring(a) + to_jstring(b) if not (
                    isinstance(a, str) and isinstance(b, str)
                ) else a + b
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            return _jdiv(a, b)
        if op == "%":
            return _jmod(a, b)
        if op == "==":
            return self._equals(a, b)
        if op == "!=":
            return not self._equals(a, b)
        if op == "<":
            return a < b
        if op == "<=":
            return a <= b
        if op == ">":
            return a > b
        if op == ">=":
            return a >= b
        raise JnsRuntimeError(f"unknown operator {op!r}")

    @staticmethod
    def _equals(a, b) -> bool:
        if isinstance(a, Ref) and isinstance(b, Ref):
            return a.inst is b.inst  # view changes preserve object identity
        if isinstance(a, Ref) or isinstance(b, Ref):
            return False
        if isinstance(a, list) or isinstance(b, list):
            return a is b
        return a == b

    def _eval_cond(self, e: ast.Cond, frame):
        return (
            self.eval(e.then, frame)
            if self.eval(e.cond, frame)
            else self.eval(e.els, frame)
        )

    # -- casts, views, instanceof -------------------------------------------

    def _eval_type(self, t: Type, frame) -> Type:
        this = frame.get("this")
        return self.table.eval_type(
            t, lambda p: self._frame_path_view(p, frame)
        )

    def _frame_path_view(self, path: Path, frame) -> View:
        head = path[0]
        current = frame.get(head, _MISSING)
        if current is _MISSING:
            raise ResolveError(f"unbound variable {head!r} in dependent type")
        for fname in path[1:]:
            current = self.get_field(current, fname)
        if not isinstance(current, Ref):
            raise ResolveError(f"path {'.'.join(path)} is not an object")
        return current.view

    def conforms(self, view: View, t: Type) -> bool:
        """Whether a value with this view belongs to type ``t`` (already
        evaluated to non-dependent form)."""
        t = t.pure()
        if TRACER.enabled:
            TRACER.count("conforms.check")
        key = (view.path, t)
        cached = self._q_conforms.get(key)
        if cached is not MISS:
            return cached
        return self._q_conforms.put(key, self._conforms(view.path, t))

    def _conforms(self, path: Path, t: Type) -> bool:
        # Single source of truth on the class table (the specializer's
        # conformance-set queries use the same judgment).
        return self.table.runtime_conforms(path, t)

    def _eval_cast(self, e: ast.Cast, frame):
        v = self.eval(e.expr, frame)
        return self.cast_value(v, e.type, frame)

    def cast_value(self, v, t, frame):
        t_pure = t.pure()
        if isinstance(t_pure, T.PrimType):
            if t_pure == T.INT:
                return int(v)
            if t_pure == T.DOUBLE:
                return float(v)
            if t_pure == T.BOOLEAN:
                return bool(v)
            return v
        if v is None:
            return None
        if isinstance(v, list):
            if isinstance(t_pure, T.ArrayType):
                return v
            raise JnsRuntimeError(f"cannot cast array to {t!r}")
        if not isinstance(v, Ref):
            if isinstance(v, str) and t_pure == T.STRING:
                return v
            raise JnsRuntimeError(f"cannot cast {v!r} to {t!r}")
        evaled = self._eval_type(t, frame)
        if not self.conforms(v.view, evaled):
            raise JnsRuntimeError(
                f"ClassCastException: {path_str(v.view.path)} is not a {evaled!r}"
            )
        return v

    def _eval_view(self, e: ast.ViewChange, frame):
        if not self.sharing:
            raise JnsRuntimeError(
                f"view changes require the jns mode (running in {self.mode!r})"
            )
        v = self.eval(e.expr, frame)
        if v is None:
            return None
        if not isinstance(v, Ref):
            raise JnsRuntimeError(f"view change applied to non-object {v!r}")
        target = self._eval_type(e.type, frame)
        if TRACER.enabled:
            TRACER.event(
                "view_change.explicit",
                source=path_str(v.view.path),
                target=str(target),
            )
        adapted = self._adapt(v, target)
        if self.eager_views:
            self.propagate_views(adapted)
        return adapted

    def _adapt(self, ref: Ref, target: Type) -> Ref:
        """The run-time ``view`` function with memoized reference objects
        (Section 6.3)."""
        if PROFILER.enabled:
            PROFILER.view_hit()
        current = ref.view
        t_pure = target.pure()
        masks = target.masks
        if self.conforms(current, t_pure):
            if current.masks == masks:
                if TRACER.enabled:
                    TRACER.count("view_change.noop")
                return ref
            new_view = View(current.path, frozenset(masks))
        else:
            new_view = self.table.view_of(current, target)
        inst = ref.inst
        if self.memoize_views:
            memo = inst.view_refs.get(new_view.path)
            if memo is not None and memo.view.masks == new_view.masks:
                if TRACER.enabled:
                    TRACER.count("view_change.memo_hit")
                return memo
        new_ref = Ref(inst, new_view)
        if self.memoize_views:
            inst.view_refs[new_view.path] = new_ref
        if TRACER.enabled:
            TRACER.count("view_change.new_ref")
        return new_ref

    def propagate_views(self, ref: Ref) -> int:
        """Eagerly move every object transitively reachable from ``ref``
        through view-dependent reference fields into ``ref``'s family (the
        eager alternative to Section 6.3's lazy implicit view changes).
        Returns the number of objects visited."""
        seen = set()
        stack = [ref]
        visited = 0
        while stack:
            current = stack.pop()
            if id(current.inst) in seen:
                continue
            seen.add(id(current.inst))
            visited += 1
            rtc = self.loader.rtclass(current.view.path)
            for fname in rtc.retarget:
                try:
                    value = self.get_field(current, fname)
                except JnsError:
                    continue
                if isinstance(value, Ref):
                    stack.append(value)
        return visited

    def _eval_instanceof(self, e: ast.InstanceOf, frame):
        v = self.eval(e.expr, frame)
        return self.instanceof_value(v, e.type, frame)

    def instanceof_value(self, v, t, frame):
        if v is None:
            return False
        t_pure = t.pure()
        if isinstance(v, Ref):
            if isinstance(t_pure, T.PrimType):
                return False
            evaled = self._eval_type(t, frame)
            return self.conforms(v.view, evaled)
        if isinstance(v, str):
            return t_pure == T.STRING
        if isinstance(v, bool):
            return t_pure == T.BOOLEAN
        if isinstance(v, int):
            return t_pure == T.INT
        if isinstance(v, float):
            return t_pure == T.DOUBLE
        if isinstance(v, list):
            return isinstance(t_pure, T.ArrayType)
        return False

    # -- assignment -----------------------------------------------------------

    def _eval_assign(self, e: ast.Assign, frame):
        if e.op == "=":
            value = self.eval(e.value, frame)
        else:
            current = self.eval(e.target, frame)
            rhs = self.eval(e.value, frame)
            binop = e.op[0]
            if binop == "+":
                if isinstance(current, str) or isinstance(rhs, str):
                    value = to_jstring(current) + to_jstring(rhs) if not (
                        isinstance(current, str) and isinstance(rhs, str)
                    ) else current + rhs
                else:
                    value = current + rhs
            elif binop == "-":
                value = current - rhs
            elif binop == "*":
                value = current * rhs
            else:
                value = _jdiv(current, rhs)
            if isinstance(current, int) and isinstance(value, float):
                value = int(value)
        target = e.target
        cls = type(target)
        if cls is ast.Var:
            frame[target.name] = value
        elif cls is ast.FieldGet:
            obj = self.eval(target.obj, frame)
            self.set_field(obj, target.name, value)
        elif cls is ast.Index:
            arr = self.eval(target.arr, frame)
            idx = self.eval(target.idx, frame)
            if arr is None:
                raise NullDereference("null array")
            if not 0 <= idx < len(arr):
                raise JnsRuntimeError(
                    f"array index {idx} out of bounds (length {len(arr)})"
                )
            arr[idx] = value
        else:
            raise JnsRuntimeError("invalid assignment target")
        return value

    # -- natives ----------------------------------------------------------------

    def _eval_sys(self, e: ast.SysCall, frame):
        fn = self._sys[e.name]
        args = [self.eval(a, frame) for a in e.args]
        return fn(*args)

    def _build_sys(self) -> Dict[str, Callable]:
        def _print(v):
            text = to_jstring(v)
            self.output.append(text)
            if self.echo:
                print(text)

        def _fail(msg):
            raise JnsFailure(str(msg))

        return {
            "print": _print,
            "println": _print,
            "sqrt": lambda x: math.sqrt(x),
            "abs": lambda x: abs(x),
            "fabs": lambda x: abs(float(x)),
            "min": lambda a, b: min(a, b),
            "max": lambda a, b: max(a, b),
            "floor": lambda x: math.floor(x) * 1.0,
            "ceil": lambda x: math.ceil(x) * 1.0,
            "pow": lambda a, b: math.pow(a, b),
            "sin": math.sin,
            "cos": math.cos,
            "tan": math.tan,
            "asin": math.asin,
            "acos": math.acos,
            "atan": math.atan,
            "atan2": math.atan2,
            "log": math.log,
            "exp": math.exp,
            "intOf": lambda x: int(x),
            "doubleOf": lambda x: float(x),
            "str": to_jstring,
            "strLen": len,
            "charAt": lambda s, i: s[i],
            "substring": lambda s, a, b: s[a:b],
            "parseInt": lambda s: int(s),
            "fail": _fail,
            "identityHash": lambda v: id(v.inst) if isinstance(v, Ref) else id(v),
            "viewName": lambda v: (
                path_str(v.view.path) if isinstance(v, Ref) else type(v).__name__
            ),
            "PI": lambda: math.pi,
            "E": lambda: math.e,
            "MAX_INT": lambda: 2147483647,
            "MIN_INT": lambda: -2147483648,
            "MAX_DOUBLE": lambda: sys.float_info.max,
        }
