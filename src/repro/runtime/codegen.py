"""The ``jns -> Python`` source-level codegen backend (tier above the
register compiler).

The register backend (:class:`~repro.runtime.compiler.RegisterCompiler`)
still pays one Python closure call per expression node.  This module
removes that layer: each specialized method/constructor body is walked
once and *emitted* as real Python source — then ``compile()``d and
``exec``'d into a plain function cached per ``(declaration, view path)``.
The specialization products of :mod:`repro.runtime.specialize` are baked
directly into the emitted text:

* slot indices from the :class:`~repro.runtime.specialize.Layout` appear
  as literal ``inst.slots[i]`` accesses;
* sealed-family (and receiver-monomorphic) devirtualized targets become
  direct calls to the emitted callee, behind the usual view-path guard;
* ``PLAN_NOOP`` view retargets are erased to a two-comparison guard and
  ``PLAN_ADAPT`` retargets are inlined as a single ``_adapt`` call;
* constants are folded and J&s locals become real Python locals.

Semantics stay anchored to the interpreter: every slow path (generic
field access, dispatch misses, casts, dependent types, view changes)
calls straight back into the same :class:`~repro.runtime.interp.Interp`
entry points the other backends use, and every emitted call routes
through ``Interp._codegen_call`` so stack labels, ``JNS-RES-001``/
``JNS-RES-002`` budgets, and RecursionError snapshots are identical.
The step budget is charged per call and per loop iteration (never per
node), so unmetered runs pay nothing.

Emission is deliberately temp-heavy: any subexpression that can raise,
count, or touch the heap is assigned to a fresh single-assignment local
(``_tN``) in evaluation order, and earlier operands are spilled to temps
whenever a later operand has effects — reproducing the tree walker's
left-to-right evaluation order exactly.  Constants reach the emitted
code as keyword-only defaults (``def f(u_this, *, _k0=_k0): ...``),
which CPython binds at function-definition time and reads at LOAD_FAST
speed.

Eviction is all-or-nothing: emitted bodies capture lazily-resolved
callee cells from their compiler, so an incremental edit
(:class:`~repro.lang.incremental.EditNotice`) drops the whole
:class:`CodegenCompiler` (``Interp._on_table_edit``) rather than trying
to invalidate closures piecemeal.

Selected with ``repro run --backend codegen`` (the default); the
four-way differential in ``tests/test_specialize_differential.py`` locks
the semantics against the other three backends.
"""

from __future__ import annotations

import linecache
import re
from typing import Any, Dict, List, Optional, Tuple

from ..lang import types as T
from ..lang.classtable import JnsError, ResolveError, path_str
from ..lang.types import ClassType, View
from ..obs import TRACER
from ..profiler import PROFILER, EmittedSource
from ..source import ast
from .interp import _jdiv, _jmod, to_jstring
from .values import (
    ABSENT,
    JnsRuntimeError,
    NullDereference,
    Ref,
    SlottedInstance,
    UninitializedFieldError,
    default_value,
)


class _BreakEscape(Exception):
    """``break`` outside any loop in an (unchecked) program body."""


class _ContinueSignal(Exception):
    """Carries ``continue`` out of a for-body (Python ``continue`` would
    skip the update expression, J&s must not)."""


def _jadd(a, b):
    """Java ``+`` with string coercion (the walker's Binary ``+``)."""
    if isinstance(a, str) or isinstance(b, str):
        if isinstance(a, str) and isinstance(b, str):
            return a + b
        return to_jstring(a) + to_jstring(b)
    return a + b


_NUMERIC = (T.INT, T.DOUBLE)
_PRIMITIVE = (T.INT, T.DOUBLE, T.BOOLEAN, T.STRING)

_TEMP_RE = re.compile(r"_t\d+$")


class _FrameView:
    """Dict-like adapter over the emitted function's ``locals()`` for the
    cold dependent-type paths (``eval_type``/``cast_value``/
    ``instanceof_value``), which resolve frame variables by name.  User
    locals live under their mangled ``u_`` names; temps and constants are
    invisible to J&s paths by construction."""

    __slots__ = ("d",)

    def __init__(self, d: Dict[str, Any]) -> None:
        self.d = d

    def get(self, name: str, default: Any = None) -> Any:
        v = self.d.get("u_" + name, ABSENT)
        return default if v is ABSENT else v


class _Emitter:
    """Emits the Python source of one method/constructor/initializer
    body, specialized for one receiver view path."""

    def __init__(self, cg: "CodegenCompiler", path, label: str) -> None:
        self.cg = cg
        self.interp = cg.interp
        self.spec = cg.spec
        self.sharing = cg.sharing
        self.path = path
        self.label = label
        self.lines: List[str] = []
        #: jns ``(line, col)`` per emitted line — the source map, kept
        #: parallel to ``lines`` (``None`` for scaffolding)
        self.positions: List[Optional[Tuple[int, int]]] = []
        self.cur: Optional[Tuple[int, int]] = None
        #: line-profile mode: plant deterministic counting hooks in the
        #: emitted text (profiled interpreters compile fresh bodies)
        self.lp = bool(getattr(cg.interp, "line_profile", False))
        self.indent = 1
        self.consts: Dict[str, Any] = {}
        self._const_ids: Dict[int, str] = {}
        self._next_temp = 0
        self._next_const = 0
        self.bound: set = set()
        self._atoms: set = set()
        self._loop_stack: List[str] = []  # "while" | "for"
        self._needs_cont = False
        try:
            self.cspec = self.spec.class_spec(path)
        except JnsError:
            # Unresolvable sharing state: every ``this`` access falls back
            # to the generic accessors, which re-raise at the use site —
            # the same laziness the register backend gets per site.
            self.cspec = None

    # -- writer helpers -------------------------------------------------

    def w(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)
        self.positions.append(self.cur)

    def temp(self) -> str:
        name = f"_t{self._next_temp}"
        self._next_temp += 1
        self._atoms.add(name)
        return name

    def const(self, value: Any, name: Optional[str] = None) -> str:
        """Bind ``value`` as a keyword-only default of the emitted
        function.  Deduplicated by identity so repeated sites share one
        binding."""
        key = id(value)
        found = self._const_ids.get(key)
        if found is not None:
            return found
        if name is None:
            name = f"_k{self._next_const}"
            self._next_const += 1
        if name not in self.consts:
            self.consts[name] = value
            self._const_ids[key] = name
            self._atoms.add(name)
        return name

    def helper(self, name: str, value: Any) -> str:
        """A well-known helper bound under a fixed name."""
        if name not in self.consts:
            self.consts[name] = value
            self._atoms.add(name)
        return name

    def _lit(self, v: Any) -> str:
        if v is None or v is True or v is False:
            code = repr(v)
        elif isinstance(v, float):
            if v != v or v in (float("inf"), float("-inf")):
                return self.const(v)
            code = repr(v)
        elif isinstance(v, (int, str)):
            code = repr(v)
        else:
            return self.const(v)
        self._atoms.add(code)
        return code

    def spill(self, code: str) -> str:
        if code in self._atoms:
            return code
        t = self.temp()
        self.w(f"{t} = {code}")
        return t

    def _fv(self) -> str:
        """A ``_FrameView`` over the live locals, for cold dependent-type
        sites.  ``locals`` is bound as a constant (the emitted globals
        carry no builtins)."""
        fv = self.helper("_FV", _FrameView)
        loc = self.helper("_loc", locals)
        return f"{fv}({loc}())"

    # -- effect analysis ------------------------------------------------

    def _effectful(self, e: ast.Expr) -> bool:
        """Whether evaluating ``e`` may raise, allocate, call, or write —
        i.e. whether emitted lines will precede its value.  Earlier
        operands must be spilled to temps before such a node runs."""
        cls = type(e)
        if cls in (ast.Lit, ast.This, ast.Var):
            return False
        if cls is ast.Unary:
            return self._effectful(e.operand)
        if cls is ast.Binary:
            if e.op in ("/", "%"):
                return True
            return self._effectful(e.left) or self._effectful(e.right)
        if cls is ast.Cond:
            return (
                self._effectful(e.cond)
                or self._effectful(e.then)
                or self._effectful(e.els)
            )
        if cls is ast.Cast:
            if isinstance(e.type.pure(), T.PrimType):
                return self._effectful(e.expr)
            return True
        return True

    def emit_seq(self, exprs) -> List[str]:
        """Emit ``exprs`` left-to-right, spilling each result that is not
        an immutable atom whenever a later operand has effects (which
        would otherwise be hoisted past a mutation or a raise)."""
        exprs = list(exprs)
        flags = [self._effectful(e) for e in exprs]
        codes: List[str] = []
        for i, e in enumerate(exprs):
            code = self.emit(e)
            if any(flags[i + 1 :]) and code not in self._atoms:
                code = self.spill(code)
            codes.append(code)
        return codes

    # -- constant folding ------------------------------------------------

    def _fold(self, e: ast.Expr):
        """Fold a compile-time constant; returns (True, value) or
        (False, None).  Only closed int/float/str/bool arithmetic that
        cannot raise or lose Java semantics (``/`` and ``%`` stay
        runtime)."""
        cls = type(e)
        if cls is ast.Lit:
            return True, e.value
        if cls is ast.Unary:
            ok, v = self._fold(e.operand)
            if ok:
                if e.op == "!":
                    return True, (not v)
                if isinstance(v, (int, float)) and not isinstance(v, bool):
                    return True, -v
            return False, None
        if cls is ast.Binary and e.op in ("+", "-", "*"):
            ok_l, a = self._fold(e.left)
            if not ok_l:
                return False, None
            ok_r, b = self._fold(e.right)
            if not ok_r:
                return False, None
            num_l = isinstance(a, (int, float)) and not isinstance(a, bool)
            num_r = isinstance(b, (int, float)) and not isinstance(b, bool)
            if num_l and num_r:
                return True, (a + b if e.op == "+" else a - b if e.op == "-" else a * b)
            if e.op == "+" and isinstance(a, str) and isinstance(b, str):
                return True, a + b
        return False, None

    # -- expressions -----------------------------------------------------

    def emit(self, e: ast.Expr) -> str:
        if e.pos[0]:
            self.cur = e.pos
        ok, v = self._fold(e)
        if ok:
            return self._lit(v)
        cls = type(e)
        if cls is ast.Lit:
            return self._lit(e.value)
        if cls is ast.This:
            return "u_this"
        if cls is ast.Var:
            return self._var_read(e.name)
        if cls is ast.Unary:
            inner = self.emit(e.operand)
            return f"(not {inner})" if e.op == "!" else f"(- {inner})"
        if cls is ast.Binary:
            return self._binary(e)
        if cls is ast.Cond:
            return self._cond(e)
        if cls is ast.FieldGet:
            return self._field_read(e)
        if cls is ast.Call:
            return self._call(e)
        if cls is ast.SysCall:
            return self._syscall(e)
        if cls is ast.NewObj:
            return self._new(e)
        if cls is ast.NewArray:
            return self._newarray(e)
        if cls is ast.Index:
            return self._index_read(e)
        if cls is ast.Cast:
            return self._cast(e)
        if cls is ast.ViewChange:
            return self._view_change(e)
        if cls is ast.InstanceOf:
            inner = self.spill(self.emit(e.expr))
            k = self.const(self.cg.instanceof_fn(e.type))
            t = self.temp()
            self.w(f"{t} = {k}({inner}, {self._fv()})")
            return t
        if cls is ast.Assign:
            return self._assign(e)
        raise JnsRuntimeError(f"cannot emit expression {e!r}")

    def _var_read(self, name: str) -> str:
        py = "u_" + name
        if py not in self.bound:
            unb = self.const(self.cg.unbound_raiser(name))
            ab = self.helper("_ABSENT", ABSENT)
            self.w(f"if {py} is {ab}: {unb}()")
            self.bound.add(py)
        return py

    def _rt(self, e: ast.Expr):
        return getattr(e, "rtype", None)

    def _binary(self, e: ast.Binary) -> str:
        op = e.op
        if op in ("&&", "||"):
            left = self.emit(e.left)
            b = self.helper("_bool", bool)
            if not self._effectful(e.right):
                right = self.emit(e.right)
                word = "and" if op == "&&" else "or"
                return f"({b}({left}) {word} {b}({right}))"
            left = self.spill(left)
            t = self.temp()
            self.w(f"{t} = {b}({left})")
            self.w(f"if {'' if op == '&&' else 'not '}{t}:")
            self.indent += 1
            saved = set(self.bound)
            right = self.emit(e.right)
            self.w(f"{t} = {b}({right})")
            self.indent -= 1
            self.bound = saved
            return t
        left, right = self.emit_seq((e.left, e.right))
        if op == "+":
            lt, rt = self._rt(e.left), self._rt(e.right)
            if lt in _NUMERIC and rt in _NUMERIC:
                return f"({left} + {right})"
            return f"{self.helper('_jadd', _jadd)}({left}, {right})"
        if op == "-":
            return f"({left} - {right})"
        if op == "*":
            return f"({left} * {right})"
        if op == "/":
            t = self.temp()
            self.w(f"{t} = {self.helper('_jdiv', _jdiv)}({left}, {right})")
            return t
        if op == "%":
            t = self.temp()
            self.w(f"{t} = {self.helper('_jmod', _jmod)}({left}, {right})")
            return t
        if op in ("==", "!="):
            lt, rt = self._rt(e.left), self._rt(e.right)
            if lt in _PRIMITIVE and rt in _PRIMITIVE:
                return f"({left} {op} {right})"
            eq = self.helper("_eq", self.interp._equals)
            if op == "==":
                return f"{eq}({left}, {right})"
            return f"(not {eq}({left}, {right}))"
        if op in ("<", "<=", ">", ">="):
            return f"({left} {op} {right})"
        raise JnsRuntimeError(f"unknown operator {op!r}")

    def _cond(self, e: ast.Cond) -> str:
        if not (self._effectful(e.then) or self._effectful(e.els)):
            cond = self.emit(e.cond)
            then = self.emit(e.then)
            els = self.emit(e.els)
            return f"({then} if {cond} else {els})"
        cond = self.emit(e.cond)
        t = self.temp()
        self.w(f"if {cond}:")
        self.indent += 1
        saved = set(self.bound)
        then = self.emit(e.then)
        self.w(f"{t} = {then}")
        self.indent -= 1
        self.bound = saved
        self.w("else:")
        self.indent += 1
        saved = set(self.bound)
        els = self.emit(e.els)
        self.w(f"{t} = {els}")
        self.indent -= 1
        self.bound = saved
        return t

    def _syscall(self, e: ast.SysCall) -> str:
        fn = self.interp._sys[e.name]
        k = self.const(fn, None)
        args = self.emit_seq(e.args)
        t = self.temp()
        self.w(f"{t} = {k}({', '.join(args)})")
        return t

    def _new(self, e: ast.NewObj) -> str:
        new = self.helper("_new", self.interp.new_instance)
        if type(e.type) is ClassType:
            kp = self.const(e.type.path)
            args = self.emit_seq(e.args)
            t = self.temp()
            self.w(f"{t} = {new}({kp}, ({', '.join(args)}{',' if args else ''}))")
            return t
        # dependent target type: evaluate the type *before* the arguments
        # (walker order), against a by-name view of the live locals
        npk = self.const(self.cg.new_path_fn(e.type))
        tp = self.temp()
        self.w(f"{tp} = {npk}({self._fv()})")
        args = self.emit_seq(e.args)
        t = self.temp()
        self.w(f"{t} = {new}({tp}, ({', '.join(args)}{',' if args else ''}))")
        return t

    def _newarray(self, e: ast.NewArray) -> str:
        length = self.emit(e.length)
        k = self.const(self.cg.newarray_fn(e.elem_type))
        t = self.temp()
        self.w(f"{t} = {k}({length})")
        return t

    def _index_read(self, e: ast.Index) -> str:
        arr, idx = self.emit_seq((e.arr, e.idx))
        arr = self.spill(arr)
        idx = self.spill(idx)
        nular = self.helper("_nular", _raise_null_array)
        oob = self.helper("_oob", _raise_oob)
        self.w(f"if {arr} is None: {nular}()")
        ln = self.helper("_len", len)
        self.w(f"if {idx} < 0 or {idx} >= {ln}({arr}): {oob}({idx}, {arr})")
        t = self.temp()
        self.w(f"{t} = {arr}[{idx}]")
        return t

    def _cast(self, e: ast.Cast) -> str:
        t_pure = e.type.pure()
        if isinstance(t_pure, T.PrimType):
            inner = self.emit(e.expr)
            if t_pure == T.INT:
                return f"{self.helper('_int', int)}({inner})"
            if t_pure == T.DOUBLE:
                return f"{self.helper('_float', float)}({inner})"
            if t_pure == T.BOOLEAN:
                return f"{self.helper('_bool', bool)}({inner})"
            return inner
        inner = self.spill(self.emit(e.expr))
        k = self.const(self.cg.cast_fn(e.type))
        t = self.temp()
        self.w(f"{t} = {k}({inner}, {self._fv()})")
        return t

    def _view_change(self, e: ast.ViewChange) -> str:
        if not self.sharing:
            # walker parity: the mode error fires *before* the operand
            # is evaluated
            k = self.const(self.cg.view_unsupported_fn())
            t = self.temp()
            self.w(f"{t} = {k}()")
            return t
        inner = self.spill(self.emit(e.expr))
        fn = self.cg.view_change_fn(e.type)
        k = self.const(fn)
        t = self.temp()
        if getattr(fn, "_static", False):
            self.w(f"{t} = {k}({inner})")
        else:
            self.w(f"{t} = {k}({inner}, {self._fv()})")
        return t

    # -- specialized field access ----------------------------------------

    def _field_read(self, e: ast.FieldGet) -> str:
        name = e.name
        if type(e.obj) is ast.This:
            return self._this_read(name)
        o = self.spill(self.emit(e.obj))
        ref = self.helper("_Ref", Ref)
        gf = self.helper("_gf", self.interp.get_field)
        t = self.temp()
        if not self.sharing:
            fill = self.const(self.cg.fill_plain_fn(name))
            site = self.const([None, None])
            self.cg.note_site()
            self.w(f"if {o}.__class__ is {ref}:")
            self.w(f"    if {site}[0] != {o}.view.path: {fill}({site}, {o})")
            self.w(f"    if {site}[1] is None:")
            self.w(f"        {t} = {gf}({o}, {name!r})")
            self.w(f"    else:")
            self.w(f"        {t} = {o}.inst.slots[{site}[1]]")
            self.w(f"        if {t} is _ABSENT: {t} = {gf}({o}, {name!r})")
            self.w(f"else:")
            self.w(f"    {t} = {gf}({o}, {name!r})")
            self.helper("_ABSENT", ABSENT)
            self.helper("_TR", TRACER)
            return t
        fill = self.const(self.cg.fill_shared_fn(name))
        plan = self.const(self.cg.plan_apply_fn(name))
        mblk = self.helper("_mblk", _raise_masked)
        site = self.const([None, -1, None])
        self.cg.note_site()
        tr = self.helper("_TR", TRACER)
        ab = self.helper("_ABSENT", ABSENT)
        self.w(f"if {o}.__class__ is {ref}:")
        self.w(f"    if {tr}.enabled: {tr}.count('mask.check')")
        if self.lp:
            pfm = self.helper("_pfm", PROFILER.mask_hit)
            self.w(f"    {pfm}()")
        self.w(f"    if {name!r} in {o}.view.masks: {mblk}({name!r}, {o}.view)")
        self.w(f"    if {site}[0] != {o}.view.path: {fill}({site}, {o})")
        self.w(f"    {t} = {o}.inst.slots[{site}[1]]")
        self.w(f"    if {t} is {ab}:")
        self.w(f"        {t} = {gf}({o}, {name!r})")
        self.w(f"    elif {site}[2] is not None and {t}.__class__ is {ref}:")
        self.w(f"        {t} = {plan}({site}[2], {t}, {o})")
        self.w(f"else:")
        self.w(f"    {t} = {gf}({o}, {name!r})")
        return t

    def _this_read(self, name: str) -> str:
        """``this.f``: the slot index and read plan are known at emission
        time — this is where the Layout is baked into the text."""
        gf = self.helper("_gf", self.interp.get_field)
        t = self.temp()
        slot = self.cspec.slot_of.get(name) if self.cspec is not None else None
        if slot is None:
            self.w(f"{t} = {gf}(u_this, {name!r})")
            return t
        ab = self.helper("_ABSENT", ABSENT)
        self.cg.note_site()
        if not self.sharing:
            self.w(f"{t} = u_this.inst.slots[{slot}]")
            self.w(f"if {t} is {ab}: {t} = {gf}(u_this, {name!r})")
            return t
        tr = self.helper("_TR", TRACER)
        mblk = self.helper("_mblk", _raise_masked)
        self.w(f"if {tr}.enabled: {tr}.count('mask.check')")
        if self.lp:
            pfm = self.helper("_pfm", PROFILER.mask_hit)
            self.w(f"{pfm}()")
        self.w(f"if {name!r} in u_this.view.masks: {mblk}({name!r}, u_this.view)")
        self.w(f"{t} = u_this.inst.slots[{slot}]")
        rplan = self.cspec.read_plan.get(name)
        if rplan is None:
            self.w(f"if {t} is {ab}: {t} = {gf}(u_this, {name!r})")
            return t
        ref = self.helper("_Ref", Ref)
        self.w(f"if {t} is {ab}:")
        self.w(f"    {t} = {gf}(u_this, {name!r})")
        self.w(f"elif {t}.__class__ is {ref}:")
        tag = rplan[0]
        if tag == 0:  # PLAN_NOOP — erased to a two-comparison guard
            kn = self.const(rplan[1])
            kt = self.const(rplan[2])
            adapt = self.helper("_adapt", self.interp._adapt)
            wv = self.temp()
            self.w(f"    {wv} = {t}.view")
            self.w(f"    if {wv}.path not in {kn} or {wv}.masks:")
            self.w(f"        {t} = {adapt}({t}, {kt})")
            if self.lp:
                # the elided no-op still counts as one view adaptation,
                # keeping the view column a cross-backend invariant
                pfv = self.helper("_pfv", PROFILER.view_hit)
                self.w(f"    else: {pfv}()")
        elif tag == 1:  # PLAN_ADAPT — inlined adapt to the static target
            kt = self.const(rplan[1])
            adapt = self.helper("_adapt", self.interp._adapt)
            self.w(f"    {t} = {adapt}({t}, {kt})")
        else:  # PLAN_DYNAMIC
            dyn = self.const(self.cg.dyn_retarget_fn(name))
            self.w(f"    {t} = {dyn}({t}, u_this)")
        return t

    def _field_store(self, target: ast.FieldGet, v: str) -> None:
        name = target.name
        sf = self.helper("_sf", self.interp.set_field)
        if type(target.obj) is ast.This:
            slot = self.cspec.slot_of.get(name) if self.cspec is not None else None
            if slot is None:
                self.w(f"{sf}(u_this, {name!r}, {v})")
                return
            self.cg.note_site()
            self.w(f"u_this.inst.slots[{slot}] = {v}")
            if self.sharing:
                unmask = self.helper("_unmask", _remove_mask)
                self.w(f"if {name!r} in u_this.view.masks: {unmask}(u_this, {name!r})")
            return
        o = self.spill(self.emit(target.obj))
        ref = self.helper("_Ref", Ref)
        self.cg.note_site()
        if not self.sharing:
            fill = self.const(self.cg.fill_plain_fn(name))
            site = self.const([None, None])
            self.w(f"if {o}.__class__ is {ref}:")
            self.w(f"    if {site}[0] != {o}.view.path: {fill}({site}, {o})")
            self.w(f"    if {site}[1] is None:")
            self.w(f"        {sf}({o}, {name!r}, {v})")
            self.w(f"    else:")
            self.w(f"        {o}.inst.slots[{site}[1]] = {v}")
            self.w(f"else:")
            self.w(f"    {sf}({o}, {name!r}, {v})")
            return
        fill = self.const(self.cg.fill_store_fn(name))
        site = self.const([None, -1])
        unmask = self.helper("_unmask", _remove_mask)
        self.w(f"if {o}.__class__ is {ref}:")
        self.w(f"    if {site}[0] != {o}.view.path: {fill}({site}, {o})")
        self.w(f"    {o}.inst.slots[{site}[1]] = {v}")
        self.w(f"    if {name!r} in {o}.view.masks: {unmask}({o}, {name!r})")
        self.w(f"else:")
        self.w(f"    {sf}({o}, {name!r}, {v})")

    # -- calls -----------------------------------------------------------

    def _call(self, e: ast.Call) -> str:
        name = e.name
        tr = self.helper("_TR", TRACER)
        if type(e.obj) is ast.This:
            found = self.interp._lookup_method(self.path, name)
            if (
                found is not None
                and found[1].body is not None
                and len(found[1].params) == len(e.args)
            ):
                owner, decl = found
                direct = self.const(self.cg.direct_call_fn(owner, decl, name, self.path))
                args = self.emit_seq(e.args)
                self.cg.note_site()
                t = self.temp()
                self.w(f"if {tr}.enabled: {tr}.count('dispatch.codegen_hit')")
                self.w(f"{t} = {direct}(u_this{''.join(', ' + a for a in args)})")
                return t
            o = "u_this"
        else:
            o = self.spill(self.emit(e.obj))
        ref = self.helper("_Ref", Ref)
        nullc = self.helper("_nullc", _raise_null_call)
        nonref = self.helper("_nonref", _raise_non_ref_call)
        if o != "u_this":
            self.w(f"if {o} is None: {nullc}({name!r})")
            self.w(f"if {o}.__class__ is not {ref}: {nonref}({name!r}, {o})")
        target = self.spec.static_target_for(name, self._rt(e.obj))
        if (
            o != "u_this"
            and target is not None
            and target[1].body is not None
            and len(target[1].params) == len(e.args)
        ):
            owner, decl, valid = target
            self.spec.note_devirtualized()
            self.cg.note_site()
            kv = self.const(valid)
            dv = self.const(self.cg.devirt_call_fn(owner, decl, name))
            gen = self.const(self.cg.generic_call_fn(name))
            args = self.emit_seq(e.args)
            argstr = "".join(", " + a for a in args)
            t = self.temp()
            self.w(f"if {o}.view.path in {kv}:")
            self.w(f"    if {tr}.enabled: {tr}.count('dispatch.codegen_hit')")
            self.w(f"    {t} = {dv}({o}{argstr})")
            self.w(f"else:")
            self.w(f"    {t} = {gen}({o}{argstr})")
            return t
        # monomorphic inline cache over emitted bodies
        site = self.const([None, None])
        miss = self.const(self.cg.call_miss_fn(name))
        args = self.emit_seq(e.args)
        argstr = "".join(", " + a for a in args)
        t = self.temp()
        self.w(f"if {site}[0] == {o}.view.path:")
        self.w(f"    if {tr}.enabled: {tr}.count('dispatch.codegen_hit')")
        self.w(f"    {t} = {site}[1]({o}{argstr})")
        self.w(f"else:")
        self.w(f"    {t} = {miss}({site}, {o}{argstr})")
        return t

    # -- assignment ------------------------------------------------------

    def _assign(self, e: ast.Assign) -> str:
        target = e.target
        if e.op == "=":
            v = self.spill(self.emit(e.value))
            self._store(target, v)
            return v
        cur = self.spill(self.emit(target))
        r = self.emit(e.value)
        binop = e.op[0]
        t = self.temp()
        if (
            binop in "+-*"
            and self._rt(target) == T.INT
            and self._rt(e.value) == T.INT
        ):
            self.w(f"{t} = ({cur} {binop} {r})")
        else:
            h = self.helper(
                {"+": "_cadd", "-": "_csub", "*": "_cmul", "/": "_cdiv"}[binop],
                {"+": _compound_add, "-": _compound_sub,
                 "*": _compound_mul, "/": _compound_div}[binop],
            )
            self.w(f"{t} = {h}({cur}, {r})")
        self._store(target, t)
        return t

    def _store(self, target: ast.Expr, v: str) -> None:
        tcls = type(target)
        if tcls is ast.Var:
            self.w(f"u_{target.name} = {v}")
            self.bound.add("u_" + target.name)
            return
        if tcls is ast.FieldGet:
            self._field_store(target, v)
            return
        if tcls is ast.Index:
            arr, idx = self.emit_seq((target.arr, target.idx))
            arr = self.spill(arr)
            idx = self.spill(idx)
            nular = self.helper("_nular", _raise_null_array)
            oob = self.helper("_oob", _raise_oob)
            ln = self.helper("_len", len)
            self.w(f"if {arr} is None: {nular}()")
            self.w(f"if {idx} < 0 or {idx} >= {ln}({arr}): {oob}({idx}, {arr})")
            self.w(f"{arr}[{idx}] = {v}")
            return
        raise JnsRuntimeError("invalid assignment target")

    # -- statements ------------------------------------------------------

    def stmt(self, s: ast.Stmt) -> None:
        cls = type(s)
        if cls is ast.Block:
            for inner in s.stmts:
                self.stmt(inner)
            return
        if cls is not ast.Empty and s.pos[0]:
            self.cur = s.pos
            if self.lp:
                # one deterministic statement-entry hit per execution;
                # also re-anchors PROFILER.cur_line for event columns
                hit = self.helper("_pfh", PROFILER.stmt_hit)
                self.w(f"{hit}({s.pos[0]})")
        if cls is ast.LocalDecl:
            if s.init is not None:
                code = self.emit(s.init)
            else:
                code = self._lit(default_value(s.type))
            self.w(f"u_{s.name} = {code}")
            self.bound.add("u_" + s.name)
            return
        if cls is ast.ExprStmt:
            code = self.emit(s.expr)
            if code not in self._atoms:
                self.w(code)
            return
        if cls is ast.If:
            cond = self.emit(s.cond)
            self.w(f"if {cond}:")
            self._suite(s.then)
            if s.els is not None:
                self.w("else:")
                self._suite(s.els)
            return
        if cls is ast.While:
            self._while(s)
            return
        if cls is ast.For:
            self._for(s)
            return
        if cls is ast.Return:
            code = self.emit(s.value) if s.value is not None else "None"
            self.w(f"return {code}")
            return
        if cls is ast.Break:
            if self._loop_stack:
                self.w("break")
            else:
                brk = self.helper("_BRK", _BreakEscape)
                self.w(f"raise {brk}")
            return
        if cls is ast.Continue:
            if not self._loop_stack:
                cont = self.helper("_CONT", _ContinueSignal)
                self.w(f"raise {cont}")
            elif self._loop_stack[-1] == "while":
                self.w("continue")
            else:
                cont = self.helper("_CONT", _ContinueSignal)
                self.w(f"raise {cont}")
            return
        if cls is ast.Empty:
            return
        raise JnsRuntimeError(f"cannot emit statement {s!r}")

    def _suite(self, s: ast.Stmt) -> None:
        """Emit ``s`` as an indented suite with its own binding scope
        (a branch may not dominate code after it)."""
        self.indent += 1
        saved = set(self.bound)
        mark = len(self.lines)
        self.stmt(s)
        if len(self.lines) == mark:
            self.w("pass")
        self.indent -= 1
        self.bound = saved

    def _tick_line(self) -> None:
        if self.interp._max_steps is not None:
            self.w(f"{self.helper('_tick', self.interp._tick)}()")

    def _cond_buffer(self, cond: ast.Expr):
        """Emit ``cond`` into a side buffer; returns (lines, code).
        The buffer carries its slice of the source map so re-splicing
        keeps line attribution intact."""
        outer = self.lines
        outer_pos = self.positions
        self.lines = []
        self.positions = []
        base = self.indent
        self.indent = 0
        code = self.emit(cond)
        buf = (self.lines, self.positions)
        self.lines = outer
        self.positions = outer_pos
        self.indent = base
        return buf, code

    def _splice(self, buf) -> None:
        pad = "    " * self.indent
        lines, positions = buf
        for line, pos in zip(lines, positions):
            self.lines.append(pad + line)
            self.positions.append(pos)

    def _while(self, s: ast.While) -> None:
        buf, code = self._cond_buffer(s.cond)
        self._loop_stack.append("while")
        if not buf[0]:
            self.w(f"while {code}:")
            self.indent += 1
            saved = set(self.bound)
            self._tick_line()
            mark = len(self.lines)
            self.stmt(s.body)
            if len(self.lines) == mark and self.interp._max_steps is None:
                self.w("pass")
            self.indent -= 1
            self.bound = saved
        else:
            self.w("while True:")
            self.indent += 1
            self._splice(buf)
            self.w(f"if not ({code}): break")
            saved = set(self.bound)
            self._tick_line()
            self.stmt(s.body)
            self.indent -= 1
            self.bound = saved
        self._loop_stack.pop()

    def _for(self, s: ast.For) -> None:
        if s.init is not None:
            self.stmt(s.init)
        buf = None
        code = None
        if s.cond is not None:
            buf, code = self._cond_buffer(s.cond)
        self._loop_stack.append("for")
        self.w("while True:")
        self.indent += 1
        if code is not None:
            if buf[0]:
                self._splice(buf)
            self.w(f"if not ({code}): break")
        self._tick_line()
        saved = set(self.bound)
        wrap = _has_direct_continue(s.body)
        if wrap:
            cont = self.helper("_CONT", _ContinueSignal)
            self.w("try:")
            self.indent += 1
            mark = len(self.lines)
            self.stmt(s.body)
            if len(self.lines) == mark:
                self.w("pass")
            self.indent -= 1
            self.w(f"except {cont}:")
            self.w("    pass")
        else:
            mark = len(self.lines)
            self.stmt(s.body)
            if len(self.lines) == mark and code is None:
                self.w("pass")
        self.bound = saved
        if s.update is not None:
            upd = self.emit(s.update)
            if upd not in self._atoms:
                self.w(upd)
        self.indent -= 1
        self._loop_stack.pop()

    # -- assembly --------------------------------------------------------

    def finish(
        self, params, body_emit, entry_tick: bool = True, entry_pos=None,
    ) -> Tuple[Any, str]:
        """Assemble, ``compile()``, and ``exec`` the function.  ``params``
        are the J&s parameter declarations (``this`` is always register
        0 — here, always the first positional argument); ``body_emit``
        is a thunk that runs the emitter over the body.  ``entry_pos``
        (the declaration's span) attributes the scaffolding the function
        spends its entry in — the header and the fuel/ABSENT prologue —
        so samples landing there still resolve to a jns span."""
        names: List[str] = []
        seen: Dict[str, int] = {}
        for i, p in enumerate(params):
            names.append("u_" + p.name)
            seen["u_" + p.name] = i
        # a duplicated parameter name maps to its last occurrence, as in
        # the dict and register frames
        for i, n in enumerate(list(names)):
            if seen[n] != i:
                names[i] = f"_shadow{i}"
        self.bound.add("u_this")
        self.bound.update(names)
        prologue: List[str] = []
        if entry_tick and self.interp._max_steps is not None:
            prologue.append(
                "    " + self.helper("_tick", self.interp._tick) + "()"
            )
        body_emit()
        locals_needed = sorted(self._locals_to_seed(names))
        if locals_needed:
            ab = self.helper("_ABSENT", ABSENT)
            chain = " = ".join(locals_needed)
            prologue.append(f"    {chain} = {ab}")
        if entry_pos is not None and not entry_pos[0]:
            entry_pos = None
        lines = prologue + self.lines
        positions = [entry_pos] * len(prologue) + self.positions
        if not lines:
            lines = ["    pass"]
            positions = [entry_pos]
        sig = ["u_this"] + names
        if self.consts:
            sig.append("*")
            sig.extend(f"{k}={k}" for k in sorted(self.consts))
        text = f"def _cg_fn({', '.join(sig)}):\n" + "\n".join(lines) + "\n"
        # line 1 is the def header; body lines follow the source map
        filename = f"<jns:{self.label}>"
        src = EmittedSource(
            text, label=self.label, filename=filename,
            linemap=[entry_pos] + positions,
        )
        g: Dict[str, Any] = dict(self.consts)
        g["__builtins__"] = {}
        code = compile(text, filename, "exec")
        # registered so tracebacks and inspect/pdb resolve emitted frames
        # to real text (re-emission after an edit overwrites in place)
        linecache.cache[filename] = (
            len(text), None, text.splitlines(True), filename,
        )
        exec(code, g)
        return g["_cg_fn"], src

    def _locals_to_seed(self, param_names) -> set:
        taken = set(param_names) | {"u_this"}
        return {n for n in self._all_names if n not in taken}


# ---------------------------------------------------------------------------
# runtime helpers referenced from emitted code (bound as constants)
# ---------------------------------------------------------------------------


def _raise_null_array():
    raise NullDereference("null array")


def _raise_oob(idx, arr):
    raise JnsRuntimeError(f"array index {idx} out of bounds (length {len(arr)})")


def _raise_null_call(name):
    raise NullDereference(f"null dereference calling {name!r}")


def _raise_non_ref_call(name, receiver):
    raise JnsRuntimeError(f"cannot call {name!r} on {receiver!r}")


def _raise_masked(name, view):
    if TRACER.enabled:
        TRACER.event("mask.blocked", field=name, view=path_str(view.path))
    raise UninitializedFieldError(f"field {name!r} is masked in view {view!r}")


def _remove_mask(o, name):
    # R-SET removes the mask (see Interp.set_field)
    view = o.view
    if TRACER.enabled:
        TRACER.event("mask.removed", field=name, view=path_str(view.path))
    o.view = View(view.path, view.masks - {name})


def _compound_add(current, r):
    if isinstance(current, str) or isinstance(r, str):
        if isinstance(current, str) and isinstance(r, str):
            v = current + r
        else:
            v = to_jstring(current) + to_jstring(r)
    else:
        v = current + r
    if isinstance(current, int) and isinstance(v, float):
        v = int(v)
    return v


def _compound_sub(current, r):
    v = current - r
    if isinstance(current, int) and isinstance(v, float):
        v = int(v)
    return v


def _compound_mul(current, r):
    v = current * r
    if isinstance(current, int) and isinstance(v, float):
        v = int(v)
    return v


def _compound_div(current, r):
    v = _jdiv(current, r)
    if isinstance(current, int) and isinstance(v, float):
        v = int(v)
    return v


def _unreachable_resolver(p):
    raise ResolveError(f"unexpected dependent path {'.'.join(p)}")


def _collect_names(node, out) -> None:
    """Every variable name a body can mention (reads, writes, decls) —
    each becomes a real Python local, seeded to ABSENT unless it is a
    parameter."""
    if isinstance(node, ast.Var):
        out.add(node.name)
    elif isinstance(node, ast.LocalDecl):
        out.add(node.name)
    for v in vars(node).values():
        if isinstance(v, (ast.Expr, ast.Stmt)):
            _collect_names(v, out)
        elif isinstance(v, (list, tuple)):
            for x in v:
                if isinstance(x, (ast.Expr, ast.Stmt)):
                    _collect_names(x, out)


def _has_direct_continue(s: ast.Stmt) -> bool:
    """Whether ``s`` contains a ``continue`` belonging to the enclosing
    loop (not swallowed by a nested loop)."""
    cls = type(s)
    if cls is ast.Continue:
        return True
    if cls in (ast.While, ast.For):
        return False
    if cls is ast.Block:
        return any(_has_direct_continue(x) for x in s.stmts)
    if cls is ast.If:
        if _has_direct_continue(s.then):
            return True
        return s.els is not None and _has_direct_continue(s.els)
    return False


# ---------------------------------------------------------------------------
# the compiler
# ---------------------------------------------------------------------------


class CodegenCompiler:
    """Emits, compiles, and caches Python functions for one interpreter.

    Functions are keyed per ``(declaration identity, receiver view
    path)`` — the slot indices and read plans baked into a body are only
    valid for receivers created as that exact path.  Counters
    (``bodies_emitted`` / ``sites_inlined``) are maintained
    unconditionally; the matching ``codegen.*`` tracer counters fire only
    while tracing is on.  ``sources`` retains the emitted text per key
    for tests, docs, and debugging.

    Eviction: ``Interp._on_table_edit`` drops the whole compiler on any
    affecting edit — emitted bodies hold lazily-resolved callee cells
    into these caches, so partial invalidation would leave live closures
    pointing at retired declarations."""

    def __init__(self, interp) -> None:
        self.interp = interp
        self.spec = interp.spec
        self.sharing = interp.sharing
        self.bodies_emitted = 0
        self.sites_inlined = 0
        self._fns: Dict[Tuple[int, Any], Any] = {}
        self._allocs: Dict[Any, Any] = {}
        #: emitted text per label; values are :class:`EmittedSource`
        #: (str subclasses carrying the per-line jns source map)
        self.sources: Dict[str, EmittedSource] = {}
        #: the same bodies keyed by compiled ``co_filename`` — how the
        #: sampling profiler resolves live frames back to jns lines
        self.by_filename: Dict[str, EmittedSource] = {}
        self._miss_fns: Dict[str, Any] = {}
        self._generic_fns: Dict[str, Any] = {}
        self._fill_plain: Dict[str, Any] = {}
        self._fill_shared: Dict[str, Any] = {}
        self._fill_store: Dict[str, Any] = {}
        self._plan_apply: Dict[str, Any] = {}
        self._dyn_retarget: Dict[str, Any] = {}
        self._unbound: Dict[str, Any] = {}

    # -- counters --------------------------------------------------------

    def note_site(self) -> None:
        self.sites_inlined += 1
        if TRACER.enabled:
            TRACER.count("codegen.sites_inlined")

    def _note_body(self) -> None:
        self.bodies_emitted += 1
        if TRACER.enabled:
            TRACER.count("codegen.bodies_emitted")

    def stats(self) -> Dict[str, int]:
        return {
            "bodies_emitted": self.bodies_emitted,
            "sites_inlined": self.sites_inlined,
        }

    # -- emitted units ---------------------------------------------------

    def method_fn(self, decl, path):
        """The compiled Python function for a method/constructor body,
        specialized for receivers viewed as ``path``."""
        key = (id(decl), path)
        fn = self._fns.get(key)
        if fn is None:
            fn = self._fns[key] = self._emit_method(decl, path)
        return fn

    def _emit_method(self, decl, path):
        label = f"{path_str(path)}.{decl.name}"
        em = _Emitter(self, path, label)
        em._all_names = set()
        _collect_names(decl.body, em._all_names)
        em._all_names = {"u_" + n for n in em._all_names}
        if TRACER.enabled:
            with TRACER.span("codegen", unit=label):
                fn, src = em.finish(
                    decl.params, lambda: em.stmt(decl.body),
                    entry_pos=decl.pos,
                )
        else:
            fn, src = em.finish(
                decl.params, lambda: em.stmt(decl.body), entry_pos=decl.pos,
            )
        self.sources[label] = src
        self.by_filename[src.filename] = src
        self._note_body()
        return fn

    def init_fn(self, decl, path):
        """The compiled function for a field initializer expression
        (receiver only: ``fn(ref)``)."""
        key = (id(decl), path)
        fn = self._fns.get(key)
        if fn is None:
            label = f"{path_str(path)}.{decl.name}=<init>"
            em = _Emitter(self, path, label)
            em._all_names = set()
            _collect_names(decl.init, em._all_names)
            em._all_names = {"u_" + n for n in em._all_names}

            def body():
                em.w(f"return {em.emit(decl.init)}")

            fn, src = em.finish((), body, entry_pos=decl.pos)
            self.sources[label] = src
            self.by_filename[src.filename] = src
            self._note_body()
            self._fns[key] = fn
        return fn

    # -- allocation ------------------------------------------------------

    def allocate(self, rtc, path, args):
        """Specialized allocation over emitted initializers — the codegen
        mirror of ``Interp._new_instance_spec`` (identical trace counts,
        schedule order, and constructor diagnostics)."""
        plan = self._allocs.get(path)
        if plan is None:
            cspec = self.spec.class_spec(path)
            steps = []
            for idx, decl, default in cspec.init_plan:
                if decl is not None:
                    steps.append((idx, self.init_fn(decl, path), None))
                else:
                    steps.append((idx, None, default))
            plan = self._allocs[path] = (cspec.layout, tuple(steps))
        layout, steps = plan
        if TRACER.enabled:
            TRACER.count("alloc")
        inst = SlottedInstance(path, layout)
        ref = Ref(inst, View(path))
        inst.view_refs[path] = ref
        slots = inst.slots
        for idx, fn, default in steps:
            slots[idx] = fn(ref) if fn is not None else default
        interp = self.interp
        found = interp.loader.find_ctor(rtc, len(args))
        if found is None:
            if args:
                raise JnsRuntimeError(
                    f"no {len(args)}-argument constructor for {path_str(path)}"
                )
        else:
            _, ctor = found
            self.method_fn(ctor, path)(ref, *args)
        return ref

    # -- per-name closures referenced from emitted code ------------------

    def unbound_raiser(self, name):
        fn = self._unbound.get(name)
        if fn is None:

            def raise_unbound():
                raise JnsRuntimeError(f"unbound variable {name!r}")

            fn = self._unbound[name] = raise_unbound
        return fn

    def fill_plain_fn(self, name):
        fn = self._fill_plain.get(name)
        if fn is None:
            spec = self.spec

            def fill(site, o):
                vp = o.view.path
                cspec = spec.class_spec(vp)
                site[0] = vp
                site[1] = cspec.slot_of.get(name)

            fn = self._fill_plain[name] = fill
        return fn

    def fill_shared_fn(self, name):
        fn = self._fill_shared.get(name)
        if fn is None:
            spec = self.spec

            def fill(site, o):
                vp = o.view.path
                cspec = spec.class_spec(vp)
                i = cspec.slot_of.get(name)
                if i is None:
                    raise JnsRuntimeError(f"no field {name!r} on {path_str(vp)}")
                site[0], site[1], site[2] = vp, i, cspec.read_plan.get(name)

            fn = self._fill_shared[name] = fill
        return fn

    def fill_store_fn(self, name):
        fn = self._fill_store.get(name)
        if fn is None:
            spec = self.spec

            def fill(site, o):
                vp = o.view.path
                cspec = spec.class_spec(vp)
                i = cspec.slot_of.get(name)
                if i is None:
                    raise JnsRuntimeError(f"no field {name!r} on {path_str(vp)}")
                site[0], site[1] = vp, i

            fn = self._fill_store[name] = fill
        return fn

    def plan_apply_fn(self, name):
        fn = self._plan_apply.get(name)
        if fn is None:
            interp = self.interp
            adapt = interp._adapt
            retarget_dyn = interp._retarget_type
            rtclass = interp.loader.rtclass

            def apply_plan(plan, v, o):
                tag = plan[0]
                if tag == 0:  # PLAN_NOOP
                    w = v.view
                    if w.path in plan[1] and not w.masks:
                        if PROFILER.enabled:
                            PROFILER.view_hit()
                        return v
                    return adapt(v, plan[2])
                if tag == 1:  # PLAN_ADAPT
                    return adapt(v, plan[1])
                target = retarget_dyn(rtclass(o.view.path), name, o)
                if target is not None:
                    return adapt(v, target)
                return v

            fn = self._plan_apply[name] = apply_plan
        return fn

    def dyn_retarget_fn(self, name):
        fn = self._dyn_retarget.get(name)
        if fn is None:
            interp = self.interp
            adapt = interp._adapt
            retarget_dyn = interp._retarget_type
            rtclass = interp.loader.rtclass

            def dyn(v, o):
                target = retarget_dyn(rtclass(o.view.path), name, o)
                if target is not None:
                    return adapt(v, target)
                return v

            fn = self._dyn_retarget[name] = dyn
        return fn

    # -- call targets ----------------------------------------------------

    def direct_call_fn(self, owner, decl, name, vp):
        """A statically-bound call to the emitted body for view path
        ``vp`` (this-calls: the receiver's path is the emitting path).
        The callee resolves lazily so recursive methods can emit."""
        interp = self.interp
        label = path_str(owner) + "." + name
        cell = [None]

        def call(receiver, *args):
            fn = cell[0]
            if fn is None:
                fn = cell[0] = self.method_fn(decl, vp)
            return interp._codegen_call(label, fn, receiver, args)

        return call

    def devirt_call_fn(self, owner, decl, name):
        """A devirtualized call over a *set* of receiver paths: one
        emitted body per path seen (slot indices differ across family
        members even when the declaration is shared)."""
        interp = self.interp
        label = path_str(owner) + "." + name
        fns: Dict[Any, Any] = {}

        def call(receiver, *args):
            vp = receiver.view.path
            fn = fns.get(vp)
            if fn is None:
                fn = fns[vp] = self.method_fn(decl, vp)
            return interp._codegen_call(label, fn, receiver, args)

        return call

    def generic_call_fn(self, name):
        fn = self._generic_fns.get(name)
        if fn is None:
            call = self.interp.call_method

            def generic(receiver, *args):
                return call(receiver, name, list(args))

            fn = self._generic_fns[name] = generic
        return fn

    def call_miss_fn(self, name):
        fn = self._miss_fns.get(name)
        if fn is None:
            interp = self.interp
            lookup = interp._lookup_method
            site_q = interp._q_site

            def miss(site, receiver, *args):
                site_q.misses += 1
                if TRACER.enabled:
                    TRACER.count("dispatch.ic_miss")
                vp = receiver.view.path
                found = lookup(vp, name)
                if found is None:
                    raise JnsRuntimeError(f"no method {name!r} on {path_str(vp)}")
                owner, decl = found
                if decl.body is None or len(decl.params) != len(args):
                    # abstract / arity errors: the shared invoke path owns
                    # the diagnostics
                    return interp._invoke(owner, decl, receiver, name, list(args))
                label = path_str(owner) + "." + name
                body = self.method_fn(decl, vp)
                if site_q._enabled:
                    site[0] = vp
                    site[1] = _make_hit(interp, label, body)
                else:
                    site[0] = None
                return interp._codegen_call(label, body, receiver, args)

            fn = self._miss_fns[name] = miss
        return fn

    # -- cold dependent-type sites ---------------------------------------

    def new_path_fn(self, t):
        interp = self.interp

        def resolve(fv):
            evaled = interp._eval_type(t, fv).pure()
            if isinstance(evaled, T.IsectType):
                evaled = evaled.parts[0]
            if not isinstance(evaled, ClassType):
                raise JnsRuntimeError(f"cannot instantiate {t!r}")
            return evaled.path

        return resolve

    def newarray_fn(self, elem_type):
        default = default_value(elem_type)

        def make(n):
            if not isinstance(n, int) or n < 0:
                raise JnsRuntimeError(f"bad array length {n!r}")
            return [default] * n

        return make

    def cast_fn(self, t):
        cast_value = self.interp.cast_value
        return lambda v, fv: cast_value(v, t, fv)

    def instanceof_fn(self, t):
        instanceof_value = self.interp.instanceof_value
        return lambda v, fv: instanceof_value(v, t, fv)

    def view_unsupported_fn(self):
        mode = self.interp.mode

        def raise_mode():
            raise JnsRuntimeError(
                f"view changes require the jns mode (running in {mode!r})"
            )

        return raise_mode

    def view_change_fn(self, target):
        """Explicit ``(view T)e``.  Non-dependent targets evaluate once
        at emission and elide the whole adapt when the source view is in
        the proven no-op set (``view_change.elided``); dependent targets
        keep the full dynamic path."""
        interp = self.interp
        if not T.paths_in(target):
            try:
                evaled = interp.table.eval_type(target, _unreachable_resolver)
            except (ResolveError, JnsError):
                evaled = None
            if evaled is not None:
                noops = self.spec.noop_view_paths(evaled)
                adapt = interp._adapt

                def static_view(v):
                    if v is None:
                        return None
                    if v.__class__ is not Ref:
                        raise JnsRuntimeError(
                            f"view change applied to non-object {v!r}"
                        )
                    if TRACER.enabled:
                        TRACER.event(
                            "view_change.explicit",
                            source=path_str(v.view.path),
                            target=str(evaled),
                        )
                    w = v.view
                    if w.path in noops and not w.masks:
                        if TRACER.enabled:
                            TRACER.count("view_change.elided")
                        if PROFILER.enabled:
                            PROFILER.view_hit()
                        result = v
                    else:
                        result = adapt(v, evaled)
                    if interp.eager_views:
                        interp.propagate_views(result)
                    return result

                static_view._static = True
                return static_view
        eval_type = interp._eval_type
        adapt = interp._adapt

        def dyn_view(v, fv):
            if v is None:
                return None
            if not isinstance(v, Ref):
                raise JnsRuntimeError(f"view change applied to non-object {v!r}")
            target_t = eval_type(target, fv)
            if TRACER.enabled:
                TRACER.event(
                    "view_change.explicit",
                    source=path_str(v.view.path),
                    target=str(target_t),
                )
            result = adapt(v, target_t)
            if interp.eager_views:
                interp.propagate_views(result)
            return result

        return dyn_view


def _make_hit(interp, label, fn):
    def hit(receiver, *args):
        return interp._codegen_call(label, fn, receiver, args)

    return hit
