"""An interactive J&s read-eval-print loop.

Class declarations accumulate into the session's program; any other
input is parsed as statements (or a single expression, which is printed)
and executed against the current program.  State does not persist
between statement inputs — families and sharing live in the declared
classes, which is where J&s programs keep their structure anyway.

Used by ``python -m repro repl``; the :class:`ReplSession` object is the
programmatic/testable interface.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import obs
from .api import cache_stats, compile_program
from .lang.classtable import JnsError
from .source.lexer import tokenize
from .source.parser import ParseError, Parser

_BANNER = (
    "J&s repl — class declarations accumulate; other input runs as "
    "statements.\nCommands: :classes  :reset  :stats  :trace on|off  "
    ":profile  :quit"
)


class ReplSession:
    """Holds the accumulated class declarations of one session."""

    def __init__(self) -> None:
        self.decls: List[str] = []

    # ------------------------------------------------------------------

    def feed(self, text: str) -> List[str]:
        """Process one input; returns the lines to display."""
        stripped = text.strip()
        if not stripped:
            return []
        if stripped == ":classes":
            return self.decls or ["(no classes declared)"]
        if stripped == ":reset":
            self.decls = []
            return ["(cleared)"]
        if stripped == ":stats":
            # Process-wide query-cache counters (the REPL compiles a fresh
            # program per input, so the global snapshot is the session's).
            return cache_stats().format().splitlines()
        if stripped in (":trace on", ":trace off"):
            if stripped.endswith("on"):
                obs.enable()
                return ["(tracing on — run some input, then :profile)"]
            obs.disable()
            return ["(tracing off)"]
        if stripped == ":profile":
            # Same unified report formatter as `repro run --profile`.
            if not obs.enabled() and not obs.TRACER.observations:
                return ["(no trace data — enable collection with :trace on)"]
            return obs.format_report(cache_stats=cache_stats()).splitlines()
        if stripped.startswith(":"):
            return [f"unknown command {stripped.split()[0]!r} (try :classes "
                    ":reset :stats :trace :profile :quit)"]
        if self._is_declaration(stripped):
            return self._add_declaration(stripped)
        return self._run_statements(stripped)

    @staticmethod
    def _is_declaration(text: str) -> bool:
        return text.startswith("class ") or text.startswith("abstract class ")

    @staticmethod
    def needs_more(text: str) -> bool:
        """Whether the input has unbalanced braces (multi-line entry)."""
        try:
            tokens = tokenize(text)
        except JnsError:
            return False
        depth = 0
        for tok in tokens:
            if tok.is_punct("{"):
                depth += 1
            elif tok.is_punct("}"):
                depth -= 1
        return depth > 0

    # ------------------------------------------------------------------

    def _program_source(self, extra: str = "") -> str:
        return "\n".join(self.decls) + "\n" + extra

    def _add_declaration(self, text: str) -> List[str]:
        candidate = self.decls + [text]
        try:
            program = compile_program("\n".join(candidate))
        except JnsError as exc:
            return [f"error: {exc}"]
        self.decls = candidate
        names = [d.name for d in program.table.unit.classes]
        return [f"ok ({len(names)} top-level classes: {', '.join(names)})"]

    def _run_statements(self, text: str) -> List[str]:
        body = self._as_statements(text)
        source = self._program_source(
            "class _Repl { void _run() { " + body + " } }"
        )
        try:
            program = compile_program(source)
        except JnsError as exc:
            return [f"error: {exc}"]
        # The specialized backend (slotted layouts, register frames) is
        # what `repro run` defaults to; the REPL matches it so :profile
        # and :stats report the same pipeline users measure elsewhere.
        interp = program.interp(mode="jns", specialized=True)
        try:
            ref = interp.new_instance(("_Repl",), ())
            interp.call_method(ref, "_run", [])
        except JnsError as exc:
            return interp.output + [f"runtime error: {exc}"]
        return interp.output

    @staticmethod
    def _as_statements(text: str) -> str:
        """A bare expression (no trailing ';') becomes ``Sys.print(expr);``
        so its value is displayed; anything else runs as statements.  End
        an expression with ';' to suppress printing."""
        from .source.tokens import EOF

        expr_parser = Parser(text)
        try:
            expr_parser.parse_expr()
            if expr_parser.peek().kind == EOF:
                return f"Sys.print({text});"
        except (ParseError, JnsError):
            pass
        return text if text.endswith((";", "}")) else text + ";"


def main() -> int:
    session = ReplSession()
    print(_BANNER)
    buffer = ""
    while True:
        prompt = "....> " if buffer else "jns> "
        try:
            line = input(prompt)
        except EOFError:
            print()
            return 0
        if not buffer and line.strip() == ":quit":
            return 0
        buffer = (buffer + "\n" + line) if buffer else line
        if ReplSession.needs_more(buffer):
            continue
        for out in session.feed(buffer):
            print(out)
        buffer = ""


if __name__ == "__main__":
    raise SystemExit(main())
