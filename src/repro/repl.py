"""An interactive J&s read-eval-print loop.

Class declarations accumulate into the session's program; any other
input is parsed as statements (or a single expression, which is printed)
and executed against the current program.  State does not persist
between statement inputs — families and sharing live in the declared
classes, which is where J&s programs keep their structure anyway.

Used by ``python -m repro repl``; the :class:`ReplSession` object is the
programmatic/testable interface.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from . import obs
from .api import cache_stats, compile_program
from .lang.classtable import JnsError
from .source.lexer import tokenize
from .source.parser import ParseError, Parser

_BANNER = (
    "J&s repl — class declarations accumulate; other input runs as "
    "statements.\nCommands: :load FILE  :check  :classes  :reset  "
    ":stats  :backend [NAME]  :trace on|off  :profile  :lines [on|off]  "
    ":flame FILE  :quit"
)


class ReplSession:
    """Holds the accumulated class declarations of one session."""

    def __init__(self) -> None:
        self.decls: List[str] = []
        #: execution backend for statement inputs (`:backend NAME`)
        self.backend: str = "codegen"
        #: `:lines on` — annotate each statement run with the per-line
        #: profile table; the last table is kept for a bare `:lines`
        self.line_profile: bool = False
        self._last_lines: List[str] = []
        # Persistent incremental session behind :load / :check — kept
        # across reloads so re-:load after an edit re-checks only the
        # changed classes (see repro.lang.incremental).
        self._inc = None
        self._inc_file: Optional[str] = None

    # ------------------------------------------------------------------

    def feed(self, text: str) -> List[str]:
        """Process one input; returns the lines to display."""
        stripped = text.strip()
        if not stripped:
            return []
        if stripped == ":classes":
            return self.decls or ["(no classes declared)"]
        if stripped == ":reset":
            self.decls = []
            self._inc = None
            self._inc_file = None
            return ["(cleared)"]
        if stripped.startswith(":load"):
            parts = stripped.split(None, 1)
            if len(parts) != 2:
                return ["usage: :load FILE"]
            return self._load(parts[1])
        if stripped == ":check":
            if self._inc is None:
                return ["(no file loaded — use :load FILE first)"]
            return self._report_check()
        if stripped == ":stats":
            # Process-wide query-cache counters (the REPL compiles a fresh
            # program per input, so the global snapshot is the session's).
            return cache_stats().format().splitlines()
        if stripped.startswith(":backend"):
            from .runtime.interp import BACKENDS

            parts = stripped.split(None, 1)
            if len(parts) == 1:
                return [f"backend: {self.backend} (choices: "
                        f"{', '.join(BACKENDS)})"]
            if parts[1] not in BACKENDS:
                return [f"unknown backend {parts[1]!r} (choices: "
                        f"{', '.join(BACKENDS)})"]
            self.backend = parts[1]
            return [f"(backend set to {self.backend})"]
        if stripped in (":trace on", ":trace off"):
            if stripped.endswith("on"):
                obs.enable()
                return ["(tracing on — run some input, then :profile)"]
            obs.disable()
            return ["(tracing off)"]
        if stripped == ":profile":
            # Same unified report formatter as `repro run --profile`.
            if not obs.enabled() and not obs.TRACER.observations:
                return ["(no trace data — enable collection with :trace on)"]
            return obs.format_report(cache_stats=cache_stats()).splitlines()
        if stripped in (":lines", ":lines on", ":lines off"):
            if stripped.endswith(" on"):
                self.line_profile = True
                return ["(line profiling on — statement runs are annotated;"
                        " bare :lines re-shows the last table)"]
            if stripped.endswith(" off"):
                self.line_profile = False
                return ["(line profiling off)"]
            if not self._last_lines:
                return ["(no line profile yet — :lines on, then run input)"]
            return list(self._last_lines)
        if stripped.startswith(":flame"):
            parts = stripped.split(None, 1)
            if len(parts) != 2:
                return ["usage: :flame FILE"]
            if not obs.TRACER.observations:
                return ["(no trace data — enable collection with :trace on)"]
            try:
                obs.TRACER.write_collapsed(parts[1])
            except OSError as exc:
                return [f"error: cannot write {parts[1]}: {exc.strerror}"]
            return [f"(collapsed stacks written to {parts[1]} — feed to "
                    "flamegraph.pl or speedscope)"]
        if stripped.startswith(":"):
            return [f"unknown command {stripped.split()[0]!r} (try :load "
                    ":check :classes :reset :stats :backend :trace "
                    ":profile :lines :flame :quit)"]
        if self._is_declaration(stripped):
            return self._add_declaration(stripped)
        return self._run_statements(stripped)

    def _load(self, path: str) -> List[str]:
        """Load (or re-load) a source file into the persistent
        incremental session; the file's classes become the session
        program.  A re-:load of an edited file goes through
        ``apply_edit``, so only the changed slice is re-checked."""
        from .lang.incremental import IncrementalChecker

        try:
            with open(path) as f:
                source = f.read()
        except OSError as exc:
            return [f"error: cannot read {path}: {exc.strerror}"]
        if self._inc is None or self._inc_file != path:
            self._inc = IncrementalChecker(source, file=path)
            self._inc_file = path
            stats = self._inc.last_stats
        else:
            stats = self._inc.apply_edit(source)
        head = f"loaded {path} [{stats['strategy']}"
        if stats.get("dirty"):
            head += f", dirty: {', '.join(stats['dirty'])}"
        head += f", {stats['edit_ms']:.1f}ms]"
        lines = [head]
        lines.extend(self._report_check())
        if not self._inc.check().has_errors:
            self.decls = [source.rstrip()]
        return lines

    def _report_check(self) -> List[str]:
        assert self._inc is not None
        sink = self._inc.check()
        lines: List[str] = []
        if len(sink):
            lines.extend(sink.render(self._inc.source).splitlines())
        acct = self._inc.last_stats.get("check")
        tail = "ok" if not sink.has_errors else f"{len(sink.errors)} error(s)"
        if acct:
            tail += (
                f"  (recomputed {acct['recomputed']}, revalidated "
                f"{acct['revalidated']}, reused {acct['reused']})"
            )
        lines.append(tail)
        return lines

    @staticmethod
    def _is_declaration(text: str) -> bool:
        return text.startswith("class ") or text.startswith("abstract class ")

    @staticmethod
    def needs_more(text: str) -> bool:
        """Whether the input has unbalanced braces (multi-line entry)."""
        try:
            tokens = tokenize(text)
        except JnsError:
            return False
        depth = 0
        for tok in tokens:
            if tok.is_punct("{"):
                depth += 1
            elif tok.is_punct("}"):
                depth -= 1
        return depth > 0

    # ------------------------------------------------------------------

    def _program_source(self, extra: str = "") -> str:
        return "\n".join(self.decls) + "\n" + extra

    def _add_declaration(self, text: str) -> List[str]:
        candidate = self.decls + [text]
        try:
            program = compile_program("\n".join(candidate))
        except JnsError as exc:
            return [f"error: {exc}"]
        self.decls = candidate
        names = [d.name for d in program.table.unit.classes]
        return [f"ok ({len(names)} top-level classes: {', '.join(names)})"]

    def _run_statements(self, text: str) -> List[str]:
        body = self._as_statements(text)
        source = self._program_source(
            "class _Repl { void _run() { " + body + " } }"
        )
        try:
            program = compile_program(source)
        except JnsError as exc:
            return [f"error: {exc}"]
        # The codegen backend is what `repro run` defaults to; the REPL
        # matches it so :profile and :stats report the same pipeline
        # users measure elsewhere (switch with :backend NAME).
        if self.line_profile:
            return self._run_profiled(program, source)
        interp = program.interp(mode="jns", backend=self.backend)
        try:
            ref = interp.new_instance(("_Repl",), ())
            interp.call_method(ref, "_run", [])
        except JnsError as exc:
            return interp.output + [f"runtime error: {exc}"]
        return interp.output

    def _run_profiled(self, program, source: str) -> List[str]:
        """`:lines on` path: run under the deterministic line profiler
        and append the annotated heatmap (kept for a bare `:lines`)."""
        from .profiler import PROFILE_LOCK, PROFILER, merge_reports

        with PROFILE_LOCK:
            interp = program.interp(
                mode="jns", backend=self.backend, line_profile=True
            )
            PROFILER.start()
            try:
                ref = interp.new_instance(("_Repl",), ())
                interp.call_method(ref, "_run", [])
            except JnsError as exc:
                return interp.output + [f"runtime error: {exc}"]
            finally:
                PROFILER.stop()
            snap = PROFILER.snapshot()
        report = merge_reports(
            source, "<repl>", snap, None, backend_det=self.backend
        )
        self._last_lines = report.render_text(context=1).splitlines()
        return interp.output + self._last_lines

    @staticmethod
    def _as_statements(text: str) -> str:
        """A bare expression (no trailing ';') becomes ``Sys.print(expr);``
        so its value is displayed; anything else runs as statements.  End
        an expression with ';' to suppress printing."""
        from .source.tokens import EOF

        expr_parser = Parser(text)
        try:
            expr_parser.parse_expr()
            if expr_parser.peek().kind == EOF:
                return f"Sys.print({text});"
        except (ParseError, JnsError):
            pass
        return text if text.endswith((";", "}")) else text + ";"


def main() -> int:
    session = ReplSession()
    print(_BANNER)
    buffer = ""
    while True:
        prompt = "....> " if buffer else "jns> "
        try:
            line = input(prompt)
        except EOFError:
            print()
            return 0
        if not buffer and line.strip() == ":quit":
            return 0
        buffer = (buffer + "\n" + line) if buffer else line
        if ReplSession.needs_more(buffer):
            continue
        for out in session.feed(buffer):
            print(out)
        buffer = ""


if __name__ == "__main__":
    raise SystemExit(main())
