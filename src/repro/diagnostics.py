"""Structured diagnostics for the J&s pipeline.

Every layer of the compiler and runtime reports failures through the
same vocabulary:

* :class:`Span` — a source region (1-based line/col, optional file);
* :class:`Diagnostic` — a stable error code (``JNS-PARSE-001``, …), a
  severity, a message, an optional span, and optional notes;
* :class:`DiagnosticSink` — an accumulator so that one ``check``
  invocation can report *all* errors in a file instead of aborting on
  the first;
* :func:`render` — a human renderer that prints the offending source
  line with a caret under the span.

The module is dependency-free (even :mod:`repro.errors` imports from
here) so that the front end, the semantic layers, and the runtime can
all share it without cycles.

Error-code registry
-------------------

Codes are grouped by pipeline stage; the numeric suffix is stable and
may be relied upon by tooling (see ``--json`` on ``python -m repro
check``).  Add new codes at the end of a group — never renumber.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Severities, most severe first.
ERROR = "error"
WARNING = "warning"
NOTE = "note"
SEVERITIES = (ERROR, WARNING, NOTE)

#: The registry of stable diagnostic codes.  The CLI and the docs
#: (docs/IMPLEMENTATION.md) render this table; tests assert membership.
CODES: Dict[str, str] = {
    # -- lexer ---------------------------------------------------------
    "JNS-LEX-001": "unexpected character",
    "JNS-LEX-002": "unterminated string literal",
    "JNS-LEX-003": "unterminated block comment",
    "JNS-LEX-004": "newline in string literal",
    # -- parser --------------------------------------------------------
    "JNS-PARSE-001": "unexpected token",
    "JNS-PARSE-002": "expected a type or declaration",
    "JNS-PARSE-003": "invalid assignment or increment target",
    "JNS-PARSE-004": "method body missing or misplaced",
    "JNS-PARSE-005": "expression or type nesting too deep",
    # -- name resolution ----------------------------------------------
    "JNS-RESOLVE-001": "unknown name",
    "JNS-RESOLVE-002": "unknown type name or class",
    "JNS-RESOLVE-003": "unknown Sys native",
    "JNS-RESOLVE-004": "cyclic inheritance",
    "JNS-RESOLVE-005": "duplicate class declaration",
    "JNS-RESOLVE-006": "unresolvable construct",
    # -- static semantics ---------------------------------------------
    "JNS-TYPE-001": "type error",
    "JNS-TYPE-002": "cyclic inheritance (checker)",
    "JNS-TYPE-003": "incompatible initializer type",
    "JNS-TYPE-004": "incompatible return",
    "JNS-TYPE-005": "operand type mismatch",
    "JNS-TYPE-006": "bad call arguments",
    "JNS-TYPE-007": "unknown member",
    "JNS-TYPE-008": "invalid assignment",
    "JNS-TYPE-009": "duplicate local variable",
    "JNS-TYPE-010": "bad instantiation",
    "JNS-TYPE-011": "use of masked fields",
    "JNS-TYPE-012": "sharing constraint does not hold",
    "JNS-TYPE-013": "illegal shares clause",
    "JNS-TYPE-014": "unjustified view change",
    "JNS-TYPE-015": "bad cast",
    "JNS-TYPE-016": "overriding arity mismatch",
    # -- runtime -------------------------------------------------------
    "JNS-RUN-000": "runtime error",
    "JNS-RUN-001": "null dereference",
    "JNS-RUN-002": "uninitialized or masked field",
    "JNS-RUN-003": "unknown field, method, or variable",
    "JNS-RUN-004": "arity mismatch",
    "JNS-RUN-005": "failed cast or view change",
    "JNS-RUN-006": "array error",
    "JNS-RUN-007": "arithmetic error",
    "JNS-RUN-008": "Sys.fail",
    "JNS-RUN-009": "calculus machine stuck",
    # -- resource guards ----------------------------------------------
    "JNS-RES-001": "step budget exhausted",
    "JNS-RES-002": "call depth limit exceeded",
    "JNS-RES-003": "calculus fuel exhausted",
    "JNS-RES-004": "host stack exhausted",
    # -- catch-all -----------------------------------------------------
    "JNS-GEN-000": "unclassified error",
}


@dataclass(frozen=True)
class Span:
    """A source region.  Lines and columns are 1-based; ``end_*`` default
    to the start so a bare position renders as a single caret."""

    line: int
    col: int
    end_line: Optional[int] = None
    end_col: Optional[int] = None
    file: Optional[str] = None

    @classmethod
    def from_pos(cls, pos: Optional[Tuple[int, int]], file: Optional[str] = None):
        """Build from an AST ``pos`` tuple ``(line, col)``; None-safe."""
        if pos is None:
            return None
        return cls(line=pos[0], col=pos[1], file=file)

    @classmethod
    def from_token(cls, token, file: Optional[str] = None) -> "Span":
        """Build from a lexer token, spanning its text."""
        width = max(len(getattr(token, "value", "") or ""), 1)
        return cls(
            line=token.line,
            col=token.col,
            end_line=token.line,
            end_col=token.col + width - 1,
            file=file,
        )

    def with_file(self, file: Optional[str]) -> "Span":
        if file is None or self.file is not None:
            return self
        return Span(self.line, self.col, self.end_line, self.end_col, file)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "line": self.line,
            "col": self.col,
            "end_line": self.end_line if self.end_line is not None else self.line,
            "end_col": self.end_col if self.end_col is not None else self.col,
        }

    def __str__(self) -> str:
        prefix = f"{self.file}:" if self.file else ""
        return f"{prefix}{self.line}:{self.col}"


@dataclass
class Diagnostic:
    """One reportable condition with a stable code."""

    code: str
    severity: str
    message: str
    span: Optional[Span] = None
    where: Optional[str] = None  # semantic context, e.g. "Main.main"
    notes: List[str] = field(default_factory=list)
    #: Optional refutation tree (a serialized
    #: :class:`repro.lang.provenance.Derivation`) explaining *why* the
    #: judgment behind this diagnostic failed; populated by the type
    #: checker under ``check --json --explain``.
    explain: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    def __str__(self) -> str:
        # Keep the historical "<where>: <message>" shape so existing
        # callers (and raise_on_error aggregates) stay readable.
        if self.where:
            return f"{self.where}: {self.message}"
        if self.span is not None:
            return f"{self.span}: {self.message}"
        return self.message

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
        }
        if self.span is not None:
            payload["span"] = self.span.to_dict()
            if self.span.file:
                payload["file"] = self.span.file
        if self.where:
            payload["where"] = self.where
        if self.notes:
            payload["notes"] = list(self.notes)
        if self.explain is not None:
            payload["explain"] = self.explain
        return payload


class DiagnosticSink:
    """Accumulates diagnostics across pipeline stages.

    A sink optionally carries a default ``file`` that is stamped onto
    spans that do not name one, so layers below the CLI never need to
    know which file they are compiling.
    """

    def __init__(self, file: Optional[str] = None) -> None:
        self.file = file
        self.diagnostics: List[Diagnostic] = []

    # -- recording ------------------------------------------------------

    def add(self, diag: Diagnostic) -> Diagnostic:
        if diag.span is not None:
            diag.span = diag.span.with_file(self.file)
        self.diagnostics.append(diag)
        return diag

    def emit(
        self,
        code: str,
        severity: str,
        message: str,
        span: Optional[Span] = None,
        where: Optional[str] = None,
        notes: Iterable[str] = (),
    ) -> Diagnostic:
        return self.add(
            Diagnostic(code, severity, message, span=span, where=where, notes=list(notes))
        )

    def error(self, code: str, message: str, **kw) -> Diagnostic:
        return self.emit(code, ERROR, message, **kw)

    def warning(self, code: str, message: str, **kw) -> Diagnostic:
        return self.emit(code, WARNING, message, **kw)

    def add_exc(self, exc: BaseException, where: Optional[str] = None) -> Diagnostic:
        """Record a :class:`repro.errors.JnsError` (or anything carrying
        ``code``/``span``/``notes`` attributes) as a diagnostic."""
        return self.add(
            Diagnostic(
                code=getattr(exc, "code", "JNS-GEN-000"),
                severity=getattr(exc, "severity", ERROR),
                message=str(exc),
                span=getattr(exc, "span", None),
                where=where,
                notes=list(getattr(exc, "notes", ()) or ()),
            )
        )

    def extend(self, diags: Iterable[Diagnostic]) -> None:
        for d in diags:
            self.add(d)

    # -- inspection -----------------------------------------------------

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == ERROR for d in self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    # -- output ---------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "ok": not self.has_errors,
                "diagnostics": [d.to_dict() for d in self.diagnostics],
            },
            indent=2,
        )

    def render(self, source: Optional[str] = None) -> str:
        return "\n".join(render(d, source) for d in self.diagnostics)


def render(diag: Diagnostic, source: Optional[str] = None) -> str:
    """Render one diagnostic, caret-pointing into ``source`` when the
    diagnostic has a span and the source text is available::

        demo.jns:3:11: error: expected ';' [JNS-PARSE-001]
            int x = 1
                     ^
          note: ...
    """
    lines: List[str] = []
    location = f"{diag.span}: " if diag.span is not None else ""
    context = f" (in {diag.where})" if diag.where and diag.span is not None else ""
    head = f"{location}{diag.severity}: {diag.message}{context} [{diag.code}]"
    if diag.span is None and diag.where:
        head = f"{diag.where}: {diag.severity}: {diag.message} [{diag.code}]"
    lines.append(head)
    if diag.span is not None and source is not None:
        src_lines = source.splitlines()
        if 1 <= diag.span.line <= len(src_lines):
            text = src_lines[diag.span.line - 1]
            lines.append(f"    {text}")
            start = max(diag.span.col, 1)
            end = diag.span.end_col if (
                diag.span.end_col is not None
                and (diag.span.end_line is None or diag.span.end_line == diag.span.line)
                and diag.span.end_col >= start
            ) else start
            end = min(end, max(len(text), start))
            lines.append("    " + " " * (start - 1) + "^" * (end - start + 1))
    for note in diag.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)
