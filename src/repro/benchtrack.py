"""Cross-PR benchmark history and the regression gate.

Every ``BENCH_*.json`` regeneration can be appended to
``BENCH_history.jsonl`` (one JSON object per line: git sha, ISO date,
and the flattened per-driver numbers of every benchmark file present),
giving the repo a perf trajectory instead of a single snapshot.
``repro bench-diff`` compares the two most recent history entries and
exits nonzero when a metric with a known direction regresses past a
configurable relative threshold.

Metric direction is inferred from the metric name (``seconds_*`` and
``*_overhead`` are lower-is-better, ``speedup_*``/``*_rps`` are
higher-is-better); unrecognized metrics are reported informationally
but never gate.  ``scripts/bench_history.py`` is the thin CLI wrapper
the CI bench jobs call after regenerating a benchmark file.
"""

from __future__ import annotations

import json
import os
import subprocess
from datetime import datetime, timezone
from typing import Any, Dict, List, Optional, Tuple

HISTORY_NAME = "BENCH_history.jsonl"

#: metric-name fragments with a known optimization direction
_LOWER_BETTER = (
    "seconds", "_ms", "_ns", "overhead", "pause", "slowdown", "wall",
    "p95", "p99", "cold",
)
_HIGHER_BETTER = (
    "speedup", "rps", "req_per_s", "requests_per_s", "throughput",
    "hit_rate", "warm_over_cold",
)


def metric_direction(name: str) -> Optional[int]:
    """-1 if lower is better, +1 if higher is better, None if unknown.
    Checked on the final path segment so container names can't flip a
    leaf metric's direction."""
    leaf = name.rsplit(".", 1)[-1].lower()
    for frag in _HIGHER_BETTER:
        if frag in leaf:
            return 1
    for frag in _LOWER_BETTER:
        if frag in leaf:
            return -1
    return None


def flatten(obj: Any, prefix: str = "") -> Dict[str, float]:
    """Dotted-path -> number map over one benchmark JSON document
    (non-numeric leaves are dropped; booleans are not numbers here)."""
    out: Dict[str, float] = {}
    if isinstance(obj, dict):
        for k, v in sorted(obj.items()):
            out.update(flatten(v, f"{prefix}{k}."))
    elif isinstance(obj, (int, float)) and not isinstance(obj, bool):
        out[prefix[:-1]] = float(obj)
    return out


def discover_bench_files(root: str) -> List[str]:
    """The ``BENCH_*.json`` files at the repo root (history excluded)."""
    found = []
    for name in sorted(os.listdir(root)):
        if (
            name.startswith("BENCH_")
            and name.endswith(".json")
            and os.path.isfile(os.path.join(root, name))
        ):
            found.append(name)
    return found


def git_sha(root: str) -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except OSError:
        pass
    return "unknown"


def collect_entry(
    root: str, only: Optional[List[str]] = None, sha: Optional[str] = None
) -> Dict[str, Any]:
    """One history entry for the benchmark files currently at ``root``
    (``only`` restricts to the named files)."""
    benchmarks: Dict[str, Dict[str, float]] = {}
    for name in discover_bench_files(root):
        if only and name not in only:
            continue
        try:
            with open(os.path.join(root, name)) as fh:
                doc = json.load(fh)
        except (OSError, ValueError):
            continue
        benchmarks[name[: -len(".json")]] = flatten(doc)
    return {
        "sha": sha if sha is not None else git_sha(root),
        "date": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "benchmarks": benchmarks,
    }


def load_history(path: str) -> List[Dict[str, Any]]:
    entries: List[Dict[str, Any]] = []
    if not os.path.exists(path):
        return entries
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except ValueError:
                continue  # a torn write must not kill the trajectory
    return entries


def append_history(
    root: str,
    history_path: Optional[str] = None,
    only: Optional[List[str]] = None,
    sha: Optional[str] = None,
    force: bool = False,
) -> Optional[Dict[str, Any]]:
    """Append the current benchmark numbers; returns the entry written,
    or None when it would exactly duplicate the latest one (same sha,
    same numbers) and ``force`` is off."""
    if history_path is None:
        history_path = os.path.join(root, HISTORY_NAME)
    entry = collect_entry(root, only=only, sha=sha)
    if not entry["benchmarks"]:
        return None
    if not force:
        prior = load_history(history_path)
        if prior:
            last = prior[-1]
            if (
                last.get("sha") == entry["sha"]
                and last.get("benchmarks") == entry["benchmarks"]
            ):
                return None
    with open(history_path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


# ---------------------------------------------------------------------------
# diffing
# ---------------------------------------------------------------------------


def _metrics(entry: Dict[str, Any]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for bench, flat in entry.get("benchmarks", {}).items():
        for k, v in flat.items():
            out[f"{bench}.{k}"] = v
    return out


def diff_entries(
    old: Dict[str, Any], new: Dict[str, Any], threshold: float = 0.25
) -> Tuple[List[str], List[str]]:
    """(report lines, regression lines).  A regression is a directed
    metric moving against its direction by more than ``threshold``
    relative to the old value."""
    a, b = _metrics(old), _metrics(new)
    lines: List[str] = [
        f"comparing {old.get('sha', '?')[:12]} ({old.get('date', '?')})"
        f" -> {new.get('sha', '?')[:12]} ({new.get('date', '?')})",
    ]
    regressions: List[str] = []
    for name in sorted(set(a) & set(b)):
        va, vb = a[name], b[name]
        if va == vb:
            continue
        rel = (vb - va) / abs(va) if va else float("inf")
        direction = metric_direction(name)
        marker = " "
        if direction is not None:
            regressed = rel * direction < 0 and abs(rel) > threshold
            improved = rel * direction > 0 and abs(rel) > threshold
            if regressed:
                marker = "!"
                regressions.append(
                    f"{name}: {va:g} -> {vb:g} ({rel:+.1%},"
                    f" {'lower' if direction < 0 else 'higher'}-is-better)"
                )
            elif improved:
                marker = "+"
        lines.append(f"  {marker} {name}: {va:g} -> {vb:g} ({rel:+.1%})")
    for r in regressions:
        lines.append(f"REGRESSION past {threshold:.0%}: {r}")
    return lines, regressions


def bench_diff(
    history_path: str, threshold: float = 0.25
) -> Tuple[int, List[str]]:
    """Compare the two latest history entries.  Returns (exit status,
    report lines): 0 = ok (including a too-short history, which is a
    fact to report, not an error), 1 = regression past the threshold."""
    entries = load_history(history_path)
    if len(entries) < 2:
        return 0, [
            f"bench-diff: {len(entries)} entr"
            f"{'y' if len(entries) == 1 else 'ies'} in {history_path};"
            " need two to compare"
        ]
    lines, regressions = diff_entries(
        entries[-2], entries[-1], threshold=threshold
    )
    return (1 if regressions else 0), lines
