"""Evaluation programs of the paper, ported to the J&s surface language.

* :mod:`repro.programs.jolden`  — the ten jolden benchmarks (Table 1);
* :mod:`repro.programs.trees`   — the binary-tree view-change benchmark
  (Table 2);
* :mod:`repro.programs.lambdac` — the lambda compiler (Section 7.3 and
  Figure 20);
* :mod:`repro.programs.corona`  — the CorONA evolution case study
  (Section 7.4).
"""

from functools import lru_cache

from ..api import Program, compile_program


@lru_cache(maxsize=None)
def _compile_cached(source: str, check: bool = True) -> Program:
    return compile_program(source, check=check)


def cached_program(source: str, check: bool = True) -> Program:
    """Compile a program once per process (sources are module constants)."""
    return _compile_cached(source, check)
