"""Evaluation programs of the paper, ported to the J&s surface language.

* :mod:`repro.programs.jolden`  — the ten jolden benchmarks (Table 1);
* :mod:`repro.programs.trees`   — the binary-tree view-change benchmark
  (Table 2);
* :mod:`repro.programs.lambdac` — the lambda compiler (Section 7.3 and
  Figure 20);
* :mod:`repro.programs.corona`  — the CorONA evolution case study
  (Section 7.4).
"""

from ..api import Program, compile_program
from ..lang.queries import MISS, QueryEngine

#: Bounded, clearable compile cache (sources are module constants, so a
#: few dozen entries covers every evaluation program; the bound keeps
#: long fuzzing runs from growing memory without limit).  Cleared by
#: ``repro.clear_caches()`` like every other query table.
_ENGINE = QueryEngine("programs")
_COMPILE = _ENGINE.query("compile", maxsize=32)


def cached_program(source: str, check: bool = True) -> Program:
    """Compile a program once per process (sources are module constants)."""
    key = (source, check)
    program = _COMPILE.get(key)  # a hit refreshes the LRU position
    if program is not MISS:
        return program
    return _COMPILE.put(key, compile_program(source, check=check))
