"""jolden ``mst``: minimum spanning tree over a dense random graph.

Vertices form a linked list (as in Olden); Prim's algorithm repeatedly
scans the list for the closest fringe vertex and relaxes distances
through per-vertex weight tables."""

from __future__ import annotations

from typing import Any

from .common import run_benchmark, time_benchmark

NAME = "mst"
DEFAULT_ARGS = (48, 321)  # vertices, seed

SOURCE = """
class Vertex {
  int id;
  int[] weights;     // weight to every vertex (symmetric, computed once)
  int minDist;
  boolean inTree;
  Vertex next;
  Vertex(int id, int n) {
    this.id = id;
    this.weights = new int[n];
    this.minDist = 1000000;
  }
}
class Main {
  // Olden computes edge weights with a hash of the endpoint ids
  int weight(int i, int j, int n, int seed) {
    int v = (i * 31 + j * 17 + seed) % 2048;
    if (v < 0) { v = -v; }
    return v + 1;
  }
  Vertex makeGraph(int n, int seed) {
    Vertex head = null;
    Vertex[] all = new Vertex[n];
    for (int i = n - 1; i >= 0; i--) {
      Vertex v = new Vertex(i, n);
      v.next = head;
      head = v;
      all[i] = v;
    }
    for (int i = 0; i < n; i++) {
      for (int j = 0; j < n; j++) {
        int w = weight(Sys.min(i, j), Sys.max(i, j), n, seed);
        all[i].weights[j] = w;
      }
    }
    return head;
  }
  int run(int n, int seed) {
    Vertex graph = makeGraph(n, seed);
    graph.minDist = 0;
    int cost = 0;
    for (int step = 0; step < n; step++) {
      // find the closest fringe vertex by walking the list (blue rule)
      Vertex best = null;
      Vertex v = graph;
      while (v != null) {
        if (!v.inTree) {
          if (best == null || v.minDist < best.minDist) { best = v; }
        }
        v = v.next;
      }
      best.inTree = true;
      cost = cost + best.minDist;
      // relax distances through the new tree vertex
      v = graph;
      while (v != null) {
        if (!v.inTree) {
          int w = best.weights[v.id];
          if (w < v.minDist) { v.minDist = w; }
        }
        v = v.next;
      }
    }
    return cost;
  }
}
"""


def run(mode: str = "jns", *args) -> Any:
    return run_benchmark(SOURCE, mode, args or DEFAULT_ARGS)


def timed(mode: str, *args):
    return time_benchmark(SOURCE, mode, args or DEFAULT_ARGS)
