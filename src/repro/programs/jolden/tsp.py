"""jolden ``tsp``: closest-point heuristic for the traveling salesman
problem.

Cities live in a spatial binary tree (median splits alternating by
dimension); subtours are circular doubly-linked lists threaded through
the tree nodes and merged bottom-up by splicing at the closest pair, as
in the Olden code."""

from __future__ import annotations

from typing import Any

from .common import RANDOM_SRC, run_benchmark, time_benchmark

NAME = "tsp"
DEFAULT_ARGS = (31, 99)  # number of cities, seed

SOURCE = RANDOM_SRC + """
class Tree {
  double x; double y;
  Tree left; Tree right;
  Tree prev; Tree next;   // circular tour links
}
class Main {
  double dist(Tree a, Tree b) {
    double dx = a.x - b.x;
    double dy = a.y - b.y;
    return Sys.sqrt(dx * dx + dy * dy);
  }
  // build a spatial tree of n cities inside the box
  Tree build(int n, double x0, double x1, double y0, double y1,
             boolean splitX, Rand r) {
    if (n == 0) { return null; }
    Tree t = new Tree();
    if (splitX) {
      double mid = (x0 + x1) / 2.0;
      t.x = mid;
      t.y = y0 + r.nextDouble() * (y1 - y0);
      t.left = build((n - 1) / 2, x0, mid, y0, y1, false, r);
      t.right = build(n - 1 - (n - 1) / 2, mid, x1, y0, y1, false, r);
    } else {
      double mid = (y0 + y1) / 2.0;
      t.y = mid;
      t.x = x0 + r.nextDouble() * (x1 - x0);
      t.left = build((n - 1) / 2, x0, x1, y0, mid, true, r);
      t.right = build(n - 1 - (n - 1) / 2, x0, x1, mid, y1, true, r);
    }
    return t;
  }
  Tree makeSelfTour(Tree t) {
    t.prev = t; t.next = t;
    return t;
  }
  // splice tour b into tour a at the closest pair of cities
  Tree mergeTours(Tree a, Tree b) {
    if (a == null) { return b; }
    if (b == null) { return a; }
    Tree bestA = a; Tree bestB = b;
    double best = 1.0e30;
    Tree p = a;
    boolean moreA = true;
    while (moreA) {
      Tree q = b;
      boolean moreB = true;
      while (moreB) {
        double d = dist(p, q);
        if (d < best) { best = d; bestA = p; bestB = q; }
        q = q.next;
        if (q == b) { moreB = false; }
      }
      p = p.next;
      if (p == a) { moreA = false; }
    }
    Tree an = bestA.next;
    Tree bn = bestB.next;
    bestA.next = bn; bn.prev = bestA;
    bestB.next = an; an.prev = bestB;
    return bestA;
  }
  // nearest insertion of a single city into a tour
  Tree insertCity(Tree tour, Tree c) {
    if (tour == null) { return makeSelfTour(c); }
    Tree best = tour;
    double bestCost = 1.0e30;
    Tree p = tour;
    boolean more = true;
    while (more) {
      double cost = dist(p, c) + dist(c, p.next) - dist(p, p.next);
      if (cost < bestCost) { bestCost = cost; best = p; }
      p = p.next;
      if (p == tour) { more = false; }
    }
    Tree nxt = best.next;
    best.next = c; c.prev = best;
    c.next = nxt; nxt.prev = c;
    return c;
  }
  Tree tsp(Tree t) {
    if (t == null) { return null; }
    Tree a = tsp(t.left);
    Tree b = tsp(t.right);
    Tree merged = mergeTours(a, b);
    return insertCity(merged, t);
  }
  double tourLength(Tree tour) {
    double total = 0.0;
    Tree p = tour;
    boolean more = true;
    while (more) {
      total = total + dist(p, p.next);
      p = p.next;
      if (p == tour) { more = false; }
    }
    return total;
  }
  int tourSize(Tree tour) {
    int n = 0;
    Tree p = tour;
    boolean more = true;
    while (more) {
      n = n + 1;
      p = p.next;
      if (p == tour) { more = false; }
    }
    return n;
  }
  double run(int n, int seed) {
    Rand r = new Rand(seed);
    Tree cities = build(n, 0.0, 1.0, 0.0, 1.0, true, r);
    Tree tour = tsp(cities);
    if (tourSize(tour) != n) { Sys.fail("tour does not visit every city"); }
    return tourLength(tour);
  }
}
"""


def run(mode: str = "jns", *args) -> Any:
    return run_benchmark(SOURCE, mode, args or DEFAULT_ARGS)


def timed(mode: str, *args):
    return time_benchmark(SOURCE, mode, args or DEFAULT_ARGS)
