"""jolden ``em3d``: electromagnetic wave propagation on a bipartite graph.

E-field and H-field nodes form a bipartite graph; each node's value is
updated from its out-neighbors' values weighted by per-edge coefficients
(irregular array-of-references traversal)."""

from __future__ import annotations

from typing import Any

from .common import RANDOM_SRC, run_benchmark, time_benchmark

NAME = "em3d"
DEFAULT_ARGS = (128, 4, 10, 777)  # nodes per side, degree, iterations, seed

SOURCE = RANDOM_SRC + """
class GNode {
  double value;
  GNode[] toNodes;
  double[] coeffs;
  void computeNewValue() {
    for (int i = 0; i < toNodes.length; i++) {
      value = value - coeffs[i] * toNodes[i].value;
    }
  }
}
class Main {
  GNode[] makeSide(int n, Rand r) {
    GNode[] side = new GNode[n];
    for (int i = 0; i < n; i++) {
      GNode g = new GNode();
      g.value = r.nextDouble();
      side[i] = g;
    }
    return side;
  }
  void wire(GNode[] from, GNode[] to, int degree, Rand r) {
    for (int i = 0; i < from.length; i++) {
      GNode g = from[i];
      g.toNodes = new GNode[degree];
      g.coeffs = new double[degree];
      for (int j = 0; j < degree; j++) {
        g.toNodes[j] = to[r.nextInt(to.length)];
        g.coeffs[j] = r.nextDouble();
      }
    }
  }
  double run(int n, int degree, int iters, int seed) {
    Rand r = new Rand(seed);
    GNode[] eNodes = makeSide(n, r);
    GNode[] hNodes = makeSide(n, r);
    wire(eNodes, hNodes, degree, r);
    wire(hNodes, eNodes, degree, r);
    for (int it = 0; it < iters; it++) {
      for (int i = 0; i < n; i++) { eNodes[i].computeNewValue(); }
      for (int i = 0; i < n; i++) { hNodes[i].computeNewValue(); }
    }
    double sum = 0.0;
    for (int i = 0; i < n; i++) {
      sum = sum + eNodes[i].value + hNodes[i].value;
    }
    return sum;
  }
}
"""


def run(mode: str = "jns", *args) -> Any:
    return run_benchmark(SOURCE, mode, args or DEFAULT_ARGS)


def timed(mode: str, *args):
    return time_benchmark(SOURCE, mode, args or DEFAULT_ARGS)
