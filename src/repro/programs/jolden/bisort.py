"""jolden ``bisort``: bitonic sort over a binary tree.

Values live at the leaves of a perfect binary tree; the classic bitonic
network is realized structurally: sort one subtree ascending and the
other descending, then merge by compare-exchanging mirrored leaves of the
two subtrees in tandem (pointer-pair traversal, as in Olden's
SwapLeft/SwapRight).  The checksum and a sortedness flag are returned so
every mode can be validated."""

from __future__ import annotations

from typing import Any

from .common import RANDOM_SRC, run_benchmark, time_benchmark

NAME = "bisort"
DEFAULT_ARGS = (9, 12345)  # 2^9 = 512 leaf values

SOURCE = RANDOM_SRC + """
class Node {
  int value;
  Node left;
  Node right;
  boolean isLeaf() { return left == null; }
}
class Main {
  Node buildLeaf(Rand r) {
    Node n = new Node();
    n.value = r.nextInt(1000000);
    return n;
  }
  Node build(int depth, Rand r) {
    if (depth == 0) { return buildLeaf(r); }
    Node n = new Node();
    n.left = build(depth - 1, r);
    n.right = build(depth - 1, r);
    return n;
  }
  // compare-exchange mirrored leaves of two equal-shape subtrees
  void cmpSwap(Node a, Node b, boolean up) {
    if (a.isLeaf()) {
      boolean outOfOrder = a.value > b.value;
      if (outOfOrder == up) {
        int t = a.value; a.value = b.value; b.value = t;
      }
    } else {
      cmpSwap(a.left, b.left, up);
      cmpSwap(a.right, b.right, up);
    }
  }
  // subtree holds a bitonic sequence; merge it into sorted order
  void bimerge(Node n, boolean up) {
    if (n.isLeaf()) { return; }
    cmpSwap(n.left, n.right, up);
    bimerge(n.left, up);
    bimerge(n.right, up);
  }
  void bisort(Node n, boolean up) {
    if (n.isLeaf()) { return; }
    bisort(n.left, up);
    bisort(n.right, !up);
    bimerge(n, up);
  }
  // in-order leaf checks
  int checksum(Node n) {
    if (n.isLeaf()) { return n.value; }
    return checksum(n.left) + checksum(n.right);
  }
  int lastSeen;
  int sortedViolations(Node n, boolean up) {
    if (n.isLeaf()) {
      int bad = 0;
      if (up) { if (n.value < lastSeen) { bad = 1; } }
      else { if (n.value > lastSeen) { bad = 1; } }
      lastSeen = n.value;
      return bad;
    }
    return sortedViolations(n.left, up) + sortedViolations(n.right, up);
  }
  int run(int depth, int seed) {
    Rand r = new Rand(seed);
    Node root = build(depth, r);
    int before = checksum(root);
    bisort(root, true);
    lastSeen = -1;
    int badUp = sortedViolations(root, true);
    bisort(root, false);
    lastSeen = 2000000;
    int badDown = sortedViolations(root, false);
    int after = checksum(root);
    if (before != after) { Sys.fail("checksum changed"); }
    if (badUp + badDown != 0) { Sys.fail("not sorted"); }
    return after;
  }
}
"""


def run(mode: str = "jns", depth: int = DEFAULT_ARGS[0], seed: int = DEFAULT_ARGS[1]) -> Any:
    return run_benchmark(SOURCE, mode, (depth, seed))


def timed(mode: str, depth: int = DEFAULT_ARGS[0], seed: int = DEFAULT_ARGS[1]):
    return time_benchmark(SOURCE, mode, (depth, seed))
