"""jolden ``voronoi``: Delaunay-style proximity graph over random points.

The Olden benchmark computes a Voronoi diagram via a quad-edge Delaunay
triangulation.  This port computes the Gabriel graph (the subgraph of the
Delaunay triangulation whose edges have an empty diametral circle), which
preserves the benchmark's character — geometric predicates over a
pointer-linked point set building an edge structure — with a far smaller
implementation; the substitution is recorded in DESIGN.md."""

from __future__ import annotations

from typing import Any

from .common import RANDOM_SRC, run_benchmark, time_benchmark

NAME = "voronoi"
DEFAULT_ARGS = (28, 5)  # points, seed

SOURCE = RANDOM_SRC + """
class Point {
  double x; double y;
  Point next;
}
class Edge {
  Point a; Point b;
  double len;
  Edge next;
}
class Main {
  Point makePoints(int n, Rand r) {
    Point head = null;
    for (int i = 0; i < n; i++) {
      Point p = new Point();
      p.x = r.nextDouble();
      p.y = r.nextDouble();
      p.next = head;
      head = p;
    }
    return head;
  }
  // is any point of the set strictly inside the circle with diameter ab?
  boolean diametralCircleEmpty(Point pts, Point a, Point b) {
    double mx = (a.x + b.x) / 2.0;
    double my = (a.y + b.y) / 2.0;
    double dx = a.x - mx;
    double dy = a.y - my;
    double r2 = dx * dx + dy * dy;
    Point c = pts;
    while (c != null) {
      if (c != a && c != b) {
        double cx = c.x - mx;
        double cy = c.y - my;
        if (cx * cx + cy * cy < r2) { return false; }
      }
      c = c.next;
    }
    return true;
  }
  double run(int n, int seed) {
    Rand r = new Rand(seed);
    Point pts = makePoints(n, r);
    Edge edges = null;
    int count = 0;
    double total = 0.0;
    Point a = pts;
    while (a != null) {
      Point b = a.next;
      while (b != null) {
        if (diametralCircleEmpty(pts, a, b)) {
          Edge e = new Edge();
          e.a = a; e.b = b;
          double dx = a.x - b.x;
          double dy = a.y - b.y;
          e.len = Sys.sqrt(dx * dx + dy * dy);
          e.next = edges;
          edges = e;
          count = count + 1;
          total = total + e.len;
        }
        b = b.next;
      }
      a = a.next;
    }
    if (count < n - 1) { Sys.fail("proximity graph disconnected lower bound violated"); }
    return count * 1000.0 + total;
  }
}
"""


def run(mode: str = "jns", *args) -> Any:
    return run_benchmark(SOURCE, mode, args or DEFAULT_ARGS)


def timed(mode: str, *args):
    return time_benchmark(SOURCE, mode, args or DEFAULT_ARGS)
