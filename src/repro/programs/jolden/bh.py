"""jolden ``bh``: Barnes-Hut hierarchical N-body simulation (2D variant).

Bodies are inserted into an adaptive quadtree; centers of mass are
computed bottom-up, and accelerations are evaluated with the opening
criterion (cell size over distance below theta), exactly the structure
of the Olden/SPLASH code with the space reduced to two dimensions."""

from __future__ import annotations

from typing import Any

from .common import RANDOM_SRC, run_benchmark, time_benchmark

NAME = "bh"
DEFAULT_ARGS = (24, 3, 7)  # bodies, steps, seed

SOURCE = RANDOM_SRC + """
abstract class BHNode {
  double mass;
  double x; double y;
}
class Body extends BHNode {
  double vx; double vy;
  double ax; double ay;
}
class Cell extends BHNode {
  BHNode[] sub;       // nw, ne, sw, se
  double cx; double cy; double half;   // region geometry
  Cell(double cx, double cy, double half) {
    this.cx = cx; this.cy = cy; this.half = half;
    this.sub = new BHNode[4];
  }
  int quadrant(double px, double py) {
    int q = 0;
    if (px >= cx) { q = q + 1; }
    if (py >= cy) { q = q + 2; }
    return q;
  }
  double subCx(int q) { if (q == 1 || q == 3) { return cx + half / 2.0; } return cx - half / 2.0; }
  double subCy(int q) { if (q >= 2) { return cy + half / 2.0; } return cy - half / 2.0; }
}
class Main {
  void insert(Cell cell, Body b) {
    int q = cell.quadrant(b.x, b.y);
    BHNode existing = cell.sub[q];
    if (existing == null) {
      cell.sub[q] = b;
    } else {
      if (existing instanceof Cell) {
        insert((Cell)existing, b);
      } else {
        Cell fresh = new Cell(cell.subCx(q), cell.subCy(q), cell.half / 2.0);
        cell.sub[q] = fresh;
        insert(fresh, (Body)existing);
        insert(fresh, b);
      }
    }
  }
  void computeCoM(Cell cell) {
    double m = 0.0; double sx = 0.0; double sy = 0.0;
    for (int i = 0; i < 4; i++) {
      BHNode n = cell.sub[i];
      if (n != null) {
        if (n instanceof Cell) { computeCoM((Cell)n); }
        m = m + n.mass;
        sx = sx + n.mass * n.x;
        sy = sy + n.mass * n.y;
      }
    }
    cell.mass = m;
    if (m > 0.0) { cell.x = sx / m; cell.y = sy / m; }
  }
  void addForce(Body b, BHNode n, double size, double theta) {
    if (n == null || n == b) { return; }
    double dx = n.x - b.x;
    double dy = n.y - b.y;
    double d2 = dx * dx + dy * dy + 0.0025;   // softening
    double d = Sys.sqrt(d2);
    boolean far = true;
    if (n instanceof Cell) { far = size / d < theta; }
    if (far) {
      double f = n.mass / (d2 * d);
      b.ax = b.ax + f * dx;
      b.ay = b.ay + f * dy;
    } else {
      Cell c = (Cell)n;
      for (int i = 0; i < 4; i++) {
        addForce(b, c.sub[i], size / 2.0, theta);
      }
    }
  }
  double run(int n, int steps, int seed) {
    Rand r = new Rand(seed);
    Body[] bodies = new Body[n];
    for (int i = 0; i < n; i++) {
      Body b = new Body();
      b.x = r.nextDouble(); b.y = r.nextDouble();
      b.vx = (r.nextDouble() - 0.5) * 0.1;
      b.vy = (r.nextDouble() - 0.5) * 0.1;
      b.mass = 1.0 / n;
      bodies[i] = b;
    }
    double dt = 0.025;
    for (int step = 0; step < steps; step++) {
      Cell root = new Cell(0.5, 0.5, 0.5);
      for (int i = 0; i < n; i++) {
        Body b = bodies[i];
        if (b.x >= 0.0 && b.x < 1.0 && b.y >= 0.0 && b.y < 1.0) {
          insert(root, b);
        }
      }
      computeCoM(root);
      for (int i = 0; i < n; i++) {
        Body b = bodies[i];
        b.ax = 0.0; b.ay = 0.0;
        addForce(b, root, 1.0, 0.5);
        b.vx = b.vx + b.ax * dt;
        b.vy = b.vy + b.ay * dt;
        b.x = b.x + b.vx * dt;
        b.y = b.y + b.vy * dt;
      }
    }
    double checksum = 0.0;
    for (int i = 0; i < n; i++) {
      checksum = checksum + bodies[i].x + bodies[i].y;
    }
    return checksum;
  }
}
"""


def run(mode: str = "jns", *args) -> Any:
    return run_benchmark(SOURCE, mode, args or DEFAULT_ARGS)


def timed(mode: str, *args):
    return time_benchmark(SOURCE, mode, args or DEFAULT_ARGS)
