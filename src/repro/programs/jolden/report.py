"""Regenerate Table 1: jolden benchmark times under the four execution
modes.

Run as ``python -m repro.programs.jolden.report`` (add ``--repeat N`` for
best-of-N timing).  The paper's claim is about *shape*, not absolute
numbers: J& without the classloader is by far the slowest; J& with the
classloader approaches the Java baseline; J&s pays a moderate overhead
over classloader-J& for its view machinery."""

from __future__ import annotations

import argparse
from typing import Dict, List

from . import ALL
from ..jolden.common import time_benchmark

MODES = ("java", "jx", "jx_cl", "jns")
MODE_LABEL = {
    "java": "Java",
    "jx": "J& [31]",
    "jx_cl": "J& with classloader",
    "jns": "J&s",
}


def collect(repeat: int = 1, names=None) -> Dict[str, Dict[str, float]]:
    """times[mode][benchmark] in seconds."""
    times: Dict[str, Dict[str, float]] = {m: {} for m in MODES}
    results: Dict[str, Dict[str, object]] = {m: {} for m in MODES}
    for module in ALL:
        if names and module.NAME not in names:
            continue
        for mode in MODES:
            secs, result = module.timed(mode)
            for _ in range(repeat - 1):
                secs = min(secs, module.timed(mode)[0])
            times[mode][module.NAME] = secs
            results[mode][module.NAME] = result
        # all modes must agree on the checksum
        baseline = results["java"][module.NAME]
        for mode in MODES[1:]:
            if results[mode][module.NAME] != baseline:
                raise AssertionError(
                    f"{module.NAME}: mode {mode} result "
                    f"{results[mode][module.NAME]!r} != java {baseline!r}"
                )
    return times


def format_table(times: Dict[str, Dict[str, float]]) -> str:
    names = list(times["java"].keys())
    lines: List[str] = []
    header = f"{'':22s}" + "".join(f"{n:>11s}" for n in names)
    lines.append(header)
    for mode in MODES:
        row = f"{MODE_LABEL[mode]:22s}" + "".join(
            f"{times[mode][n]:11.3f}" for n in names
        )
        lines.append(row)
    lines.append("")
    lines.append("normalized to Java = 1.00:")
    for mode in MODES:
        row = f"{MODE_LABEL[mode]:22s}" + "".join(
            f"{times[mode][n] / max(times['java'][n], 1e-9):11.2f}" for n in names
        )
        lines.append(row)
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeat", type=int, default=1)
    parser.add_argument("benchmarks", nargs="*", help="subset of benchmark names")
    args = parser.parse_args()
    times = collect(repeat=args.repeat, names=set(args.benchmarks) or None)
    print("Table 1 (reproduction): jolden benchmark times, seconds")
    print(format_table(times))


if __name__ == "__main__":
    main()
