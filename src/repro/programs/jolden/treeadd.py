"""jolden ``treeadd``: recursive sum over a balanced binary tree.

The smallest Olden benchmark: build a complete binary tree of the given
depth and repeatedly add up all node values (pure pointer chasing plus
dynamic dispatch)."""

from __future__ import annotations

from typing import Any

from .common import run_benchmark, time_benchmark

NAME = "treeadd"
DEFAULT_ARGS = (12, 4)  # depth, iterations  (paper uses depth 20+)

SOURCE = """
class TreeNode {
  int val;
  TreeNode left;
  TreeNode right;
  TreeNode(int v) { this.val = v; }
  int addTree() {
    int total = val;
    if (left != null) { total = total + left.addTree(); }
    if (right != null) { total = total + right.addTree(); }
    return total;
  }
}
class Main {
  TreeNode build(int depth) {
    TreeNode n = new TreeNode(1);
    if (depth > 1) {
      n.left = build(depth - 1);
      n.right = build(depth - 1);
    }
    return n;
  }
  int run(int depth, int iters) {
    TreeNode root = build(depth);
    int total = 0;
    for (int i = 0; i < iters; i++) {
      total = root.addTree();
    }
    return total;
  }
}
"""


def run(mode: str = "jns", depth: int = DEFAULT_ARGS[0], iters: int = DEFAULT_ARGS[1]) -> Any:
    return run_benchmark(SOURCE, mode, (depth, iters))


def timed(mode: str, depth: int = DEFAULT_ARGS[0], iters: int = DEFAULT_ARGS[1]):
    return time_benchmark(SOURCE, mode, (depth, iters))


def expected(depth: int = DEFAULT_ARGS[0], iters: int = DEFAULT_ARGS[1]) -> int:
    return 2 ** depth - 1
