"""jolden ``perimeter``: perimeter of a raster region stored in a
quadtree.

A disk image is encoded as a quadtree (white/black/grey nodes); the
perimeter is the total length of black/white and black/outside unit
boundaries, found by probing adjacent cells through the tree (repeated
root-to-leaf pointer walks, the benchmark's signature access pattern)."""

from __future__ import annotations

from typing import Any

from .common import run_benchmark, time_benchmark

NAME = "perimeter"
DEFAULT_ARGS = (32,)  # image size (power of two)

SOURCE = """
class QuadTree {
  int color;          // 0 white, 1 black, 2 grey
  QuadTree nw; QuadTree ne; QuadTree sw; QuadTree se;
  int x; int y; int size;
}
class Main {
  int imgSize;
  // the image: a disk centred in the square
  boolean pixelBlack(int x, int y) {
    int c = imgSize / 2;
    int r = imgSize * 3 / 8;
    int dx = x - c;
    int dy = y - c;
    return dx * dx + dy * dy <= r * r;
  }
  QuadTree build(int x, int y, int size) {
    QuadTree t = new QuadTree();
    t.x = x; t.y = y; t.size = size;
    if (size == 1) {
      if (pixelBlack(x, y)) { t.color = 1; } else { t.color = 0; }
      return t;
    }
    int h = size / 2;
    t.nw = build(x, y, h);
    t.ne = build(x + h, y, h);
    t.sw = build(x, y + h, h);
    t.se = build(x + h, y + h, h);
    if (t.nw.color == t.ne.color && t.sw.color == t.se.color
        && t.nw.color == t.sw.color && t.nw.color != 2) {
      t.color = t.nw.color;
      t.nw = null; t.ne = null; t.sw = null; t.se = null;
    } else {
      t.color = 2;
    }
    return t;
  }
  // probe the tree for the color of a unit pixel (0 outside the image)
  boolean isBlack(QuadTree root, int x, int y) {
    if (x < 0 || y < 0 || x >= imgSize || y >= imgSize) { return false; }
    QuadTree t = root;
    while (t.color == 2) {
      int h = t.size / 2;
      if (x < t.x + h) {
        if (y < t.y + h) { t = t.nw; } else { t = t.sw; }
      } else {
        if (y < t.y + h) { t = t.ne; } else { t = t.se; }
      }
    }
    return t.color == 1;
  }
  int perimeter(QuadTree root, QuadTree t) {
    if (t.color == 2) {
      return perimeter(root, t.nw) + perimeter(root, t.ne)
           + perimeter(root, t.sw) + perimeter(root, t.se);
    }
    if (t.color == 0) { return 0; }
    int total = 0;
    for (int i = 0; i < t.size; i++) {
      if (!isBlack(root, t.x + i, t.y - 1)) { total = total + 1; }
      if (!isBlack(root, t.x + i, t.y + t.size)) { total = total + 1; }
      if (!isBlack(root, t.x - 1, t.y + i)) { total = total + 1; }
      if (!isBlack(root, t.x + t.size, t.y + i)) { total = total + 1; }
    }
    return total;
  }
  int run(int size) {
    imgSize = size;
    QuadTree root = build(0, 0, size);
    return perimeter(root, root);
  }
}
"""


def run(mode: str = "jns", *args) -> Any:
    return run_benchmark(SOURCE, mode, args or DEFAULT_ARGS)


def timed(mode: str, *args):
    return time_benchmark(SOURCE, mode, args or DEFAULT_ARGS)
