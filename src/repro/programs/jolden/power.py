"""jolden ``power``: hierarchical power-system pricing optimization.

A root feeds feeders -> laterals -> branches -> leaves (customers); each
iteration aggregates demand bottom-up and pushes prices top-down (two
recursive passes over a static pointer hierarchy)."""

from __future__ import annotations

from typing import Any

from .common import run_benchmark, time_benchmark

NAME = "power"
DEFAULT_ARGS = (4, 4, 5, 6)  # feeders, laterals, branches, iterations

SOURCE = """
class Leaf {
  double demand;
  double price;
  Leaf() { this.demand = 1.0; this.price = 0.01; }
  double computeDemand() {
    // customer reacts to price: simple elastic model
    demand = 2.0 / (1.0 + price);
    return demand;
  }
  void setPrice(double p) { price = p; }
}
class Branch {
  Leaf[] leaves;
  double current;
  Branch(int nLeaves) {
    leaves = new Leaf[nLeaves];
    for (int i = 0; i < nLeaves; i++) { leaves[i] = new Leaf(); }
  }
  double computeCurrent() {
    current = 0.0;
    for (int i = 0; i < leaves.length; i++) {
      current = current + leaves[i].computeDemand();
    }
    return current;
  }
  void setPrice(double p) {
    // line losses raise the price seen downstream
    double down = p + 0.001 * current;
    for (int i = 0; i < leaves.length; i++) { leaves[i].setPrice(down); }
  }
}
class Lateral {
  Branch[] branches;
  double current;
  Lateral(int nBranches, int nLeaves) {
    branches = new Branch[nBranches];
    for (int i = 0; i < nBranches; i++) { branches[i] = new Branch(nLeaves); }
  }
  double computeCurrent() {
    current = 0.0;
    for (int i = 0; i < branches.length; i++) {
      current = current + branches[i].computeCurrent();
    }
    return current;
  }
  void setPrice(double p) {
    double down = p + 0.002 * current;
    for (int i = 0; i < branches.length; i++) { branches[i].setPrice(down); }
  }
}
class Feeder {
  Lateral[] laterals;
  double current;
  Feeder(int nLaterals, int nBranches, int nLeaves) {
    laterals = new Lateral[nLaterals];
    for (int i = 0; i < nLaterals; i++) {
      laterals[i] = new Lateral(nBranches, nLeaves);
    }
  }
  double computeCurrent() {
    current = 0.0;
    for (int i = 0; i < laterals.length; i++) {
      current = current + laterals[i].computeCurrent();
    }
    return current;
  }
  void setPrice(double p) {
    double down = p + 0.005 * current;
    for (int i = 0; i < laterals.length; i++) { laterals[i].setPrice(down); }
  }
}
class Main {
  double run(int nFeeders, int nLaterals, int nBranches, int iters) {
    Feeder[] feeders = new Feeder[nFeeders];
    for (int i = 0; i < nFeeders; i++) {
      feeders[i] = new Feeder(nLaterals, nBranches, 8);
    }
    double total = 0.0;
    double price = 1.0;
    for (int it = 0; it < iters; it++) {
      total = 0.0;
      for (int i = 0; i < nFeeders; i++) {
        total = total + feeders[i].computeCurrent();
      }
      // adjust the root price toward the demand target and push it down
      price = price + 0.01 * (total - 500.0) / 500.0;
      for (int i = 0; i < nFeeders; i++) { feeders[i].setPrice(price); }
    }
    return total;
  }
}
"""


def run(mode: str = "jns", *args) -> Any:
    return run_benchmark(SOURCE, mode, args or DEFAULT_ARGS)


def timed(mode: str, *args):
    return time_benchmark(SOURCE, mode, args or DEFAULT_ARGS)
