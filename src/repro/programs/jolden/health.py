"""jolden ``health``: discrete-event simulation of a hierarchical health
care system (the Colombian health-care model of the Olden suite).

Villages form a 4-ary tree; patients are generated at leaf villages,
wait in linked-list queues, are assessed, and are either treated locally
or referred up the hierarchy."""

from __future__ import annotations

from typing import Any

from .common import RANDOM_SRC, run_benchmark, time_benchmark

NAME = "health"
DEFAULT_ARGS = (3, 20, 42)  # levels, simulation steps, seed

SOURCE = RANDOM_SRC + """
class Patient {
  int remaining;   // steps left in the current stage
  int hops;        // how many referrals so far
  Patient next;
}
class Hospital {
  int personnel;
  int free;
  Patient waiting;
  Patient assess;
  Patient inside;
  int treated;
  Hospital(int personnel) { this.personnel = personnel; this.free = personnel; }

  void addWaiting(Patient p) { p.next = waiting; waiting = p; }

  // advance one step; returns patients referred up (linked by .next)
  Patient step(boolean canTreat, Rand r) {
    Patient referrals = null;
    // patients inside finish treatment
    Patient p = inside;
    Patient stillIn = null;
    while (p != null) {
      Patient nxt = p.next;
      p.remaining = p.remaining - 1;
      if (p.remaining <= 0) {
        treated = treated + 1;
        free = free + 1;
      } else {
        p.next = stillIn; stillIn = p;
      }
      p = nxt;
    }
    inside = stillIn;
    // assessment completes: treat here or refer up
    p = assess;
    Patient stillAssess = null;
    while (p != null) {
      Patient nxt = p.next;
      p.remaining = p.remaining - 1;
      if (p.remaining <= 0) {
        boolean treatHere = canTreat && r.nextDouble() < 0.7;
        if (treatHere) {
          p.remaining = 4;
          p.next = inside; inside = p;
        } else {
          free = free + 1;       // assessment slot released
          p.hops = p.hops + 1;
          p.next = referrals; referrals = p;
        }
      } else {
        p.next = stillAssess; stillAssess = p;
      }
      p = nxt;
    }
    assess = stillAssess;
    // admit waiting patients while personnel are free
    while (waiting != null && free > 0) {
      Patient adm = waiting;
      waiting = adm.next;
      free = free - 1;
      adm.remaining = 2;
      adm.next = assess; assess = adm;
    }
    return referrals;
  }
}
class Village {
  Village[] kids;
  Hospital hosp;
  boolean isLeaf;
  Rand r;
  Village(int level, int seed) {
    this.r = new Rand(seed);
    this.hosp = new Hospital(level * 2 + 1);
    if (level == 0) {
      this.isLeaf = true;
      this.kids = new Village[0];
    } else {
      this.kids = new Village[4];
      for (int i = 0; i < 4; i++) {
        kids[i] = new Village(level - 1, seed * 4 + i + 1);
      }
    }
  }
  // simulate one step bottom-up; returns patients referred above this level
  Patient step(boolean isRoot) {
    Patient up = null;
    for (int i = 0; i < kids.length; i++) {
      Patient ref = kids[i].step(false);
      while (ref != null) {
        Patient nxt = ref.next;
        hosp.addWaiting(ref);
        ref = nxt;
      }
    }
    if (isLeaf && r.nextDouble() < 0.5) {
      hosp.addWaiting(new Patient());
    }
    Patient referrals = hosp.step(isRoot || r.nextDouble() < 0.8, r);
    return referrals;
  }
  int totalTreated() {
    int total = hosp.treated;
    for (int i = 0; i < kids.length; i++) {
      total = total + kids[i].totalTreated();
    }
    return total;
  }
  int totalWaiting() {
    int total = 0;
    Patient p = hosp.waiting;
    while (p != null) { total = total + 1; p = p.next; }
    for (int i = 0; i < kids.length; i++) {
      total = total + kids[i].totalWaiting();
    }
    return total;
  }
}
class Main {
  int run(int levels, int steps, int seed) {
    Village top = new Village(levels, seed);
    for (int t = 0; t < steps; t++) {
      Patient lost = top.step(true);
      // the root treats everything; referrals above it re-enter its queue
      while (lost != null) {
        Patient nxt = lost.next;
        top.hosp.addWaiting(lost);
        lost = nxt;
      }
    }
    return top.totalTreated() * 1000 + top.totalWaiting();
  }
}
"""


def run(mode: str = "jns", *args) -> Any:
    return run_benchmark(SOURCE, mode, args or DEFAULT_ARGS)


def timed(mode: str, *args):
    return time_benchmark(SOURCE, mode, args or DEFAULT_ARGS)
