"""The ten jolden benchmarks [9] ported to J&s (Table 1, Section 7.1).

Order matches the paper's table: bh, bisort, em3d, health, mst,
perimeter, power, treeadd, tsp, voronoi.
"""

from . import bh, bisort, em3d, health, mst, perimeter, power, treeadd, tsp, voronoi

#: Benchmarks in the paper's column order.
ALL = (bh, bisort, em3d, health, mst, perimeter, power, treeadd, tsp, voronoi)

BY_NAME = {m.NAME: m for m in ALL}

__all__ = ["ALL", "BY_NAME"] + [m.NAME for m in ALL]
