"""Shared infrastructure for the jolden benchmark ports.

The paper tests the J&s implementation on the ten jolden benchmarks [9]
(Table 1), which are Java ports of the Olden pointer-intensive C suite.
Each module here carries a J&s source port (``SOURCE``), the default
problem size (scaled down so the interpreted benchmarks run in fractions
of a second), and a ``run(mode, **params)`` entry point returning a
checksum so correctness can be asserted across all four modes.

All ports use only the Java subset of J&s — top-level classes, no
sharing — because the paper's point for Table 1 is measuring the
*overhead* of the family/sharing machinery on code that does not use it.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Tuple

from .. import cached_program

#: Deterministic LCG shared by the benchmark ports (jolden uses
#: java.util.Random; any fixed pseudo-random stream preserves the shape).
RANDOM_SRC = """
class Rand {
  int seed;
  Rand(int seed) { this.seed = seed; }
  int nextInt(int n) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    if (seed < 0) { seed = -seed; }
    return (seed / 65536) % n;   // high bits: LCG low bits cycle
  }
  double nextDouble() {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    if (seed < 0) { seed = -seed; }
    return seed / 2147483648.0;
  }
}
"""


def run_benchmark(
    source: str, mode: str, args: Tuple = (), entry: str = "Main.run"
) -> Any:
    """Compile (cached) and execute one benchmark, returning its result."""
    program = cached_program(source)
    interp = program.interp(mode=mode)
    *cls, method = entry.split(".")
    ref = interp.new_instance(tuple(cls), ())
    return interp.call_method(ref, method, list(args))


def time_benchmark(
    source: str, mode: str, args: Tuple = (), entry: str = "Main.run", repeat: int = 1
) -> Tuple[float, Any]:
    """Best-of-``repeat`` wall-clock time and result for one benchmark."""
    program = cached_program(source)
    best = float("inf")
    result = None
    for _ in range(repeat):
        interp = program.interp(mode=mode)
        *cls, method = entry.split(".")
        ref = interp.new_instance(tuple(cls), ())
        start = time.perf_counter()
        result = interp.call_method(ref, method, list(args))
        best = min(best, time.perf_counter() - start)
    return best, result
