"""Synchronous CorONA experiment driver (Section 7.4).

``CoronaSystem`` boots one ring inside one interpreter heap, runs
workload phases under each family, and evolves the live system between
phases without recreating any node or data object.  The chaos driver
(``driver.py``) builds one ``CoronaSystem`` per shard and talks to it
through the per-request methods (``fetch`` / ``publish`` / ``evolve``).

Determinism: the only randomness source in the J&s program is the
``Rand`` LCG, and every ``workload`` / ``workloadVia`` call constructs a
fresh ``Rand(seed)`` — there is no hidden global stream on either the
J&s or the Python side.  ``CoronaSystem`` therefore threads a single
master ``seed``: phases that do not pass an explicit seed draw a
distinct per-phase seed derived from ``(master seed, phase index)`` via
the forkable :class:`repro.chaos.Rng`, so two systems built with the
same constructor arguments replay bit-identically while successive
phases still see independent streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...chaos import Rng
from ...obs import TRACER
from .source import SOURCE, evolution_loc, program

FAMILY_CODES = {"corona": 0, "pccorona": 1, "beecorona": 2}

#: Family tower in evolution order; ``FAMILIES.index`` gives the rank a
#: shard has reached, which the chaos journal uses for idempotent replay.
FAMILIES = ("corona", "pccorona", "beecorona")


@dataclass
class PhaseStats:
    lookups: int
    total_hops: int
    misses: int

    @property
    def avg_hops(self) -> float:
        return self.total_hops / self.lookups if self.lookups else 0.0


class CoronaSystem:
    """Python driver for the CorONA experiment: boots the ring, runs
    workload phases under each family, evolving the live system between
    phases without recreating any node or data object."""

    def __init__(
        self,
        size: int = 16,
        objects: int = 64,
        mode: str = "jns",
        compiled: bool = False,
        specialized: bool = False,
        backend: Optional[str] = None,
        seed: int = 11,
        max_steps: Optional[int] = None,
    ):
        self.interp = program().interp(
            mode=mode,
            compiled=compiled,
            specialized=specialized,
            backend=backend,
            max_steps=max_steps,
        )
        self.main = self.interp.new_instance(("Main",), ())
        self.size = size
        self.objects = objects
        self.seed = seed
        self._phase_index = 0
        self.net = self.interp.call_method(self.main, "boot", [size])
        if objects:
            self.interp.call_method(self.main, "publishAll", [self.net, objects])
        self._node_ids_before = self._node_instances()

    def _node_instances(self):
        ids = []
        first = self.interp.get_field(self.net, "first")
        node = first
        while True:
            ids.append(id(node.inst))
            node = self.interp.get_field(node, "nextNode")
            if node.inst is first.inst:
                break
        return ids

    def _reset_stats(self):
        self.interp.set_field(self.net, "totalHops", 0)
        self.interp.set_field(self.net, "lookups", 0)
        self.interp.set_field(self.net, "misses", 0)

    def _stats(self) -> PhaseStats:
        return PhaseStats(
            lookups=self.interp.get_field(self.net, "lookups"),
            total_hops=self.interp.get_field(self.net, "totalHops"),
            misses=self.interp.get_field(self.net, "misses"),
        )

    def stats(self) -> PhaseStats:
        """Cumulative routing statistics since the last phase reset."""
        return self._stats()

    def _derive_seed(self) -> int:
        seed = Rng(self.seed).fork(f"phase{self._phase_index}").randrange(2**31 - 1)
        self._phase_index += 1
        return seed

    def run_phase(
        self, family: str, fetches: int = 200, seed: Optional[int] = None
    ) -> PhaseStats:
        """family: "corona", "pccorona", or "beecorona".

        When ``seed`` is omitted the phase seed is derived from the
        system's master seed and the phase index, so repeated phases use
        independent streams yet the whole run replays bit-identically.
        """
        code = FAMILY_CODES[family]
        if seed is None:
            seed = self._derive_seed()
        self._reset_stats()
        bad = self.interp.call_method(
            self.main, "workloadVia", [self.net, code, fetches, self.objects, seed]
        )
        if bad:
            raise AssertionError(f"{bad} fetches returned no content")
        return self._stats()

    # ---- per-request surface used by the chaos driver -------------------

    def fetch(self, start_id: int, key: int, family: str = "corona") -> Optional[str]:
        """Route one fetch from ``start_id`` under the given family's
        view; returns the content string or None on a store miss."""
        if TRACER.enabled:
            with TRACER.span("corona.fetch", family=family):
                return self.interp.call_method(
                    self.main,
                    "fetchVia",
                    [self.net, FAMILY_CODES[family], start_id, key],
                )
        return self.interp.call_method(
            self.main, "fetchVia", [self.net, FAMILY_CODES[family], start_id, key]
        )

    def publish(self, key: int, version: int, content: str) -> None:
        """Publish one DataObject to its owner node (idempotent per
        (key, version): re-publishing replaces the stored object)."""
        if TRACER.enabled:
            with TRACER.span("corona.publish"):
                self._publish(key, version, content)
            return
        self._publish(key, version, content)

    def _publish(self, key: int, version: int, content: str) -> None:
        obj = self.interp.new_instance(
            ("corona", "DataObject"), (key, version, content)
        )
        self.interp.call_method(self.net, "publish", [obj])

    def evolve(self, family: str, threshold: int = 3) -> None:
        """Apply one evolution step by target family name."""
        if TRACER.enabled:
            with TRACER.span("corona.evolve.apply", family=family):
                self._evolve(family, threshold)
            return
        self._evolve(family, threshold)

    def _evolve(self, family: str, threshold: int) -> None:
        if family == "pccorona":
            self.evolve_to_pc()
        elif family == "beecorona":
            self.evolve_to_bee(threshold=threshold)
        else:
            raise ValueError(f"cannot evolve to {family!r}")

    def store_contents(self) -> List[Tuple[int, int, int, str]]:
        """Walk every node's base ``store`` and return
        ``(node_id, key, version, content)`` rows — the heap-isolation
        witness used by the chaos driver (manager caches are views over
        these same shared objects and are not walked separately)."""
        rows = []
        interp = self.interp
        first = interp.get_field(self.net, "first")
        node = first
        while True:
            node_id = interp.get_field(node, "id")
            store = interp.get_field(node, "store")
            entry = interp.get_field(store, "first")
            while entry is not None:
                obj = interp.get_field(entry, "obj")
                rows.append(
                    (
                        node_id,
                        interp.get_field(entry, "key"),
                        interp.get_field(obj, "version"),
                        interp.get_field(obj, "content"),
                    )
                )
                entry = interp.get_field(entry, "next")
            node = interp.get_field(node, "nextNode")
            if node.inst is first.inst:
                break
        return rows

    # ---------------------------------------------------------------------

    def evolve_to_pc(self) -> None:
        self.interp.call_method(self.main, "evolveToPC", [self.net])

    def evolve_to_bee(self, threshold: int = 5) -> int:
        self.interp.call_method(self.main, "evolveToBee", [self.net])
        return self.interp.call_method(self.main, "maintainBee", [self.net, threshold])

    def nodes_preserved(self) -> bool:
        """Evolution must not create or replace host-node objects."""
        return self._node_instances() == self._node_ids_before


def run_experiment(size: int = 16, objects: int = 64, fetches: int = 300):
    """The full Section 7.4 scenario; returns per-phase stats."""
    sys = CoronaSystem(size=size, objects=objects)
    plain = sys.run_phase("corona", fetches, seed=11)
    sys.evolve_to_pc()
    pc_cold = sys.run_phase("pccorona", fetches, seed=11)
    pc_warm = sys.run_phase("pccorona", fetches, seed=23)
    replicated = sys.evolve_to_bee(threshold=5)
    bee = sys.run_phase("beecorona", fetches, seed=37)
    assert sys.nodes_preserved(), "evolution must reuse the live node objects"
    return {
        "plain": plain,
        "pc_cold": pc_cold,
        "pc_warm": pc_warm,
        "bee": bee,
        "replicated": replicated,
        "loc": evolution_loc(),
    }


def main() -> None:
    results = run_experiment()
    print("CorONA evolution experiment (Section 7.4 reproduction)")
    for phase in ("plain", "pc_cold", "pc_warm", "bee"):
        stats = results[phase]
        print(
            f"  {phase:8s} avg hops {stats.avg_hops:5.2f} "
            f"({stats.lookups} lookups, {stats.misses} misses)"
        )
    print(f"  objects proactively replicated: {results['replicated']}")
    loc = results["loc"]
    print(f"  evolution code: {loc['evolution']} of {loc['total']} lines")
