"""Chaos-hardened CorONA: sharded async traffic with live evolution.

The tentpole of the robustness milestone.  The ring is partitioned
across *shards* — each shard is one :class:`CoronaSystem` (one
``Interp`` heap, one ``QueryEngine``) holding ``nodes // shards`` DHT
nodes.  A request generator issues batched fetch/publish traffic on the
deterministic virtual-time scheduler from :mod:`repro.chaos`, and the
headline event — the corona → pccorona → beecorona family evolution —
runs *while requests are in flight*, per shard, behind a pause gate.

Fault model (all drawn from the seeded :class:`FaultPlan`):

* **crash** — a shard's heap is discarded mid-run; after ``down_ms`` of
  virtual time the next request that touches it restarts it, republishes
  the authoritative feed versions, and replays the evolution journal;
* **drop / delay** — requests entering through a non-owner shard suffer
  inter-shard message loss or latency;
* **fuel** — a chosen request trips ``JnsResourceError`` (JNS-RES-001)
  inside the shard interpreter; the driver recovers the interpreter with
  ``Interp.reset_budget()`` and retries.

Clients retry with capped exponential backoff (seeded jitter).  When a
fetch exhausts its retries and the driver has a cached copy, it degrades
to a *stale serve* (counted, with a staleness histogram) instead of
failing.

Evolution is a two-phase, crash-recoverable protocol: a ``prepare``
journal record precedes the per-shard view change, ``done`` follows it;
a crash between the two leaves the transition pending, and the shard's
restart path (or a freshly started driver handed the same journal)
completes it idempotently.  Every node is in a well-typed family at
every instant — the view change itself is atomic within a shard because
the virtual-time scheduler never preempts non-awaiting code.

Correctness oracles, checked per request against the driver's
authoritative version map:

* content must parse as ``feed-<key>-v<version>`` for the fetched key;
* the version must never exceed the highest version issued (no phantom
  writes) and never be None (no lost feeds);
* under the base ``corona`` family the serve must be fresh (version ≥
  the acknowledged version when the request was issued); under the
  caching families stale serves are legitimate and are *quantified*
  instead (``staleness.cache_lag`` histogram);
* after the run, every shard's heap must contain only keys it owns
  (``key % shards == shard``) — the representation-independence /
  heap-isolation invariant (Banerjee & Naumann).

Reports are byte-identical across runs with the same seed and plan:
``ChaosReport.to_json(include_wall=False)`` contains only virtual-time
and counter state, and every random decision comes from per-request
forks of the master :class:`Rng`.

Telemetry (PR 8): every request carries a deterministic
:class:`~repro.telemetry.TraceContext` drawn from the ``trace{rid}``
fork of the master RNG — replays with the same seed regenerate the same
128-bit trace-id sequence, digested into ``ChaosReport.trace_digest``
(part of the replay surface).  Each attempt's shard-side work runs
under a ``corona.request`` span tagged ``{op, shard, request,
trace_id}`` when tracing is enabled, and an always-on labeled
:class:`~repro.telemetry.MetricsRegistry` (``driver.metrics``) counts
requests by op/outcome and faults by kind — the exposition surface the
multiprocess rung will aggregate across workers.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ...chaos import FaultPlan, RetryPolicy, Rng, SimEvent, SimLoop
from ...errors import JnsResourceError
from ...obs import TRACER, Histogram
from ...telemetry import MetricsRegistry, TraceContext
from .system import FAMILIES, CoronaSystem

#: The evolution schedule: each entry is one two-phase transition.
TRANSITIONS: Tuple[Tuple[str, str], ...] = (
    ("corona", "pccorona"),
    ("pccorona", "beecorona"),
)


class DriverKilled(Exception):
    """Raised to simulate the driver process dying mid-run (kill_at /
    kill_after_prepare); the journal written so far survives."""


def feed_content(key: int, version: int) -> str:
    return f"feed-{key}-v{version}"


def parse_feed(content: str) -> Optional[Tuple[int, int]]:
    """Inverse of :func:`feed_content`; None when malformed."""
    try:
        prefix, v = content.rsplit("-v", 1)
        tag, k = prefix.split("-", 1)
        if tag != "feed":
            return None
        return int(k), int(v)
    except (ValueError, AttributeError):
        return None


class EvolutionJournal:
    """Append-only two-phase journal for crash-recoverable evolution.

    Each record is ``{seq, t_ms, shard, transition, phase, epoch}`` with
    ``phase`` one of ``prepare`` / ``done`` (plus ``recovered: True`` on
    a ``done`` written by the recovery path).  When constructed with a
    path, records are flushed to a JSONL file as they are written, so a
    killed driver leaves a replayable journal behind; :meth:`load`
    rebuilds the journal a restarted driver resumes from.
    """

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self.entries: List[Dict[str, Any]] = []

    @classmethod
    def load(cls, path: str) -> "EvolutionJournal":
        journal = cls(path=None)
        with open(path) as f:
            for line in f:
                line = line.strip()
                if line:
                    journal.entries.append(json.loads(line))
        journal.path = path
        return journal

    def record(self, **entry: Any) -> None:
        entry["seq"] = len(self.entries)
        self.entries.append(entry)
        if self.path:
            with open(self.path, "a") as f:
                f.write(json.dumps(entry, sort_keys=True))
                f.write("\n")

    def _by_shard(self, shard: int) -> List[Dict[str, Any]]:
        return [e for e in self.entries if e["shard"] == shard]

    def committed(self, shard: int) -> List[str]:
        """Transitions with a ``done`` record for this shard, in order."""
        return [e["transition"] for e in self._by_shard(shard) if e["phase"] == "done"]

    def pending(self, shard: int) -> List[str]:
        """Transitions prepared but never completed, in order."""
        done = set(self.committed(shard))
        return [
            e["transition"]
            for e in self._by_shard(shard)
            if e["phase"] == "prepare" and e["transition"] not in done
        ]


class Shard:
    """One heap's worth of the ring plus its availability state."""

    def __init__(self, index: int, size: int, specialized: bool, seed: int):
        self.index = index
        self.size = size
        self.specialized = specialized
        self.seed = seed
        self.family = "corona"
        self.epoch = 0
        self.gate = SimEvent()
        self.down_until: Optional[float] = None
        self.system: Optional[CoronaSystem] = None
        self.boot()

    def boot(self) -> None:
        # objects=0: the driver owns publication so restarts can
        # republish the authoritative versions, not the boot snapshot.
        self.system = CoronaSystem(
            size=self.size,
            objects=0,
            specialized=self.specialized,
            seed=self.seed,
            max_steps=10**9,  # activates fuel accounting for injection
        )

    @property
    def down(self) -> bool:
        return self.down_until is not None

    def crash(self, now: float, down_ms: float) -> None:
        self.system = None
        self.down_until = now + down_ms

    def trip_fuel(self) -> None:
        """Arm fuel exhaustion: the next interpreter step raises
        JNS-RES-001 (the counting evaluator is active because the shard
        was built with a step budget)."""
        interp = self.system.interp
        interp._steps = interp._max_steps

    def recover_fuel(self) -> None:
        self.system.interp.reset_budget()


@dataclass
class ChaosReport:
    """Aggregate outcome of one chaos run.

    ``to_json(include_wall=False)`` is the deterministic replay digest
    surface: it excludes wall-clock throughput and pause timings, which
    vary run to run, and keeps everything derived from virtual time and
    the seeded RNG."""

    params: Dict[str, Any]
    counters: Dict[str, int]
    histograms: Dict[str, Dict[str, Any]]
    shards: List[Dict[str, Any]]
    journal: List[Dict[str, Any]]
    oracle_violations: List[Dict[str, Any]]
    failures: List[Dict[str, Any]]
    virtual_ms: float
    killed: bool = False
    #: sha256 over the per-request trace-id sequence — deterministic for
    #: a given seed, so it is part of the replay-digest surface.
    trace_digest: str = ""
    wall: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self, include_wall: bool = True) -> Dict[str, Any]:
        data = {
            "params": self.params,
            "counters": dict(sorted(self.counters.items())),
            "histograms": {k: self.histograms[k] for k in sorted(self.histograms)},
            "shards": self.shards,
            "journal": self.journal,
            "oracle_violations": self.oracle_violations,
            "failures": self.failures,
            "virtual_ms": self.virtual_ms,
            "killed": self.killed,
            "trace_digest": self.trace_digest,
        }
        if include_wall:
            data["wall"] = self.wall
        return data

    def to_json(self, include_wall: bool = True) -> str:
        return json.dumps(self.to_dict(include_wall), sort_keys=True, indent=2)


class ChaosCoronaDriver:
    """Deterministic chaos harness over a sharded CorONA deployment."""

    def __init__(
        self,
        nodes: int = 256,
        shards: int = 4,
        objects: int = 96,
        requests: int = 600,
        seed: int = 11,
        plan: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        journal: Optional[EvolutionJournal] = None,
        evolve_at: Optional[Tuple[int, int]] = None,
        kill_at: Optional[int] = None,
        kill_after_prepare: Optional[Tuple[int, int]] = None,
        publish_every: int = 8,
        interarrival_ms: float = 1.0,
        pause_ms_per_node: float = 0.25,
        bee_threshold: int = 3,
        specialized: bool = True,
    ):
        if shards < 1 or nodes < shards:
            raise ValueError("need at least one node per shard")
        self.shard_size = nodes // shards
        self.nodes = self.shard_size * shards
        self.nshards = shards
        self.objects = objects
        self.requests = requests
        self.seed = seed
        self.plan = plan or FaultPlan()
        self.retry = retry or RetryPolicy()
        self.journal = journal or EvolutionJournal()
        self.evolve_at = evolve_at or (requests // 3, (2 * requests) // 3)
        self.kill_at = kill_at
        self.kill_after_prepare = kill_after_prepare
        self.publish_every = publish_every
        self.interarrival_ms = interarrival_ms
        self.pause_ms_per_node = pause_ms_per_node
        self.bee_threshold = bee_threshold
        self.specialized = specialized

        self._rng = Rng(seed)
        self._hot = min(3, objects)
        self.counters: Dict[str, int] = {}
        self._hists: Dict[str, Histogram] = {}
        #: always-on labeled metrics (op/outcome request counts, fault
        #: kinds) — the exposition surface for multiprocess aggregation.
        self.metrics = MetricsRegistry()
        #: per-request trace ids in rid order (hex), digested into the
        #: replay surface; identical across same-seed replays.
        self.trace_ids: List[str] = []
        self.oracle_violations: List[Dict[str, Any]] = []
        self.failures: List[Dict[str, Any]] = []
        # Authoritative feed state: highest version handed to a publish
        # request, and highest version acknowledged by its owner shard.
        self.version_issued: Dict[int, int] = {}
        self.version_acked: Dict[int, int] = {}
        self._stale: Dict[int, Tuple[int, str]] = {}
        self._fuel_done: set = set()
        self._completed = 0
        self._wall_pause = Histogram("evolution.pause_ms_wall")
        self.loop = SimLoop()
        self.shards: List[Shard] = []
        self._evolve_gates = [SimEvent(False) for _ in TRANSITIONS]

    # ---- bookkeeping -----------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n
        if TRACER.enabled:
            TRACER.count(name, n)

    def _observe(self, name: str, value: float) -> None:
        h = self._hists.get(name)
        if h is None:
            h = self._hists[name] = Histogram(name)
        h.observe(value)
        if TRACER.enabled:
            TRACER.observe(name, value)

    def _fault(self, kind: str) -> None:
        self._count("chaos.injected")
        self._count(f"chaos.injected.{kind}")
        self.metrics.inc("corona_faults_total", kind=kind,
                         help="injected faults by kind")

    def _violation(self, rid: int, key: int, reason: str, **detail: Any) -> None:
        self._count("oracle.violation")
        self.oracle_violations.append(
            {"rid": rid, "key": key, "reason": reason, **detail}
        )

    def owner_of(self, key: int) -> int:
        return key % self.nshards

    def local_key(self, key: int) -> int:
        return key // self.nshards

    # ---- boot / recovery -------------------------------------------------

    def _boot_shards(self) -> None:
        with TRACER.span("corona.boot", shards=self.nshards, nodes=self.nodes):
            for i in range(self.nshards):
                shard_seed = Rng(self.seed).fork(f"shard{i}").randrange(2**31 - 1)
                self.shards.append(
                    Shard(i, self.shard_size, self.specialized, shard_seed)
                )
        for key in range(self.objects):
            self.version_issued[key] = 1
            self.version_acked[key] = 1
            self._publish_to_shard(self.shards[self.owner_of(key)], key, 1)
        for shard in self.shards:
            self._recover_journal(shard)

    def _publish_to_shard(self, shard: Shard, key: int, version: int) -> None:
        shard.system.publish(
            self.local_key(key), version, feed_content(key, version)
        )

    def _recover_journal(self, shard: Shard) -> None:
        """Replay committed transitions and complete pending ones — the
        second phase of the two-phase protocol, run on shard restart and
        on driver restart from a persisted journal."""
        for transition in self.journal.committed(shard.index):
            target = transition.split("->")[1]
            if FAMILIES.index(target) > FAMILIES.index(shard.family):
                shard.system.evolve(target, threshold=self.bee_threshold)
                shard.family = target
        for transition in self.journal.pending(shard.index):
            target = transition.split("->")[1]
            if FAMILIES.index(target) > FAMILIES.index(shard.family):
                shard.system.evolve(target, threshold=self.bee_threshold)
                shard.family = target
            self._count("chaos.recovered")
            self.journal.record(
                shard=shard.index,
                transition=transition,
                phase="done",
                t_ms=self.loop.now,
                epoch=shard.epoch,
                recovered=True,
            )

    def _restart_shard(self, shard: Shard) -> None:
        with TRACER.span("corona.restart", shard=shard.index):
            shard.epoch += 1
            shard.down_until = None
            shard.family = "corona"
            shard.boot()
            for key in range(self.objects):
                if self.owner_of(key) == shard.index:
                    self._publish_to_shard(shard, key, self.version_acked[key])
            self._recover_journal(shard)
        self._count("chaos.restart")

    # ---- traffic ---------------------------------------------------------

    def _issue(self, rid: int) -> Tuple[str, int, int]:
        """Decide one request's op/key/version.  Runs synchronously in
        rid order inside the generator so version numbers are issued
        deterministically; all later decisions use the request fork."""
        rng = self._rng.fork(f"issue{rid}")
        if rng.random() < 0.5 and self._hot:
            key = rng.randrange(self._hot)
        else:
            key = rng.randrange(self.objects)
        if rid % self.publish_every == self.publish_every - 1:
            version = self.version_issued.get(key, 0) + 1
            self.version_issued[key] = version
            return "publish", key, version
        return "fetch", key, 0

    async def _generate(self) -> None:
        tasks = []
        for rid in range(self.requests):
            if self.kill_at is not None and rid == self.kill_at:
                raise DriverKilled(f"killed before request {rid}")
            for j, at in enumerate(self.evolve_at):
                if rid == at:
                    self._evolve_gates[j].set()
            for fault in self.plan.crash_at.get(rid, ()):
                shard = self.shards[fault.shard % self.nshards]
                if not shard.down:
                    self._fault("crash")
                    shard.crash(self.loop.now, fault.down_ms)
            op, key, version = self._issue(rid)
            # Request identity: a fresh deterministic trace from the
            # rid-keyed fork — pure function of (seed, rid), so replays
            # regenerate the identical id sequence.
            ctx = TraceContext.from_rng(self._rng.fork(f"trace{rid}"))
            self.trace_ids.append(ctx.hex_trace)
            tasks.append(
                self.loop.create_task(
                    self._request(rid, op, key, version, ctx), name=f"req{rid}"
                )
            )
            await self.loop.sleep(self.interarrival_ms)
        for task in tasks:
            await task

    async def _request(
        self, rid: int, op: str, key: int, version: int, ctx: TraceContext
    ) -> None:
        rng = self._rng.fork(f"req{rid}")
        owner = self.owner_of(key)
        entry = rng.randrange(self.nshards)
        floor = self.version_acked.get(key, 0)
        attempts = 0
        while True:
            outcome = await self._attempt(
                rid, op, key, version, rng, entry, floor, ctx, attempts
            )
            if outcome == "ok":
                self._completed += 1
                self.metrics.inc("corona_requests_total", op=op, outcome="ok",
                                 help="corona requests by op and outcome")
                if attempts:
                    self._observe("retry.per_request", attempts)
                return
            attempts += 1
            self._count("retry.attempt")
            self.metrics.inc("corona_retries_total", op=op,
                             help="retries by op")
            if attempts >= self.retry.max_attempts:
                self._count("retry.exhausted")
                self._degrade(rid, op, key, outcome)
                return
            await self.loop.sleep(self.retry.backoff_ms(attempts - 1, rng))

    async def _attempt(
        self,
        rid: int,
        op: str,
        key: int,
        version: int,
        rng: Rng,
        entry: int,
        floor: int,
        ctx: TraceContext,
        attempt: int,
    ) -> str:
        shard = self.shards[self.owner_of(key)]
        if shard.down:
            if self.loop.now >= shard.down_until:
                self._restart_shard(shard)
            else:
                return "down"
        await shard.gate.wait()
        if shard.down:
            return "down"
        if entry != shard.index:
            fate, delay_ms = self.plan.message_fate(rng)
            if fate == "drop":
                self._fault("drop")
                return "dropped"
            if fate == "delay":
                self._fault("delay")
                await self.loop.sleep(delay_ms)
                if shard.down:
                    return "down"
        if rid in self.plan.fuel_at and rid not in self._fuel_done:
            self._fuel_done.add(rid)
            self._fault("fuel")
            shard.trip_fuel()
        # The shard-side work below is await-free, so the request span
        # opens and closes on one simulated "thread" — safe with the
        # tracer's thread-local span stack even though many requests are
        # interleaved by the virtual-time scheduler.
        span = None
        if TRACER.enabled:
            attempt_ctx = ctx.child(f"attempt{attempt}")
            span = TRACER.span(
                "corona.request",
                op=op,
                shard=shard.index,
                request=rid,
                trace_id=ctx.hex_trace,
                span_id=attempt_ctx.hex_span,
                parent_span_id=ctx.hex_span,
            )
            span.__enter__()
        try:
            if op == "publish":
                # A newer publish for this key already landed while we
                # were retrying: applying ours would regress the store.
                if self.version_acked.get(key, 0) >= version:
                    self._count("publish.superseded")
                    return "ok"
                self._publish_to_shard(shard, key, version)
                self.version_acked[key] = version
                self._count("publish.ok")
            else:
                start = rng.randrange(shard.size)
                content = shard.system.fetch(start, self.local_key(key), shard.family)
                self._check_fetch(rid, key, content, floor, shard.family)
                if content is not None:
                    parsed = parse_feed(content)
                    if parsed:
                        self._stale[key] = (parsed[1], content)
                self._count("fetch.ok")
            return "ok"
        except JnsResourceError:
            shard.recover_fuel()
            return "fuel"
        finally:
            if span is not None:
                span.__exit__(None, None, None)

    def _check_fetch(
        self, rid: int, key: int, content: Optional[str], floor: int, family: str
    ) -> None:
        """The per-request oracle (see module docstring)."""
        if content is None:
            self._violation(rid, key, "lost", family=family)
            return
        parsed = parse_feed(content)
        if parsed is None:
            self._violation(rid, key, "malformed", content=content)
            return
        got_key, got_version = parsed
        if got_key != key:
            self._violation(rid, key, "wrong-key", got=got_key)
            return
        issued = self.version_issued.get(key, 0)
        if got_version > issued or got_version < 1:
            self._violation(rid, key, "phantom-version", got=got_version, issued=issued)
            return
        if family == "corona" and got_version < floor:
            self._violation(
                rid, key, "stale-under-base-family", got=got_version, floor=floor
            )
            return
        lag = self.version_acked.get(key, 0) - got_version
        if lag > 0:
            self._observe("staleness.cache_lag", lag)

    def _degrade(self, rid: int, op: str, key: int, last_outcome: str) -> None:
        if op == "fetch" and key in self._stale:
            stale_version, _content = self._stale[key]
            self._count("degraded.stale_serve")
            self.metrics.inc("corona_requests_total", op=op,
                             outcome="degraded",
                             help="corona requests by op and outcome")
            self._observe(
                "degraded.staleness",
                max(0, self.version_acked.get(key, 0) - stale_version),
            )
            self._completed += 1
            return
        self._count("requests.failed")
        self.metrics.inc("corona_requests_total", op=op, outcome="failed",
                         help="corona requests by op and outcome")
        self.failures.append(
            {"rid": rid, "op": op, "key": key, "last_outcome": last_outcome}
        )

    # ---- evolution -------------------------------------------------------

    async def _evolution(self) -> None:
        for j, (frm, to) in enumerate(TRANSITIONS):
            await self._evolve_gates[j].wait()
            with TRACER.span("corona.evolve", transition=f"{frm}->{to}"):
                for shard in self.shards:
                    await self._evolve_shard(shard, j)

    async def _evolve_shard(self, shard: Shard, j: int) -> None:
        frm, to = TRANSITIONS[j]
        if FAMILIES.index(shard.family) >= FAMILIES.index(to):
            return  # already there (journal recovery on a resumed driver)
        self.journal.record(
            shard=shard.index,
            transition=f"{frm}->{to}",
            phase="prepare",
            t_ms=self.loop.now,
            epoch=shard.epoch,
        )
        if self.kill_after_prepare == (j, shard.index):
            raise DriverKilled(f"killed after prepare of {frm}->{to} @{shard.index}")
        if shard.down:
            # Crash raced the transition: leave it pending; the restart
            # path completes it from the journal (phase two).
            self._count("evolution.deferred")
            return
        shard.gate.clear()
        t0_virtual = self.loop.now
        t0_wall = time.perf_counter()
        shard.system.evolve(to, threshold=self.bee_threshold)
        self._wall_pause.observe((time.perf_counter() - t0_wall) * 1000.0)
        # The view change itself is atomic in virtual time; the pause
        # clients observe is modelled as proportional to shard size.
        await self.loop.sleep(self.pause_ms_per_node * shard.size)
        shard.family = to
        shard.gate.set()
        self._observe("evolution.pause_virtual_ms", self.loop.now - t0_virtual)
        self._count("evolution.applied")
        self.journal.record(
            shard=shard.index,
            transition=f"{frm}->{to}",
            phase="done",
            t_ms=self.loop.now,
            epoch=shard.epoch,
        )

    # ---- isolation oracle ------------------------------------------------

    def _check_isolation(self) -> None:
        """Every row in every shard heap must belong to that shard: the
        global key embedded in the content maps back to this shard and
        this local slot."""
        for shard in self.shards:
            if shard.system is None:
                continue
            for _node, local, version, content in shard.system.store_contents():
                parsed = parse_feed(content)
                if parsed is None:
                    self._violation(-1, local, "isolation-malformed", shard=shard.index)
                    continue
                gkey, _v = parsed
                if self.owner_of(gkey) != shard.index or self.local_key(gkey) != local:
                    self._violation(
                        -1, gkey, "isolation-breach", shard=shard.index, local=local
                    )

    # ---- entry point -----------------------------------------------------

    async def _main(self) -> None:
        generator = self.loop.create_task(self._generate(), name="generator")
        evolution = self.loop.create_task(self._evolution(), name="evolution")
        await generator
        for gate in self._evolve_gates:
            gate.set()  # short runs: force any unreached transition now
        await evolution

    def run(self) -> ChaosReport:
        wall0 = time.perf_counter()
        killed = False
        self._boot_shards()
        try:
            self.loop.run(self.loop.create_task(self._main(), name="driver"))
        except DriverKilled:
            killed = True
        self._check_isolation()
        wall_s = time.perf_counter() - wall0
        shards = [
            {
                "index": s.index,
                "family": s.family,
                "epoch": s.epoch,
                "size": s.size,
                "down": s.down,
                "stats": (
                    None
                    if s.system is None
                    else {
                        "lookups": s.system.stats().lookups,
                        "total_hops": s.system.stats().total_hops,
                        "misses": s.system.stats().misses,
                    }
                ),
            }
            for s in self.shards
        ]
        return ChaosReport(
            params={
                "nodes": self.nodes,
                "shards": self.nshards,
                "objects": self.objects,
                "requests": self.requests,
                "seed": self.seed,
                "plan": self.plan.to_dict(),
                "retry": self.retry.to_dict(),
                "evolve_at": list(self.evolve_at),
                "publish_every": self.publish_every,
                "interarrival_ms": self.interarrival_ms,
                "pause_ms_per_node": self.pause_ms_per_node,
                "bee_threshold": self.bee_threshold,
            },
            counters=dict(self.counters),
            histograms={k: h.to_dict() for k, h in self._hists.items()},
            shards=shards,
            journal=list(self.journal.entries),
            oracle_violations=self.oracle_violations,
            failures=self.failures,
            virtual_ms=self.loop.now,
            killed=killed,
            trace_digest=hashlib.sha256(
                "\n".join(self.trace_ids).encode()
            ).hexdigest(),
            wall={
                "seconds": round(wall_s, 3),
                "requests_completed": self._completed,
                "rps": round(self._completed / wall_s, 1) if wall_s else 0.0,
                "evolution_pause_ms": self._wall_pause.to_dict(),
            },
        )


def run_chaos(
    nodes: int = 256,
    shards: int = 4,
    objects: int = 96,
    requests: int = 600,
    seed: int = 11,
    faults: str = "",
    **kwargs: Any,
) -> ChaosReport:
    """Convenience wrapper: parse a fault-plan string and run."""
    plan = FaultPlan.parse(faults) if faults else FaultPlan()
    driver = ChaosCoronaDriver(
        nodes=nodes,
        shards=shards,
        objects=objects,
        requests=requests,
        seed=seed,
        plan=plan,
        **kwargs,
    )
    return driver.run()
