"""CorONA: live evolution of a running publish-subscribe system
(Section 7.4).

The paper ports CorONA (an RSS feed aggregator over the Beehive
replication framework over the Pastry DHT) to J&s and evolves the
*running* system from passive caching (PC-Pastry) to active replication
(Beehive) by changing the views of the host-node objects.

Substitutions (recorded in DESIGN.md): the Pastry overlay becomes a
deterministic in-process ring with power-of-two finger tables (Chord-like
greedy prefix routing — same O(log n) hop shape); the network is
synchronous; feeds are small content strings.  All shared structures are
linked (nodes, fingers, store entries) because arrays of family types do
not participate in implicit view adaptation.

Family structure:

* ``corona``    — the base system: ring of ``Node`` objects with finger
  tables, per-node object ``Store``, ``DataObject`` feeds, a ``Net``
  aggregate with fetch/publish and hop-count statistics, and two hook
  methods (``cacheProbe``/``recordFetch``) that do nothing;
* ``pccorona``  — PC-Pastry-style passive caching: ``Node`` gains an
  (unshared, masked) ``CacheMgr`` and overrides the hooks to consult and
  fill a per-node cache along the lookup path;
* ``beecorona`` — Beehive-style active replication: ``Node`` gains an
  unshared ``ReplMgr``; a maintenance round proactively replicates
  popular objects to every node, making popular fetches O(1).

The evolution code (``Main.evolveToPC`` / ``Main.evolveToBee``) changes
the view of each live host node and initializes the masked manager field,
exactly the paper's recipe; it is a few lines against the whole system.

Package layout: :mod:`.source` holds the J&s program, :mod:`.system`
the synchronous experiment driver, and :mod:`.driver` the chaos harness
(sharded async traffic, fault injection, crash-recoverable evolution —
see ``docs/IMPLEMENTATION.md``, "CorONA under chaos").
"""

from __future__ import annotations

from .driver import (
    TRANSITIONS,
    ChaosCoronaDriver,
    ChaosReport,
    DriverKilled,
    EvolutionJournal,
    Shard,
    feed_content,
    parse_feed,
    run_chaos,
)
from .source import SOURCE, evolution_loc, program
from .system import (
    FAMILIES,
    FAMILY_CODES,
    CoronaSystem,
    PhaseStats,
    main,
    run_experiment,
)

__all__ = [
    "SOURCE",
    "program",
    "evolution_loc",
    "FAMILIES",
    "FAMILY_CODES",
    "CoronaSystem",
    "PhaseStats",
    "run_experiment",
    "main",
    "TRANSITIONS",
    "ChaosCoronaDriver",
    "ChaosReport",
    "DriverKilled",
    "EvolutionJournal",
    "Shard",
    "feed_content",
    "parse_feed",
    "run_chaos",
]

if __name__ == "__main__":
    main()
