"""CorONA: live evolution of a running publish-subscribe system
(Section 7.4).

The paper ports CorONA (an RSS feed aggregator over the Beehive
replication framework over the Pastry DHT) to J&s and evolves the
*running* system from passive caching (PC-Pastry) to active replication
(Beehive) by changing the views of the host-node objects.

Substitutions (recorded in DESIGN.md): the Pastry overlay becomes a
deterministic in-process ring with power-of-two finger tables (Chord-like
greedy prefix routing — same O(log n) hop shape); the network is
synchronous; feeds are small content strings.  All shared structures are
linked (nodes, fingers, store entries) because arrays of family types do
not participate in implicit view adaptation.

Family structure:

* ``corona``    — the base system: ring of ``Node`` objects with finger
  tables, per-node object ``Store``, ``DataObject`` feeds, a ``Net``
  aggregate with fetch/publish and hop-count statistics, and two hook
  methods (``cacheProbe``/``recordFetch``) that do nothing;
* ``pccorona``  — PC-Pastry-style passive caching: ``Node`` gains an
  (unshared, masked) ``CacheMgr`` and overrides the hooks to consult and
  fill a per-node cache along the lookup path;
* ``beecorona`` — Beehive-style active replication: ``Node`` gains an
  unshared ``ReplMgr``; a maintenance round proactively replicates
  popular objects to every node, making popular fetches O(1).

The evolution code (``Main.evolveToPC`` / ``Main.evolveToBee``) changes
the view of each live host node and initializes the masked manager field,
exactly the paper's recipe; it is a few lines against the whole system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .. import cached_program

SOURCE = """
class corona {
  class DataObject {
    int key;
    int version;
    String content;
    int hits;
    DataObject(int key, int version, String content) {
      this.key = key; this.version = version; this.content = content;
    }
  }
  class Entry {
    int key;
    DataObject obj;
    Entry next;
  }
  class Store {
    Entry first;
    int count;
    void put(DataObject d) {
      Entry e = first;
      while (e != null) {
        if (e.key == d.key) { e.obj = d; return; }
        e = e.next;
      }
      Entry fresh = new Entry();
      fresh.key = d.key;
      fresh.obj = d;
      fresh.next = first;
      first = fresh;
      count = count + 1;
    }
    DataObject get(int key) {
      Entry e = first;
      while (e != null) {
        if (e.key == key) { return e.obj; }
        e = e.next;
      }
      return null;
    }
  }
  class Finger {
    Node target;
    int span;      // this finger jumps 2^i positions around the ring
    Finger next;
  }
  class Node {
    int id;
    Node nextNode;     // ring order (successor)
    Finger fingers;    // largest span first
    Store store;
    Node(int id) {
      this.id = id;
      this.store = new Store();
    }
    // hooks overridden by the caching families
    DataObject cacheProbe(int key) { return null; }
    void recordFetch(DataObject d) { }

    // greedy clockwise routing: follow the largest finger that does not
    // overshoot the target (counting ring distance)
    Node closerTo(int target, int ringSize) {
      int dist = (target - id + ringSize) % ringSize;
      Finger f = fingers;
      while (f != null) {
        if (f.span <= dist) { return f.target; }
        f = f.next;
      }
      return nextNode;
    }
  }
  class Net {
    Node first;
    int size;
    int totalHops;
    int lookups;
    int misses;
    Net(int size) {
      this.size = size;
    }
    Node nodeAt(int id) {
      Node n = first;
      while (n.id != id) { n = n.nextNode; }
      return n;
    }
    int ownerId(int key) {
      int k = key % size;
      if (k < 0) { k = k + size; }
      return k;
    }
    void publish(DataObject d) {
      nodeAt(ownerId(d.key)).store.put(d);
    }
    // route from a starting node to the key owner, consulting per-hop
    // caches (the hook does nothing in the base family)
    String fetch(int startId, int key) {
      int target = ownerId(key);
      Node cur = nodeAt(startId);
      int hops = 0;
      DataObject found = null;
      while (found == null) {
        found = cur.cacheProbe(key);
        if (found == null) {
          if (cur.id == target) {
            found = cur.store.get(key);
            if (found == null) { misses = misses + 1; return null; }
            found.hits = found.hits + 1;
          } else {
            cur = cur.closerTo(target, size);
            hops = hops + 1;
          }
        }
      }
      // let nodes on the (reverse) path record the fetch
      cur.recordFetch(found);
      nodeAt(startId).recordFetch(found);
      totalHops = totalHops + hops;
      lookups = lookups + 1;
      return found.content;
    }
  }
}

class pccorona extends corona adapts corona {
  class CacheMgr {
    Store cache;
    int hits;
    int capacity;
    CacheMgr() { this.cache = new Store(); this.capacity = 4; }
    void add(DataObject d) {
      if (cache.get(d.key) == null && cache.count >= capacity) {
        cache.first = cache.first.next;   // evict the oldest entry
        cache.count = cache.count - 1;
      }
      cache.put(d);
    }
  }
  class Node {
    CacheMgr mgr;
    DataObject cacheProbe(int key) {
      DataObject d = mgr.cache.get(key);
      if (d != null) { mgr.hits = mgr.hits + 1; }
      return d;
    }
    void recordFetch(DataObject d) { mgr.add(d); }
  }
}

class beecorona extends corona adapts corona {
  class ReplMgr {
    Store replicas;
    int level;       // Beehive replication level (0 = everywhere)
    ReplMgr() { this.replicas = new Store(); this.level = 1; }
  }
  class Node {
    ReplMgr repl;
    DataObject cacheProbe(int key) { return repl.replicas.get(key); }
    void recordFetch(DataObject d) { }
  }
  class Net {
    // proactive replication: push every object whose popularity crosses
    // the threshold to all nodes (Beehive level-0 for hot objects)
    int maintain(int threshold) {
      int replicated = 0;
      Node n = first;
      boolean more = true;
      while (more) {
        Entry e = n.store.first;
        while (e != null) {
          if (e.obj.hits >= threshold) {
            Node m = n.nextNode;
            while (m != n) {
              m.repl.replicas.put(e.obj);
              m = m.nextNode;
            }
            replicated = replicated + 1;
          }
          e = e.next;
        }
        n = n.nextNode;
        if (n == first) { more = false; }
      }
      return replicated;
    }
  }
}

class Rand {
  int seed;
  Rand(int seed) { this.seed = seed; }
  int nextInt(int n) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    if (seed < 0) { seed = -seed; }
    return (seed / 65536) % n;   // high bits: LCG low bits cycle
  }
}

class Main {
  corona!.Net boot(int size) {
    corona!.Net net = new corona.Net(size);
    // create the ring
    corona!.Node prev = null;
    corona!.Node first = null;
    for (int i = 0; i < size; i++) {
      corona!.Node n = new corona.Node(i);
      if (prev != null) { prev.nextNode = n; }
      if (first == null) { first = n; }
      prev = n;
    }
    prev.nextNode = first;
    net.first = first;
    // finger tables: spans 2^k, largest first
    corona!.Node cur = first;
    for (int i = 0; i < size; i++) {
      int span = 1;
      while (span * 2 <= size) { span = span * 2; }
      // build from smallest span so the list ends largest-first
      corona!.Finger acc = null;
      for (int s = 1; s <= span; s = s * 2) {
        corona!.Finger f = new corona.Finger();
        f.span = s;
        f.target = net.nodeAt((cur.id + s) % size);
        f.next = acc;
        acc = f;
      }
      cur.fingers = acc;
      cur = cur.nextNode;
    }
    return net;
  }

  void publishAll(corona!.Net net, int objects) {
    for (int k = 0; k < objects; k++) {
      net.publish(new corona.DataObject(k, 1, "feed-" + k));
    }
  }

  // a zipf-ish workload: half the fetches go to a few hot feeds
  int workload(corona!.Net net, int fetches, int objects, int seed) {
    Rand r = new Rand(seed);
    int bad = 0;
    for (int i = 0; i < fetches; i++) {
      int key = r.nextInt(objects);
      if (r.nextInt(2) == 0) { key = r.nextInt(3); }
      String content = net.fetch(r.nextInt(net.size), key);
      if (content == null) { bad = bad + 1; }
    }
    return bad;
  }

  // ---- the evolution code (the paper's <40 lines vs 8300) -------------
  void evolveToPC(corona!.Net net)
      sharing corona!.Node = pccorona!.Node\\mgr {
    corona!.Node n = net.first;
    boolean more = true;
    while (more) {
      pccorona!.Node\\mgr p = (view pccorona!.Node\\mgr)n;
      p.mgr = new pccorona.CacheMgr();
      n = n.nextNode;
      if (n == net.first) { more = false; }
    }
  }
  void evolveToBee(corona!.Net net)
      sharing corona!.Node = beecorona!.Node\\repl {
    corona!.Node n = net.first;
    boolean more = true;
    while (more) {
      beecorona!.Node\\repl b = (view beecorona!.Node\\repl)n;
      b.repl = new beecorona.ReplMgr();
      n = n.nextNode;
      if (n == net.first) { more = false; }
    }
  }
  // ----------------------------------------------------------------------

  int maintainBee(corona!.Net net, int threshold)
      sharing corona!.Net = beecorona!.Net {
    beecorona!.Net bnet = (view beecorona!.Net)net;
    return bnet.maintain(threshold);
  }

  String fetchVia(corona!.Net net, int family, int startId, int key)
      sharing corona!.Net = pccorona!.Net,
              corona!.Net = beecorona!.Net {
    if (family == 1) {
      pccorona!.Net pnet = (view pccorona!.Net)net;
      return pnet.fetch(startId, key);
    }
    if (family == 2) {
      beecorona!.Net bnet = (view beecorona!.Net)net;
      return bnet.fetch(startId, key);
    }
    return net.fetch(startId, key);
  }

  int workloadVia(corona!.Net net, int family, int fetches, int objects, int seed) {
    Rand r = new Rand(seed);
    int bad = 0;
    for (int i = 0; i < fetches; i++) {
      int key = r.nextInt(objects);
      if (r.nextInt(2) == 0) { key = r.nextInt(3); }
      String content = fetchVia(net, family, r.nextInt(net.size), key);
      if (content == null) { bad = bad + 1; }
    }
    return bad;
  }
}
"""

#: First and last line (1-based, inclusive) of the evolution methods in
#: SOURCE, used to report the evolution-code fraction as the paper does.
_EVOLUTION_MARKERS = ("---- the evolution code", "--------------------\n")


def program():
    return cached_program(SOURCE)


@dataclass
class PhaseStats:
    lookups: int
    total_hops: int
    misses: int

    @property
    def avg_hops(self) -> float:
        return self.total_hops / self.lookups if self.lookups else 0.0


class CoronaSystem:
    """Python driver for the CorONA experiment: boots the ring, runs
    workload phases under each family, evolving the live system between
    phases without recreating any node or data object."""

    def __init__(
        self,
        size: int = 16,
        objects: int = 64,
        mode: str = "jns",
        compiled: bool = False,
        specialized: bool = False,
    ):
        self.interp = program().interp(
            mode=mode, compiled=compiled, specialized=specialized
        )
        self.main = self.interp.new_instance(("Main",), ())
        self.size = size
        self.objects = objects
        self.net = self.interp.call_method(self.main, "boot", [size])
        self.interp.call_method(self.main, "publishAll", [self.net, objects])
        self._node_ids_before = self._node_instances()

    def _node_instances(self):
        ids = []
        first = self.interp.get_field(self.net, "first")
        node = first
        while True:
            ids.append(id(node.inst))
            node = self.interp.get_field(node, "nextNode")
            if node.inst is first.inst:
                break
        return ids

    def _reset_stats(self):
        self.interp.set_field(self.net, "totalHops", 0)
        self.interp.set_field(self.net, "lookups", 0)
        self.interp.set_field(self.net, "misses", 0)

    def _stats(self) -> PhaseStats:
        return PhaseStats(
            lookups=self.interp.get_field(self.net, "lookups"),
            total_hops=self.interp.get_field(self.net, "totalHops"),
            misses=self.interp.get_field(self.net, "misses"),
        )

    def run_phase(self, family: str, fetches: int = 200, seed: int = 11) -> PhaseStats:
        """family: "corona", "pccorona", or "beecorona"."""
        code = {"corona": 0, "pccorona": 1, "beecorona": 2}[family]
        self._reset_stats()
        bad = self.interp.call_method(
            self.main, "workloadVia", [self.net, code, fetches, self.objects, seed]
        )
        if bad:
            raise AssertionError(f"{bad} fetches returned no content")
        return self._stats()

    def evolve_to_pc(self) -> None:
        self.interp.call_method(self.main, "evolveToPC", [self.net])

    def evolve_to_bee(self, threshold: int = 5) -> int:
        self.interp.call_method(self.main, "evolveToBee", [self.net])
        return self.interp.call_method(self.main, "maintainBee", [self.net, threshold])

    def nodes_preserved(self) -> bool:
        """Evolution must not create or replace host-node objects."""
        return self._node_instances() == self._node_ids_before


def evolution_loc() -> Dict[str, int]:
    """Lines of evolution code vs the whole system (the paper reports
    <40 of 8300)."""
    lines = SOURCE.splitlines()
    start = next(i for i, l in enumerate(lines) if "the evolution code" in l)
    end = next(
        i for i, l in enumerate(lines) if i > start and l.strip().startswith("// ----")
    )
    evolution = sum(
        1 for l in lines[start + 1 : end] if l.strip() and not l.strip().startswith("//")
    )
    total = sum(1 for l in lines if l.strip() and not l.strip().startswith("//"))
    return {"evolution": evolution, "total": total}


def run_experiment(size: int = 16, objects: int = 64, fetches: int = 300):
    """The full Section 7.4 scenario; returns per-phase stats."""
    sys = CoronaSystem(size=size, objects=objects)
    plain = sys.run_phase("corona", fetches)
    sys.evolve_to_pc()
    pc_cold = sys.run_phase("pccorona", fetches, seed=11)
    pc_warm = sys.run_phase("pccorona", fetches, seed=23)
    replicated = sys.evolve_to_bee(threshold=5)
    bee = sys.run_phase("beecorona", fetches, seed=37)
    assert sys.nodes_preserved(), "evolution must reuse the live node objects"
    return {
        "plain": plain,
        "pc_cold": pc_cold,
        "pc_warm": pc_warm,
        "bee": bee,
        "replicated": replicated,
        "loc": evolution_loc(),
    }


def main() -> None:
    results = run_experiment()
    print("CorONA evolution experiment (Section 7.4 reproduction)")
    for phase in ("plain", "pc_cold", "pc_warm", "bee"):
        stats = results[phase]
        print(
            f"  {phase:8s} avg hops {stats.avg_hops:5.2f} "
            f"({stats.lookups} lookups, {stats.misses} misses)"
        )
    print(f"  objects proactively replicated: {results['replicated']}")
    loc = results["loc"]
    print(f"  evolution code: {loc['evolution']} of {loc['total']} lines")


if __name__ == "__main__":
    main()
