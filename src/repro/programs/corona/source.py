"""The CorONA J&s program (Section 7.4) and its static metrics.

The source string is the single authority for the corona / pccorona /
beecorona family tower; both the synchronous experiment driver
(``system.py``) and the chaos driver (``driver.py``) compile it via
``program()``.  Substitutions from the real CorONA stack are documented
in the package docstring (``__init__.py``).
"""

from __future__ import annotations

from typing import Dict

from .. import cached_program

SOURCE = """
class corona {
  class DataObject {
    int key;
    int version;
    String content;
    int hits;
    DataObject(int key, int version, String content) {
      this.key = key; this.version = version; this.content = content;
    }
  }
  class Entry {
    int key;
    DataObject obj;
    Entry next;
  }
  class Store {
    Entry first;
    int count;
    void put(DataObject d) {
      Entry e = first;
      while (e != null) {
        if (e.key == d.key) { e.obj = d; return; }
        e = e.next;
      }
      Entry fresh = new Entry();
      fresh.key = d.key;
      fresh.obj = d;
      fresh.next = first;
      first = fresh;
      count = count + 1;
    }
    DataObject get(int key) {
      Entry e = first;
      while (e != null) {
        if (e.key == key) { return e.obj; }
        e = e.next;
      }
      return null;
    }
  }
  class Finger {
    Node target;
    int span;      // this finger jumps 2^i positions around the ring
    Finger next;
  }
  class Node {
    int id;
    Node nextNode;     // ring order (successor)
    Finger fingers;    // largest span first
    Store store;
    Node(int id) {
      this.id = id;
      this.store = new Store();
    }
    // hooks overridden by the caching families
    DataObject cacheProbe(int key) { return null; }
    void recordFetch(DataObject d) { }

    // greedy clockwise routing: follow the largest finger that does not
    // overshoot the target (counting ring distance)
    Node closerTo(int target, int ringSize) {
      int dist = (target - id + ringSize) % ringSize;
      Finger f = fingers;
      while (f != null) {
        if (f.span <= dist) { return f.target; }
        f = f.next;
      }
      return nextNode;
    }
  }
  class Net {
    Node first;
    int size;
    int totalHops;
    int lookups;
    int misses;
    Net(int size) {
      this.size = size;
    }
    Node nodeAt(int id) {
      Node n = first;
      while (n.id != id) { n = n.nextNode; }
      return n;
    }
    int ownerId(int key) {
      int k = key % size;
      if (k < 0) { k = k + size; }
      return k;
    }
    void publish(DataObject d) {
      nodeAt(ownerId(d.key)).store.put(d);
    }
    // route from a starting node to the key owner, consulting per-hop
    // caches (the hook does nothing in the base family)
    String fetch(int startId, int key) {
      int target = ownerId(key);
      Node cur = nodeAt(startId);
      int hops = 0;
      DataObject found = null;
      while (found == null) {
        found = cur.cacheProbe(key);
        if (found == null) {
          if (cur.id == target) {
            found = cur.store.get(key);
            if (found == null) { misses = misses + 1; return null; }
            found.hits = found.hits + 1;
          } else {
            cur = cur.closerTo(target, size);
            hops = hops + 1;
          }
        }
      }
      // let nodes on the (reverse) path record the fetch
      cur.recordFetch(found);
      nodeAt(startId).recordFetch(found);
      totalHops = totalHops + hops;
      lookups = lookups + 1;
      return found.content;
    }
  }
}

class pccorona extends corona adapts corona {
  class CacheMgr {
    Store cache;
    int hits;
    int capacity;
    CacheMgr() { this.cache = new Store(); this.capacity = 4; }
    void add(DataObject d) {
      if (cache.get(d.key) == null && cache.count >= capacity) {
        cache.first = cache.first.next;   // evict the oldest entry
        cache.count = cache.count - 1;
      }
      cache.put(d);
    }
  }
  class Node {
    CacheMgr mgr;
    DataObject cacheProbe(int key) {
      DataObject d = mgr.cache.get(key);
      if (d != null) { mgr.hits = mgr.hits + 1; }
      return d;
    }
    void recordFetch(DataObject d) { mgr.add(d); }
  }
}

class beecorona extends corona adapts corona {
  class ReplMgr {
    Store replicas;
    int level;       // Beehive replication level (0 = everywhere)
    ReplMgr() { this.replicas = new Store(); this.level = 1; }
  }
  class Node {
    ReplMgr repl;
    DataObject cacheProbe(int key) { return repl.replicas.get(key); }
    void recordFetch(DataObject d) { }
  }
  class Net {
    // proactive replication: push every object whose popularity crosses
    // the threshold to all nodes (Beehive level-0 for hot objects)
    int maintain(int threshold) {
      int replicated = 0;
      Node n = first;
      boolean more = true;
      while (more) {
        Entry e = n.store.first;
        while (e != null) {
          if (e.obj.hits >= threshold) {
            Node m = n.nextNode;
            while (m != n) {
              m.repl.replicas.put(e.obj);
              m = m.nextNode;
            }
            replicated = replicated + 1;
          }
          e = e.next;
        }
        n = n.nextNode;
        if (n == first) { more = false; }
      }
      return replicated;
    }
  }
}

class Rand {
  int seed;
  Rand(int seed) { this.seed = seed; }
  int nextInt(int n) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    if (seed < 0) { seed = -seed; }
    return (seed / 65536) % n;   // high bits: LCG low bits cycle
  }
}

class Main {
  corona!.Net boot(int size) {
    corona!.Net net = new corona.Net(size);
    // create the ring
    corona!.Node prev = null;
    corona!.Node first = null;
    for (int i = 0; i < size; i++) {
      corona!.Node n = new corona.Node(i);
      if (prev != null) { prev.nextNode = n; }
      if (first == null) { first = n; }
      prev = n;
    }
    prev.nextNode = first;
    net.first = first;
    // finger tables: spans 2^k, largest first
    corona!.Node cur = first;
    for (int i = 0; i < size; i++) {
      int span = 1;
      while (span * 2 <= size) { span = span * 2; }
      // build from smallest span so the list ends largest-first
      corona!.Finger acc = null;
      for (int s = 1; s <= span; s = s * 2) {
        corona!.Finger f = new corona.Finger();
        f.span = s;
        f.target = net.nodeAt((cur.id + s) % size);
        f.next = acc;
        acc = f;
      }
      cur.fingers = acc;
      cur = cur.nextNode;
    }
    return net;
  }

  void publishAll(corona!.Net net, int objects) {
    for (int k = 0; k < objects; k++) {
      net.publish(new corona.DataObject(k, 1, "feed-" + k));
    }
  }

  // a zipf-ish workload: half the fetches go to a few hot feeds
  int workload(corona!.Net net, int fetches, int objects, int seed) {
    Rand r = new Rand(seed);
    int bad = 0;
    for (int i = 0; i < fetches; i++) {
      int key = r.nextInt(objects);
      if (r.nextInt(2) == 0) { key = r.nextInt(3); }
      String content = net.fetch(r.nextInt(net.size), key);
      if (content == null) { bad = bad + 1; }
    }
    return bad;
  }

  // ---- the evolution code (the paper's <40 lines vs 8300) -------------
  void evolveToPC(corona!.Net net)
      sharing corona!.Node = pccorona!.Node\\mgr {
    corona!.Node n = net.first;
    boolean more = true;
    while (more) {
      pccorona!.Node\\mgr p = (view pccorona!.Node\\mgr)n;
      p.mgr = new pccorona.CacheMgr();
      n = n.nextNode;
      if (n == net.first) { more = false; }
    }
  }
  void evolveToBee(corona!.Net net)
      sharing corona!.Node = beecorona!.Node\\repl {
    corona!.Node n = net.first;
    boolean more = true;
    while (more) {
      beecorona!.Node\\repl b = (view beecorona!.Node\\repl)n;
      b.repl = new beecorona.ReplMgr();
      n = n.nextNode;
      if (n == net.first) { more = false; }
    }
  }
  // ----------------------------------------------------------------------

  int maintainBee(corona!.Net net, int threshold)
      sharing corona!.Net = beecorona!.Net {
    beecorona!.Net bnet = (view beecorona!.Net)net;
    return bnet.maintain(threshold);
  }

  String fetchVia(corona!.Net net, int family, int startId, int key)
      sharing corona!.Net = pccorona!.Net,
              corona!.Net = beecorona!.Net {
    if (family == 1) {
      pccorona!.Net pnet = (view pccorona!.Net)net;
      return pnet.fetch(startId, key);
    }
    if (family == 2) {
      beecorona!.Net bnet = (view beecorona!.Net)net;
      return bnet.fetch(startId, key);
    }
    return net.fetch(startId, key);
  }

  int workloadVia(corona!.Net net, int family, int fetches, int objects, int seed) {
    Rand r = new Rand(seed);
    int bad = 0;
    for (int i = 0; i < fetches; i++) {
      int key = r.nextInt(objects);
      if (r.nextInt(2) == 0) { key = r.nextInt(3); }
      String content = fetchVia(net, family, r.nextInt(net.size), key);
      if (content == null) { bad = bad + 1; }
    }
    return bad;
  }
}
"""


#: First and last line (1-based, inclusive) of the evolution methods in
#: SOURCE, used to report the evolution-code fraction as the paper does.
_EVOLUTION_MARKERS = ("---- the evolution code", "--------------------\n")


def program():
    return cached_program(SOURCE)


def evolution_loc() -> Dict[str, int]:
    """Lines of evolution code vs the whole system (the paper reports
    <40 of 8300)."""
    lines = SOURCE.splitlines()
    start = next(i for i, l in enumerate(lines) if "the evolution code" in l)
    end = next(
        i for i, l in enumerate(lines) if i > start and l.strip().startswith("// ----")
    )
    evolution = sum(
        1 for l in lines[start + 1 : end] if l.strip() and not l.strip().startswith("//")
    )
    total = sum(1 for l in lines if l.strip() and not l.strip().startswith("//"))
    return {"evolution": evolution, "total": total}
