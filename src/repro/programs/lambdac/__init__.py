"""The lambda compiler (Section 7.3, Figures 6, 7, and 20).

Family structure (Figure 20):

* ``base``    — AST classes for the plain lambda calculus (Var/Abs/App);
* ``lam``     — the reusable in-place translation machinery over the
  *base* nodes (translate methods + Translator with reconstruct methods);
  the paper inlines this into both ``sum`` and ``pair``, which would make
  their intersection conflict — hoisting the common code into one shared
  ancestor is the standard diamond refactoring and keeps ``sumpair``
  free of translation code, as the paper reports;
* ``sum``     — adds Inl/Inr/Case and their translation to Church-encoded
  sums;
* ``pair``    — adds Pair/Fst/Snd and their translation to Church-encoded
  pairs;
* ``sumpair`` — composes the two: ``extends sum & pair adapts base`` and
  *nothing else* ("without a single line of translation code").

Every family adapts ``base``, so translation is in-place: unchanged
Var/Abs/App nodes are reused via view changes with masks (Figure 7), and
only the new node kinds are rewritten.  A small normalizer over base
terms checks the translations semantically.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from .. import cached_program

SOURCE = """
abstract class base {
  abstract class Exp { }
  class Var extends Exp {
    String x;
    Var(String x) { this.x = x; }
  }
  class Abs extends Exp {
    String x;
    Exp e;
    Abs(String x, Exp e) { this.x = x; this.e = e; }
  }
  class App extends Exp {
    Exp f; Exp a;
    App(Exp f, Exp a) { this.f = f; this.a = a; }
  }
}

// The shared translation machinery over base nodes (see module docs).
abstract class lam extends base adapts base {
  abstract class Exp {
    abstract base!.Exp translate(Translator v);
  }
  class Var extends Exp {
    base!.Exp translate(Translator v) sharing Var = base!.Var {
      return (view base!.Var)this;
    }
  }
  class Abs extends Exp {
    base!.Exp translate(Translator v) {
      base!.Exp exp = e.translate(v);
      return v.reconstructAbs(this, x, exp);
    }
  }
  class App extends Exp {
    base!.Exp translate(Translator v) {
      base!.Exp nf = f.translate(v);
      base!.Exp na = a.translate(v);
      return v.reconstructApp(this, nf, na);
    }
  }
  class Translator {
    base!.Abs reconstructAbs(Abs old, String x, base!.Exp exp)
        sharing Abs\\e = base!.Abs\\e {
      if (old.x == x && old.e == exp) {
        base!.Abs\\e temp = (view base!.Abs\\e)old;
        temp.e = exp;
        return temp;
      }
      else { return new base.Abs(x, exp); }
    }
    base!.App reconstructApp(App old, base!.Exp nf, base!.Exp na)
        sharing App\\f\\a = base!.App\\f\\a {
      if (old.f == nf && old.a == na) {
        base!.App\\f\\a temp = (view base!.App\\f\\a)old;
        temp.f = nf;
        temp.a = na;
        return temp;
      }
      else { return new base.App(nf, na); }
    }
  }
}

// Lambda calculus with sums, translated to Church encodings:
//   inl e       =>  \\l.\\r. l [e]
//   inr e       =>  \\l.\\r. r [e]
//   case s of x1 => e1 | x2 => e2   =>   [s] (\\x1.[e1]) (\\x2.[e2])
abstract class sum extends lam adapts base {
  class Inl extends Exp {
    Exp e;
    Inl(Exp e) { this.e = e; }
    base!.Exp translate(Translator v) {
      return new base.Abs("$l", new base.Abs("$r",
          new base.App(new base.Var("$l"), e.translate(v))));
    }
  }
  class Inr extends Exp {
    Exp e;
    Inr(Exp e) { this.e = e; }
    base!.Exp translate(Translator v) {
      return new base.Abs("$l", new base.Abs("$r",
          new base.App(new base.Var("$r"), e.translate(v))));
    }
  }
  class Case extends Exp {
    Exp scrut;
    String xl; Exp left;
    String xr; Exp right;
    Case(Exp scrut, String xl, Exp left, String xr, Exp right) {
      this.scrut = scrut;
      this.xl = xl; this.left = left;
      this.xr = xr; this.right = right;
    }
    base!.Exp translate(Translator v) {
      return new base.App(
        new base.App(scrut.translate(v),
                     new base.Abs(xl, left.translate(v))),
        new base.Abs(xr, right.translate(v)));
    }
  }
}

// Lambda calculus with pairs (Figures 6-7):
//   (e1, e2)  =>  \\s. s [e1] [e2]
//   fst e     =>  [e] (\\x.\\y. x)
//   snd e     =>  [e] (\\x.\\y. y)
abstract class pair extends lam adapts base {
  class Pair extends Exp {
    Exp fst; Exp snd;
    Pair(Exp fst, Exp snd) { this.fst = fst; this.snd = snd; }
    base!.Exp translate(Translator v) {
      return new base.Abs("$s",
        new base.App(new base.App(new base.Var("$s"), fst.translate(v)),
                     snd.translate(v)));
    }
  }
  class Fst extends Exp {
    Exp e;
    Fst(Exp e) { this.e = e; }
    base!.Exp translate(Translator v) {
      return new base.App(e.translate(v),
        new base.Abs("$x", new base.Abs("$y", new base.Var("$x"))));
    }
  }
  class Snd extends Exp {
    Exp e;
    Snd(Exp e) { this.e = e; }
    base!.Exp translate(Translator v) {
      return new base.App(e.translate(v),
        new base.Abs("$x", new base.Abs("$y", new base.Var("$y"))));
    }
  }
}

// The composed compiler: sharing only, no translation code (Section 7.3).
abstract class sumpair extends sum & pair adapts base {
}

// Normal-order normalizer over base terms (names are chosen apart in the
// tests, so naive substitution suffices).
class Normalizer {
  base!.Exp subst(base!.Exp e, String n, base!.Exp v) {
    if (e instanceof base!.Var) {
      base!.Var var = (base!.Var)e;
      if (var.x == n) { return v; }
      return e;
    }
    if (e instanceof base!.Abs) {
      base!.Abs abs = (base!.Abs)e;
      if (abs.x == n) { return e; }
      return new base.Abs(abs.x, subst(abs.e, n, v));
    }
    base!.App app = (base!.App)e;
    return new base.App(subst(app.f, n, v), subst(app.a, n, v));
  }
  base!.Exp normalize(base!.Exp e, int fuel) {
    if (fuel <= 0) { return e; }
    if (e instanceof base!.App) {
      base!.App app = (base!.App)e;
      base!.Exp f = normalize(app.f, fuel - 1);
      if (f instanceof base!.Abs) {
        base!.Abs abs = (base!.Abs)f;
        return normalize(subst(abs.e, abs.x, app.a), fuel - 1);
      }
      return new base.App(f, normalize(app.a, fuel - 1));
    }
    if (e instanceof base!.Abs) {
      base!.Abs abs = (base!.Abs)e;
      return new base.Abs(abs.x, normalize(abs.e, fuel - 1));
    }
    return e;
  }
  String show(base!.Exp e) {
    if (e instanceof base!.Var) { return ((base!.Var)e).x; }
    if (e instanceof base!.Abs) {
      base!.Abs abs = (base!.Abs)e;
      return "(\\\\" + abs.x + "." + show(abs.e) + ")";
    }
    base!.App app = (base!.App)e;
    return "(" + show(app.f) + " " + show(app.a) + ")";
  }
}
"""


def program():
    return cached_program(SOURCE)


def make_interp(mode: str = "jns"):
    return program().interp(mode=mode)


class LambdaCompiler:
    """Python-side driver: build terms in any family, translate in place,
    normalize, and pretty-print."""

    def __init__(self, mode: str = "jns") -> None:
        self.interp = make_interp(mode)
        self.normalizer = self.interp.new_instance(("Normalizer",), ())

    # -- term builders (family is a path string like "sumpair") ----------

    def var(self, family: str, name: str):
        return self.interp.new_instance((family, "Var"), (name,))

    def abs(self, family: str, name: str, body):
        return self.interp.new_instance((family, "Abs"), (name, body))

    def app(self, family: str, f, a):
        return self.interp.new_instance((family, "App"), (f, a))

    def pair(self, family: str, fst, snd):
        return self.interp.new_instance((family, "Pair"), (fst, snd))

    def fst(self, family: str, e):
        return self.interp.new_instance((family, "Fst"), (e,))

    def snd(self, family: str, e):
        return self.interp.new_instance((family, "Snd"), (e,))

    def inl(self, family: str, e):
        return self.interp.new_instance((family, "Inl"), (e,))

    def inr(self, family: str, e):
        return self.interp.new_instance((family, "Inr"), (e,))

    def case(self, family: str, scrut, xl, left, xr, right):
        return self.interp.new_instance(
            (family, "Case"), (scrut, xl, left, xr, right)
        )

    # -- operations ---------------------------------------------------------

    def translate(self, family: str, term):
        translator = self.interp.new_instance((family, "Translator"), ())
        return self.interp.call_method(term, "translate", [translator])

    def normalize(self, term, fuel: int = 200):
        return self.interp.call_method(self.normalizer, "normalize", [term, fuel])

    def show(self, term) -> str:
        return self.interp.call_method(self.normalizer, "show", [term])
