"""The binary-tree view-change benchmark (Table 2, Section 7.2).

Two families share classes implementing binary trees: ``tree`` is the
base family and ``xtree`` adapts it (every class shared via ``adapts``),
adding an ``xsum`` operation.  A complete tree is built in the base
family; an explicit view change on the root moves it to ``xtree``; a
depth-first traversal triggers all the lazy implicit view changes; a
second traversal runs on the memoized reference objects; and an explicit
translation builds a fresh copy in the derived family for comparison.
"""

from __future__ import annotations

import time
from typing import Dict, Tuple

from .. import cached_program

SOURCE = """
class tree {
  class Node {
    int id;
    Node left;
    Node right;
    int sum() {
      int total = id;
      if (left != null) { total = total + left.sum(); }
      if (right != null) { total = total + right.sum(); }
      return total;
    }
  }
  Node build(int depth, int id) {
    Node n = new Node();
    n.id = id;
    if (depth > 1) {
      n.left = build(depth - 1, id * 2);
      n.right = build(depth - 1, id * 2 + 1);
    }
    return n;
  }
}
class xtree extends tree adapts tree {
  class Node {
    int xsum() {
      int total = id * 2;
      if (left != null) { total = total + left.xsum(); }
      if (right != null) { total = total + right.xsum(); }
      return total;
    }
  }
  // explicit translation: rebuild the whole tree in this family
  Node translate(tree!.Node n) {
    Node m = new Node();
    m.id = n.id;
    if (n.left != null) { m.left = translate(n.left); }
    if (n.right != null) { m.right = translate(n.right); }
    return m;
  }
}
class Harness {
  tree! baseFam;
  xtree! extFam;
  Harness() {
    this.baseFam = new tree();
    this.extFam = new xtree();
  }
  tree!.Node create(int height) { return baseFam.build(height, 1); }
  int traverse(tree!.Node root) { return root.sum(); }
  xtree!.Node change(tree!.Node root) sharing tree!.Node = xtree!.Node {
    return (view xtree!.Node)root;
  }
  int traverseExt(xtree!.Node root) { return root.xsum(); }
  xtree!.Node translate(tree!.Node root) { return extFam.translate(root); }
}
"""

ROWS = (
    "creation",
    "traversal_before",
    "view_changes",
    "traversal_after",
    "explicit_translation",
)

DEFAULT_HEIGHTS = (8, 10, 12)  # paper uses 16/18/20 on the JVM


def measure(height: int, mode: str = "jns") -> Dict[str, float]:
    """Times (seconds) for the five rows of Table 2 at one tree height."""
    program = cached_program(SOURCE)
    interp = program.interp(mode=mode)
    harness = interp.new_instance(("Harness",), ())

    times: Dict[str, float] = {}

    start = time.perf_counter()
    root = interp.call_method(harness, "create", [height])
    times["creation"] = time.perf_counter() - start

    start = time.perf_counter()
    before = interp.call_method(harness, "traverse", [root])
    times["traversal_before"] = time.perf_counter() - start

    start = time.perf_counter()
    xroot = interp.call_method(harness, "change", [root])
    after_change = interp.call_method(harness, "traverseExt", [xroot])
    times["view_changes"] = time.perf_counter() - start

    start = time.perf_counter()
    again = interp.call_method(harness, "traverseExt", [xroot])
    times["traversal_after"] = time.perf_counter() - start

    start = time.perf_counter()
    copy = interp.call_method(harness, "translate", [root])
    times["explicit_translation"] = time.perf_counter() - start

    # sanity: the adapted tree computes the derived sum over the same nodes
    assert after_change == again == 2 * before
    assert interp.call_method(harness, "traverseExt", [copy]) == after_change
    # identity is preserved by adaptation, not by translation
    assert xroot.inst is root.inst
    assert copy.inst is not root.inst
    return times


def table(heights: Tuple[int, ...] = DEFAULT_HEIGHTS, mode: str = "jns"):
    """times[row][height] for the full Table 2 grid."""
    grid = {row: {} for row in ROWS}
    for h in heights:
        measured = measure(h, mode)
        for row in ROWS:
            grid[row][h] = measured[row]
    return grid


def format_table(grid, heights=DEFAULT_HEIGHTS) -> str:
    label = {
        "creation": "Tree creation",
        "traversal_before": "Traversal before view changes",
        "view_changes": "View changes",
        "traversal_after": "Traversal after view changes",
        "explicit_translation": "Explicit translation",
    }
    lines = [f"{'Height':32s}" + "".join(f"{h:>10d}" for h in heights)]
    for row in ROWS:
        lines.append(
            f"{label[row]:32s}"
            + "".join(f"{grid[row][h]:10.3f}" for h in heights)
        )
    return "\n".join(lines)


def main() -> None:
    grid = table()
    print("Table 2 (reproduction): tree traversal, seconds")
    print(format_table(grid))


if __name__ == "__main__":
    main()
