"""Source-level profiling: jns line attribution across every backend.

Two collectors feed one per-line table:

* :class:`LineProfiler` — the deterministic event-cost profiler.  The
  walker swaps in a counting ``exec_stmt``, the closure/register
  compilers wrap each compiled statement, and the codegen emitter plants
  explicit hit calls — all only when the interpreter was built with
  ``line_profile=True``, so unprofiled runs pay nothing (same
  zero-overhead discipline as the fuel counter).  A handful of shared
  runtime hot sites (mask checks in ``get_field``, view adaptation in
  ``_adapt``, dispatch lookups in ``_lookup_method``) carry one
  ``if PROFILER.enabled:`` guard each, mirroring ``obs.TRACER``'s
  enabled-guard budget, and attribute their events to the current
  statement line.

* :class:`SamplingProfiler` — a wall-clock sampler for the codegen
  tier.  A daemon thread periodically reads ``sys._current_frames()``
  for the workload thread and resolves any frame whose code object
  lives in a ``<jns:P.C.m>`` file back through the emitted source map
  (:class:`EmittedSource.linemap`) to the originating jns line.  Sampled
  frames also yield collapsed-stack folds keyed by jns frames rather
  than obs span paths.

``merge_reports`` joins both into a :class:`ProfileReport` rendered as
an annotated-source terminal heatmap, a self-contained HTML report, or
JSON (the ``profile`` op of ``repro serve``).

The deterministic event columns are cross-backend invariants: the
``steps`` column (statement entries) agrees exactly between walker,
compiled, specialized, and codegen runs of the same program, as do the
``mask`` and ``view`` columns (the codegen tier plants explicit events
on its elided fast paths so optimized-away work is still attributed).
The ``dispatch`` column deliberately is *not* invariant — it counts
dynamic dispatch lookups, which specialization and codegen exist to
elide, so comparing it across tiers shows exactly what devirtualization
removed.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "PROFILER",
    "LineProfiler",
    "SamplingProfiler",
    "EmittedSource",
    "ProfileReport",
    "fold_label",
    "merge_reports",
    "profile_source",
]


def fold_label(name: str) -> str:
    """Sanitize one frame label for the collapsed-stack fold format.

    Folds are ``frame;frame;frame COUNT`` — a ``;`` or any whitespace
    inside a frame name would corrupt the fold structure for downstream
    tools (flamegraph.pl, speedscope), so both are replaced.
    """
    if not name:
        return "(anonymous)"
    out = []
    for ch in name:
        if ch == ";":
            out.append(":")
        elif ch.isspace():
            out.append("_")
        else:
            out.append(ch)
    return "".join(out)


class EmittedSource(str):
    """The text of one emitted codegen body, plus its source map.

    Subclasses :class:`str` so existing consumers that treat
    ``CodegenCompiler.sources[label]`` as plain text (tests, docs
    tooling) keep working unchanged.

    ``linemap[i]`` is the originating jns ``(line, col)`` for emitted
    Python line ``i + 1`` (1-based, counting the ``def`` header), or
    ``None`` for scaffolding lines (the header, fuel/ABSENT prologue).
    ``filename`` is the pseudo-filename the body was compiled under
    (``<jns:P.C.m>``) — also registered in :mod:`linecache` so
    tracebacks and frame inspection resolve to real emitted text.
    """

    label: str
    filename: str
    linemap: Tuple[Optional[Tuple[int, int]], ...]

    def __new__(
        cls,
        text: str,
        label: str = "",
        filename: str = "",
        linemap: Sequence[Optional[Tuple[int, int]]] = (),
    ) -> "EmittedSource":
        self = super().__new__(cls, text)
        self.label = label
        self.filename = filename
        self.linemap = tuple(linemap)
        return self

    def resolve(self, py_line: int) -> Optional[Tuple[int, int]]:
        """jns ``(line, col)`` for 1-based emitted Python line, if any."""
        i = py_line - 1
        if 0 <= i < len(self.linemap):
            return self.linemap[i]
        return None


class LineProfiler:
    """Deterministic per-jns-line counters.

    One process-wide instance (:data:`PROFILER`) mirrors the
    ``obs.TRACER`` pattern: hot sites check ``PROFILER.enabled`` (one
    attribute load and branch) and pay nothing when profiling is off.
    Events without an explicit line attribute to :attr:`cur_line`, the
    line of the most recently entered statement — identical across
    backends because statement entry order is a backend invariant.
    """

    EVENT_KINDS = ("mask", "view", "dispatch")

    __slots__ = ("enabled", "cur_line", "steps", "mask", "view", "dispatch")

    def __init__(self) -> None:
        self.enabled = False
        self.cur_line = 0
        self.steps: Dict[int, int] = {}
        self.mask: Dict[int, int] = {}
        self.view: Dict[int, int] = {}
        self.dispatch: Dict[int, int] = {}

    # -- lifecycle -------------------------------------------------------

    def reset(self) -> None:
        self.cur_line = 0
        self.steps = {}
        self.mask = {}
        self.view = {}
        self.dispatch = {}

    def start(self) -> None:
        self.reset()
        self.enabled = True

    def stop(self) -> None:
        self.enabled = False

    def snapshot(self) -> Dict[str, Dict[int, int]]:
        return {
            "steps": dict(self.steps),
            "mask": dict(self.mask),
            "view": dict(self.view),
            "dispatch": dict(self.dispatch),
        }

    # -- hot-path hooks --------------------------------------------------

    def stmt_hit(self, line: int) -> None:
        """One statement entry at jns ``line``; becomes the attribution
        point for subsequent anonymous events."""
        self.cur_line = line
        d = self.steps
        d[line] = d.get(line, 0) + 1

    def mask_hit(self) -> None:
        d = self.mask
        line = self.cur_line
        d[line] = d.get(line, 0) + 1

    def view_hit(self) -> None:
        d = self.view
        line = self.cur_line
        d[line] = d.get(line, 0) + 1

    def dispatch_hit(self) -> None:
        d = self.dispatch
        line = self.cur_line
        d[line] = d.get(line, 0) + 1


#: the process-wide deterministic profiler (see ``obs.TRACER``)
PROFILER = LineProfiler()

#: serializes whole profile runs (the collectors are process-global)
PROFILE_LOCK = threading.Lock()


class SamplingProfiler:
    """Wall-clock sampler for the codegen tier.

    ``start()`` records the calling thread as the workload thread and
    spawns a daemon sampler; the caller then runs the workload and calls
    ``stop()``.  Each sample walks the workload thread's Python stack;
    frames compiled from emitted jns bodies (``co_filename`` starting
    with ``<jns:``) resolve through the interpreter's live source maps.

    Per jns line: ``self_samples`` (innermost jns frame) and
    ``total_samples`` (anywhere on the stack).  Stacks of jns frames
    also accumulate as collapsed folds (outermost first) keyed by
    ``P.C.m:line`` labels.  ``jns_samples``/``resolved_samples`` track
    the attribution rate the acceptance gate asserts on.
    """

    def __init__(self, interp, interval: float = 0.001) -> None:
        self.interp = interp
        self.interval = interval
        self.samples_total = 0      # all samples of the workload thread
        self.jns_samples = 0        # samples with >= 1 codegen frame
        self.resolved_samples = 0   # ... whose innermost frame resolved
        self.self_samples: Dict[int, int] = {}
        self.total_samples: Dict[int, int] = {}
        self.folds: Dict[Tuple[str, ...], int] = {}
        self.wall_seconds = 0.0
        self._target_tid: Optional[int] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._t0 = 0.0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        self._target_tid = threading.get_ident()
        self._stop.clear()
        self._t0 = time.perf_counter()
        self._thread = threading.Thread(
            target=self._loop, name="jns-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.wall_seconds = time.perf_counter() - self._t0

    # -- sampling --------------------------------------------------------

    def _source_for(self, filename: str) -> Optional[EmittedSource]:
        cg = getattr(self.interp, "_cg", None)
        if cg is None:
            return None
        return cg.by_filename.get(filename)

    def _loop(self) -> None:
        import sys

        interval = self.interval
        tid = self._target_tid
        while not self._stop.is_set():
            time.sleep(interval)
            frame = sys._current_frames().get(tid)
            if frame is None:
                continue
            self._take(frame)

    def _take(self, frame) -> None:
        self.samples_total += 1
        # bottom of the walk is the *innermost* frame; collect jns
        # frames innermost-first, then reverse for fold order
        jns_stack: List[Tuple[str, Optional[Tuple[int, int]]]] = []
        f = frame
        while f is not None:
            co = f.f_code
            fname = co.co_filename
            if fname.startswith("<jns:"):
                es = self._source_for(fname)
                pos = es.resolve(f.f_lineno) if es is not None else None
                label = fname[5:-1] if fname.endswith(">") else fname[5:]
                jns_stack.append((label, pos))
            f = f.f_back
        if not jns_stack:
            return
        self.jns_samples += 1
        inner_label, inner_pos = jns_stack[0]
        if inner_pos is not None:
            self.resolved_samples += 1
            d = self.self_samples
            d[inner_pos[0]] = d.get(inner_pos[0], 0) + 1
        seen_lines = set()
        for _label, pos in jns_stack:
            if pos is not None:
                seen_lines.add(pos[0])
        for line in seen_lines:
            d = self.total_samples
            d[line] = d.get(line, 0) + 1
        key = tuple(
            fold_label(f"{label}:{pos[0]}" if pos else label)
            for label, pos in reversed(jns_stack)
        )
        self.folds[key] = self.folds.get(key, 0) + 1

    # -- derived ---------------------------------------------------------

    @property
    def resolution(self) -> float:
        """Fraction of codegen-tier samples attributed to a valid jns
        span — the acceptance gate asserts this stays >= 0.95."""
        if not self.jns_samples:
            return 1.0
        return self.resolved_samples / self.jns_samples

    def seconds_per_sample(self) -> float:
        if not self.samples_total:
            return 0.0
        return self.wall_seconds / self.samples_total

    def to_collapsed(self) -> str:
        """Collapsed folds keyed by jns frames (``P.C.m:line``), one
        fold per line, for flamegraph.pl / speedscope."""
        lines = [
            ";".join(key) + f" {n}"
            for key, n in sorted(self.folds.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_collapsed(self, path: str) -> int:
        text = self.to_collapsed()
        with open(path, "w") as fh:
            fh.write(text)
        return len(self.folds)


# ---------------------------------------------------------------------------
# merged report
# ---------------------------------------------------------------------------


class ProfileReport:
    """Per-jns-line attribution table over one source file."""

    def __init__(
        self,
        source: str,
        file: str = "<input>",
        det: Optional[Dict[str, Dict[int, int]]] = None,
        sampler: Optional[SamplingProfiler] = None,
        backend_det: str = "",
        backend_sampled: str = "",
    ) -> None:
        self.source = source
        self.file = file
        self.det = det or {}
        self.backend_det = backend_det
        self.backend_sampled = backend_sampled
        self.self_samples: Dict[int, int] = {}
        self.total_samples: Dict[int, int] = {}
        self.sample_seconds = 0.0
        self.samples_total = 0
        self.jns_samples = 0
        self.resolved_samples = 0
        self.folds: Dict[Tuple[str, ...], int] = {}
        if sampler is not None:
            self.self_samples = dict(sampler.self_samples)
            self.total_samples = dict(sampler.total_samples)
            self.sample_seconds = sampler.seconds_per_sample()
            self.samples_total = sampler.samples_total
            self.jns_samples = sampler.jns_samples
            self.resolved_samples = sampler.resolved_samples
            self.folds = dict(sampler.folds)

    # -- accessors -------------------------------------------------------

    @property
    def resolution(self) -> float:
        if not self.jns_samples:
            return 1.0
        return self.resolved_samples / self.jns_samples

    def hot_lines(self) -> List[int]:
        lines = set()
        for col in ("steps", "mask", "view", "dispatch"):
            lines.update(self.det.get(col, ()))
        lines.update(self.self_samples)
        lines.update(self.total_samples)
        return sorted(lines)

    def row(self, line: int) -> Dict[str, Any]:
        det = self.det
        sps = self.sample_seconds
        return {
            "line": line,
            "steps": det.get("steps", {}).get(line, 0),
            "mask": det.get("mask", {}).get(line, 0),
            "view": det.get("view", {}).get(line, 0),
            "dispatch": det.get("dispatch", {}).get(line, 0),
            "self_s": self.self_samples.get(line, 0) * sps,
            "total_s": self.total_samples.get(line, 0) * sps,
            "self_samples": self.self_samples.get(line, 0),
            "total_samples": self.total_samples.get(line, 0),
        }

    def to_dict(self) -> Dict[str, Any]:
        src_lines = self.source.splitlines()
        rows = []
        for line in self.hot_lines():
            r = self.row(line)
            r["text"] = (
                src_lines[line - 1] if 0 < line <= len(src_lines) else ""
            )
            rows.append(r)
        return {
            "file": self.file,
            "backend_det": self.backend_det,
            "backend_sampled": self.backend_sampled,
            "samples_total": self.samples_total,
            "jns_samples": self.jns_samples,
            "resolved_samples": self.resolved_samples,
            "resolution": self.resolution,
            "lines": rows,
        }

    # -- terminal heatmap ------------------------------------------------

    _HEAT = " ▁▂▃▄▅▆▇█"

    def _heat_char(self, value: float, peak: float) -> str:
        if peak <= 0 or value <= 0:
            return self._HEAT[0]
        idx = 1 + int((len(self._HEAT) - 2) * min(1.0, value / peak))
        return self._HEAT[idx]

    def render_text(self, context: int = 0, color: bool = False) -> str:
        """Annotated-source heatmap.  ``context=0`` prints the whole
        file; a positive value keeps only that many lines around each
        attributed line."""
        src_lines = self.source.splitlines()
        hot = set(self.hot_lines())
        keep: set = set(range(1, len(src_lines) + 1))
        if context > 0 and hot:
            keep = set()
            for h in hot:
                keep.update(range(max(1, h - context), h + context + 1))
        steps = self.det.get("steps", {})
        peak_steps = max(steps.values(), default=0)
        peak_self = max(self.self_samples.values(), default=0)
        out = [
            f"profile: {self.file}"
            + (f"  [events: {self.backend_det}]" if self.backend_det else "")
            + (
                f"  [time: {self.backend_sampled}, "
                f"{self.samples_total} samples, "
                f"{self.resolution:.1%} attributed]"
                if self.samples_total
                else ""
            ),
            "  heat     steps  self(ms)   disp  view  mask  source",
        ]
        for i, text in enumerate(src_lines, start=1):
            if i not in keep:
                # collapse skipped runs into one ellipsis marker
                if out[-1] != "  ...":
                    out.append("  ...")
                continue
            r = self.row(i)
            h1 = self._heat_char(r["steps"], peak_steps)
            h2 = self._heat_char(r["self_samples"], peak_self)
            cells = (
                f"{r['steps'] or '':>8}  "
                f"{(format(r['self_s'] * 1e3, '.1f') if r['self_samples'] else ''):>8}  "
                f"{r['dispatch'] or '':>5} "
                f"{r['view'] or '':>5} "
                f"{r['mask'] or '':>5}"
            )
            heat = h1 + h2
            if color and (r["steps"] or r["self_samples"]):
                heat = f"\x1b[31m{heat}\x1b[0m"
            out.append(f"  {heat}  {cells}  {i:>4}| {text}")
        return "\n".join(out) + "\n"

    # -- HTML report -----------------------------------------------------

    def render_html(self) -> str:
        """Self-contained, script-free HTML report (same ``<details>``
        style as ``repro explain --html``)."""
        import html as _html

        src_lines = self.source.splitlines()
        steps = self.det.get("steps", {})
        peak_steps = max(steps.values(), default=1)
        peak_self = max(self.self_samples.values(), default=1)
        body: List[str] = []
        body.append("<table class='prof'>")
        body.append(
            "<tr><th>line</th><th>steps</th><th>self&nbsp;ms</th>"
            "<th>disp</th><th>view</th><th>mask</th><th>source</th></tr>"
        )
        for i, text in enumerate(src_lines, start=1):
            r = self.row(i)
            pct = r["steps"] / peak_steps if peak_steps else 0.0
            spct = r["self_samples"] / peak_self if peak_self else 0.0
            shade = int(255 - 110 * max(pct, spct))
            style = (
                f" style='background:rgb(255,{shade},{shade})'"
                if (r["steps"] or r["self_samples"])
                else ""
            )
            cells = "".join(
                f"<td>{v or ''}</td>"
                for v in (
                    r["steps"],
                    format(r["self_s"] * 1e3, ".1f")
                    if r["self_samples"]
                    else "",
                    r["dispatch"],
                    r["view"],
                    r["mask"],
                )
            )
            body.append(
                f"<tr{style}><td class='n'>{i}</td>{cells}"
                f"<td><code>{_html.escape(text)}</code></td></tr>"
            )
        body.append("</table>")
        folds = ""
        if self.folds:
            rows = "".join(
                f"<tr><td>{_html.escape(';'.join(k))}</td><td>{n}</td></tr>"
                for k, n in sorted(
                    self.folds.items(), key=lambda kv: -kv[1]
                )[:40]
            )
            folds = (
                "<details><summary>jns-frame folds (top 40)</summary>"
                f"<table class='prof'><tr><th>stack</th><th>samples</th></tr>"
                f"{rows}</table></details>"
            )
        meta = (
            f"<p>file <code>{_html.escape(self.file)}</code>"
            + (f" · events from <b>{self.backend_det}</b>" if self.backend_det else "")
            + (
                f" · wall-clock from <b>{self.backend_sampled}</b>: "
                f"{self.samples_total} samples, "
                f"{self.resolution:.1%} attributed to jns spans"
                if self.samples_total
                else ""
            )
            + "</p>"
        )
        legend = (
            "<details><summary>what the columns mean</summary><ul>"
            "<li><b>steps</b> — statement entries on the deterministic"
            " tier (a backend invariant)</li>"
            "<li><b>self&nbsp;ms</b> — wall-clock sampled in the codegen"
            " tier, resolved through the emitted-source line map</li>"
            "<li><b>disp</b> — megamorphic method lookups (tier-dependent:"
            " the optimizing tiers elide them)</li>"
            "<li><b>view</b> — view-change applications</li>"
            "<li><b>mask</b> — sharing-mask checks on field reads</li>"
            "</ul></details>"
        )
        return (
            "<!doctype html><html><head><meta charset='utf-8'>"
            "<title>jns line profile</title><style>"
            "body{font-family:system-ui,sans-serif;margin:1.5rem;}"
            "table.prof{border-collapse:collapse;font-size:13px;}"
            "table.prof td,table.prof th{padding:1px 8px;text-align:right;"
            "border-bottom:1px solid #eee;}"
            "table.prof td:last-child{text-align:left;}"
            "td.n{color:#999;}code{font-family:ui-monospace,monospace;"
            "white-space:pre;}details{margin-top:1rem;}"
            "summary{cursor:pointer;font-weight:600;}"
            "</style></head><body>"
            "<h1>jns line profile</h1>"
            f"{meta}{legend}{''.join(body)}{folds}"
            "</body></html>"
        )


def merge_reports(
    source: str,
    file: str,
    det: Optional[Dict[str, Dict[int, int]]],
    sampler: Optional[SamplingProfiler],
    backend_det: str = "",
    backend_sampled: str = "",
) -> ProfileReport:
    return ProfileReport(
        source,
        file=file,
        det=det,
        sampler=sampler,
        backend_det=backend_det,
        backend_sampled=backend_sampled,
    )


# ---------------------------------------------------------------------------
# drivers
# ---------------------------------------------------------------------------


def run_deterministic(
    program,
    entry: str = "Main.main",
    args: Tuple = (),
    backend: str = "specialized",
    mode: str = "jns",
) -> Tuple[Dict[str, Dict[int, int]], Any]:
    """One profiled run on a deterministic tier; returns (snapshot,
    entry result).  Serialized on :data:`PROFILE_LOCK` because the
    counters are process-global."""
    with PROFILE_LOCK:
        interp = program.interp(mode=mode, backend=backend, line_profile=True)
        PROFILER.start()
        try:
            result = interp.run(entry, args)
        finally:
            PROFILER.stop()
        return PROFILER.snapshot(), result


def run_sampled(
    program,
    entry: str = "Main.main",
    args: Tuple = (),
    mode: str = "jns",
    interval: float = 0.001,
    min_samples: int = 0,
    max_seconds: float = 5.0,
) -> SamplingProfiler:
    """One wall-clock-sampled run on the codegen tier.  With
    ``min_samples`` the workload repeats (fresh entry call, same warm
    interpreter) until enough samples landed or ``max_seconds`` passed —
    short workloads would otherwise yield statistically empty profiles.
    """
    interp = program.interp(mode=mode, backend="codegen")
    sampler = SamplingProfiler(interp, interval=interval)
    sampler.start()
    t0 = time.perf_counter()
    try:
        interp.run(entry, args)
        while (
            sampler.samples_total < min_samples
            and time.perf_counter() - t0 < max_seconds
        ):
            interp.run(entry, args)
    finally:
        sampler.stop()
    return sampler


def profile_source(
    source: str,
    file: str = "<input>",
    entry: str = "Main.main",
    args: Tuple = (),
    mode: str = "jns",
    det_backend: str = "specialized",
    sample: bool = True,
    interval: float = 0.001,
    min_samples: int = 0,
) -> ProfileReport:
    """Compile ``source`` and profile ``entry`` twice: deterministic
    event counts on ``det_backend``, wall-clock samples on codegen."""
    from .api import compile_program

    program = compile_program(source)
    det, _ = run_deterministic(
        program, entry=entry, args=args, backend=det_backend, mode=mode
    )
    sampler = None
    if sample:
        sampler = run_sampled(
            program,
            entry=entry,
            args=args,
            mode=mode,
            interval=interval,
            min_samples=min_samples,
        )
    return merge_reports(
        source,
        file,
        det,
        sampler,
        backend_det=det_backend,
        backend_sampled="codegen" if sample else "",
    )
