"""The root of the J&s error hierarchy.

Lives in its own nearly dependency-free module (it imports only
:mod:`repro.diagnostics`, which imports nothing) so both the front end
(lexer/parser) and the semantic layers can share one base class:
catching :class:`JnsError` covers every compilation and runtime failure.

Every J&s error carries the structured-diagnostic vocabulary of
:mod:`repro.diagnostics`: a stable ``code`` (class-level default,
overridable per raise site), an optional source :class:`~repro.diagnostics.Span`,
and optional notes.  :meth:`JnsError.to_diagnostic` converts any error
into a renderable :class:`~repro.diagnostics.Diagnostic`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .diagnostics import Diagnostic, Span


class JnsError(Exception):
    """Base class for all J&s compilation and runtime errors."""

    #: Stable diagnostic code; subclasses override, raise sites may pass
    #: a more specific one via ``code=``.
    code: str = "JNS-GEN-000"
    severity: str = "error"

    def __init__(
        self,
        message: str,
        *,
        code: Optional[str] = None,
        span: Optional[Span] = None,
        notes: Optional[Iterable[str]] = None,
    ) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code
        self.span = span
        self.notes: List[str] = list(notes) if notes else []

    def to_diagnostic(self, where: Optional[str] = None) -> Diagnostic:
        return Diagnostic(
            code=self.code,
            severity=self.severity,
            message=str(self),
            span=self.span,
            where=where,
            notes=list(self.notes),
        )


class JnsResourceError(JnsError):
    """A resource guard tripped: a step/fuel budget ran out, a call-depth
    limit was exceeded, or the host stack was exhausted.  Carries the
    J&s-level call stack active when the guard fired so runaway programs
    produce an actionable report instead of a hard crash."""

    code = "JNS-RES-001"

    def __init__(
        self,
        message: str,
        *,
        code: Optional[str] = None,
        span: Optional[Span] = None,
        notes: Optional[Iterable[str]] = None,
        jns_stack: Optional[Iterable[str]] = None,
    ) -> None:
        super().__init__(message, code=code, span=span, notes=notes)
        self.jns_stack: List[str] = list(jns_stack) if jns_stack else []
        if self.jns_stack:
            shown = self.jns_stack[-20:]
            if len(self.jns_stack) > len(shown):
                self.notes.append(
                    f"J&s call stack (deepest {len(shown)} of "
                    f"{len(self.jns_stack)} frames):"
                )
            else:
                self.notes.append("J&s call stack (deepest last):")
            self.notes.extend(f"  at {frame}" for frame in shown)
