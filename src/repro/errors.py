"""The root of the J&s error hierarchy.

Lives in its own dependency-free module so both the front end
(lexer/parser) and the semantic layers can share one base class:
catching :class:`JnsError` covers every compilation and runtime failure.
"""


class JnsError(Exception):
    """Base class for all J&s compilation and runtime errors."""
