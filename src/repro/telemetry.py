"""Request-scoped telemetry: trace contexts, labeled metrics, OTLP export.

:mod:`repro.obs` is a process-global tracer — great for one pipeline run,
blind to *which request* a span or counter belongs to.  This module adds
the request-scoped layer on top of it:

* :class:`TraceContext` — a W3C-trace-context-shaped identity (128-bit
  trace id + 64-bit span id + optional parent).  Contexts are derived
  **deterministically** from a seeded :class:`repro.chaos.Rng`
  (:meth:`TraceContext.from_rng`), so two CorONA chaos replays with the
  same seed produce byte-identical trace-id sequences, and the check
  service hands every JSONL request a ``traceparent`` that clients can
  also supply inbound (:meth:`TraceContext.parse`).
* :class:`MetricsRegistry` — labeled counters / gauges / histograms with
  **bounded label cardinality** (beyond :data:`MAX_SERIES_PER_FAMILY`
  distinct label sets per family, further series collapse into an
  ``overflow="true"`` bucket — misbehaving label values can never grow
  memory without bound).  Snapshots are JSON-able and cumulative
  (scrapes never reset state); :func:`diff_snapshots` subtracts two
  snapshots for rate/p50/p95 windows, which is how ``repro top``
  computes per-interval views.  :meth:`MetricsRegistry.exposition`
  renders Prometheus text format 0.0.4, served by the ``metrics`` op and
  ``repro serve --metrics-port``.  :func:`validate_exposition` is the
  checker both the tests and ``scripts/metrics_smoke.py`` run against a
  scrape.
* :func:`write_otlp_jsonl` — the tracer's span ring as OTLP-flavored
  JSON Lines (one span object per line with ``traceId`` / ``spanId`` /
  ``startTimeUnixNano`` / ``attributes``), alongside the existing
  Chrome-trace export.  Spans that carried ``trace_id`` / ``span_id``
  args (the request spans) keep their real identity; others get a
  synthetic one derived from their call path so the file is
  self-consistent.

Everything here is pure stdlib and allocation-light: registries are flat
dicts keyed by ``(name, sorted-label-items)``, histogram buckets are
fixed lists, and nothing in this module touches the tracer's disabled
hot path.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "TraceContext",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "MAX_SERIES_PER_FAMILY",
    "diff_snapshots",
    "quantile_from_buckets",
    "validate_exposition",
    "write_otlp_jsonl",
    "render_top",
]


# ----------------------------------------------------------------------
# trace context
# ----------------------------------------------------------------------

_TRACE_MASK = (1 << 128) - 1
_SPAN_MASK = (1 << 64) - 1


@dataclass(frozen=True)
class TraceContext:
    """A request's trace identity: 128-bit trace id, 64-bit span id, and
    the parent span id when this context was derived via :meth:`child`.

    The wire rendering follows the W3C ``traceparent`` shape
    (``00-<32 hex>-<16 hex>-01``) so the ids paste straight into any
    OTLP-speaking tool."""

    trace_id: int
    span_id: int
    parent_id: Optional[int] = None

    @classmethod
    def from_rng(cls, rng: Any) -> "TraceContext":
        """Draw a fresh root context from a seeded
        :class:`repro.chaos.Rng` — fully deterministic, so replays with
        the same seed regenerate the same id sequence.  All-zero ids are
        forbidden by the W3C format; nudge them to 1."""
        trace_id = int.from_bytes(rng.randbytes(16), "big") & _TRACE_MASK
        span_id = int.from_bytes(rng.randbytes(8), "big") & _SPAN_MASK
        return cls(trace_id or 1, span_id or 1)

    def child(self, label: str) -> "TraceContext":
        """A child span context: same trace, new span id derived by
        hashing ``(trace, span, label)`` — stable across replays."""
        digest = hashlib.blake2b(
            f"{self.trace_id:032x}:{self.span_id:016x}:{label}".encode(),
            digest_size=8,
        ).digest()
        span_id = int.from_bytes(digest, "big") & _SPAN_MASK
        return TraceContext(self.trace_id, span_id or 1, parent_id=self.span_id)

    @property
    def hex_trace(self) -> str:
        return f"{self.trace_id:032x}"

    @property
    def hex_span(self) -> str:
        return f"{self.span_id:016x}"

    @property
    def traceparent(self) -> str:
        return f"00-{self.hex_trace}-{self.hex_span}-01"

    @classmethod
    def parse(cls, traceparent: str) -> "TraceContext":
        """Parse a ``traceparent`` header value; raises ``ValueError`` on
        anything that is not ``VV-<32 hex>-<16 hex>-FF``."""
        parts = traceparent.strip().split("-")
        if len(parts) != 4 or len(parts[1]) != 32 or len(parts[2]) != 16:
            raise ValueError(f"malformed traceparent {traceparent!r}")
        if parts[0] != "00":
            raise ValueError(f"unknown traceparent version {parts[0]!r}")
        trace_id = int(parts[1], 16)
        span_id = int(parts[2], 16)
        if not trace_id or not span_id:
            raise ValueError(f"all-zero ids in traceparent {traceparent!r}")
        return cls(trace_id, span_id)


# ----------------------------------------------------------------------
# labeled metrics
# ----------------------------------------------------------------------

#: Default latency buckets (seconds) — tuned for a local check service
#: where ops run 100µs..1s.  ``+Inf`` is implicit.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Distinct label sets retained per metric family; further series fold
#: into the ``overflow="true"`` bucket and bump ``dropped_series``.
MAX_SERIES_PER_FAMILY = 64

_OVERFLOW_KEY: Tuple[Tuple[str, str], ...] = (("overflow", "true"),)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


class _Hist:
    """One histogram series: cumulative bucket counts, sum, count."""

    __slots__ = ("bounds", "bucket_counts", "sum", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * len(self.bounds)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1

    def cumulative(self) -> List[List[Any]]:
        """``[[le, cumulative_count], ...]`` ending with ``["+Inf", count]``."""
        out: List[List[Any]] = [
            [bound, self.bucket_counts[i]] for i, bound in enumerate(self.bounds)
        ]
        out.append(["+Inf", self.count])
        return out


class _Family:
    __slots__ = ("name", "kind", "help", "series")

    def __init__(self, name: str, kind: str, help_: str) -> None:
        self.name = name
        self.kind = kind
        self.help = help_
        #: label-items tuple -> float (counter/gauge) or _Hist
        self.series: Dict[Tuple[Tuple[str, str], ...], Any] = {}


def _label_key(labels: Dict[str, Any]) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """Labeled counters, gauges, and histograms with bounded cardinality.

    Thread-safe (one lock; every mutation is a handful of dict ops) and
    cumulative: scrapes read a consistent :meth:`snapshot` or
    :meth:`exposition` without resetting anything, so any number of
    scrapers can watch one registry (delta computation is the reader's
    job — see :func:`diff_snapshots`)."""

    def __init__(self, max_series: int = MAX_SERIES_PER_FAMILY) -> None:
        self.max_series = max_series
        self.dropped_series = 0
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    # -- internals ------------------------------------------------------

    def _family(self, name: str, kind: str, help_: str) -> _Family:
        fam = self._families.get(name)
        if fam is None:
            if not _NAME_RE.match(name):
                raise ValueError(f"invalid metric name {name!r}")
            fam = self._families[name] = _Family(name, kind, help_)
        elif fam.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {fam.kind}, not {kind}"
            )
        return fam

    def _series_key(
        self, fam: _Family, labels: Dict[str, Any]
    ) -> Tuple[Tuple[str, str], ...]:
        key = _label_key(labels)
        if key not in fam.series and len(fam.series) >= self.max_series:
            self.dropped_series += 1
            return _OVERFLOW_KEY
        return key

    # -- writers --------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, help: str = "", **labels: Any) -> None:
        """Add ``value`` to the counter series ``name{labels}``."""
        with self._lock:
            fam = self._family(name, "counter", help)
            key = self._series_key(fam, labels)
            fam.series[key] = fam.series.get(key, 0.0) + value

    def set_gauge(self, name: str, value: float, help: str = "", **labels: Any) -> None:
        """Set the gauge series ``name{labels}`` to ``value``."""
        with self._lock:
            fam = self._family(name, "gauge", help)
            fam.series[self._series_key(fam, labels)] = value

    def observe(
        self,
        name: str,
        value: float,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        help: str = "",
        **labels: Any,
    ) -> None:
        """Record ``value`` into the histogram series ``name{labels}``."""
        with self._lock:
            fam = self._family(name, "histogram", help)
            key = self._series_key(fam, labels)
            hist = fam.series.get(key)
            if hist is None:
                hist = fam.series[key] = _Hist(buckets)
            hist.observe(value)

    # -- readers --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able, cumulative view of every series.  Shape::

            {"counters":   [{"name", "labels", "value"}, ...],
             "gauges":     [ ... same ... ],
             "histograms": [{"name", "labels", "count", "sum",
                             "buckets": [[le, cum], ..., ["+Inf", n]]}],
             "dropped_series": int}
        """
        counters: List[Dict[str, Any]] = []
        gauges: List[Dict[str, Any]] = []
        histograms: List[Dict[str, Any]] = []
        with self._lock:
            for fam in sorted(self._families.values(), key=lambda f: f.name):
                for key in sorted(fam.series):
                    labels = dict(key)
                    if fam.kind == "histogram":
                        h = fam.series[key]
                        histograms.append(
                            {
                                "name": fam.name,
                                "labels": labels,
                                "count": h.count,
                                "sum": h.sum,
                                "buckets": h.cumulative(),
                            }
                        )
                    elif fam.kind == "counter":
                        counters.append(
                            {"name": fam.name, "labels": labels,
                             "value": fam.series[key]}
                        )
                    else:
                        gauges.append(
                            {"name": fam.name, "labels": labels,
                             "value": fam.series[key]}
                        )
            dropped = self.dropped_series
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "dropped_series": dropped,
        }

    def exposition(self) -> str:
        """Prometheus text format 0.0.4 (``# HELP`` / ``# TYPE`` headers,
        ``_bucket``/``_sum``/``_count`` histogram triplets, trailing
        newline)."""
        lines: List[str] = []
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
            for fam in families:
                if fam.help:
                    lines.append(f"# HELP {fam.name} {fam.help}")
                lines.append(f"# TYPE {fam.name} {fam.kind}")
                for key in sorted(fam.series):
                    if fam.kind == "histogram":
                        h = fam.series[key]
                        for le, cum in h.cumulative():
                            le_txt = le if le == "+Inf" else _fmt_value(le)
                            lines.append(
                                f"{fam.name}_bucket"
                                f"{_fmt_labels(key + (('le', str(le_txt)),))}"
                                f" {cum}"
                            )
                        lines.append(
                            f"{fam.name}_sum{_fmt_labels(key)} {_fmt_value(h.sum)}"
                        )
                        lines.append(f"{fam.name}_count{_fmt_labels(key)} {h.count}")
                    else:
                        lines.append(
                            f"{fam.name}{_fmt_labels(key)}"
                            f" {_fmt_value(fam.series[key])}"
                        )
            lines.append(
                f"# TYPE repro_metrics_dropped_series counter"
            )
            lines.append(f"repro_metrics_dropped_series {self.dropped_series}")
        return "\n".join(lines) + "\n"


def _fmt_value(v: float) -> str:
    if isinstance(v, float) and v.is_integer():
        return str(int(v))
    return repr(v) if isinstance(v, float) else str(v)


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _fmt_labels(items: Tuple[Tuple[str, str], ...]) -> str:
    if not items:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in items)
    return "{" + body + "}"


# ----------------------------------------------------------------------
# snapshot arithmetic (delta windows for `repro top`)
# ----------------------------------------------------------------------


def _series_index(rows: List[Dict[str, Any]]) -> Dict[Tuple[Any, ...], Dict[str, Any]]:
    return {
        (row["name"], tuple(sorted(row["labels"].items()))): row for row in rows
    }


def diff_snapshots(prev: Dict[str, Any], cur: Dict[str, Any]) -> Dict[str, Any]:
    """``cur - prev`` for counters and histograms (gauges pass through
    unchanged — they are levels, not totals).  Series absent from
    ``prev`` diff against zero; a counter that went *backwards* (server
    restart) is passed through at its current value."""
    out: Dict[str, Any] = {"counters": [], "gauges": list(cur.get("gauges", [])),
                           "histograms": [],
                           "dropped_series": cur.get("dropped_series", 0)}
    prev_counters = _series_index(prev.get("counters", []))
    for row in cur.get("counters", []):
        key = (row["name"], tuple(sorted(row["labels"].items())))
        base = prev_counters.get(key, {}).get("value", 0.0)
        delta = row["value"] - base
        if delta < 0:
            delta = row["value"]
        out["counters"].append({**row, "value": delta})
    prev_hists = _series_index(prev.get("histograms", []))
    for row in cur.get("histograms", []):
        key = (row["name"], tuple(sorted(row["labels"].items())))
        base = prev_hists.get(key)
        if base is None or base["count"] > row["count"]:
            out["histograms"].append(dict(row))
            continue
        base_buckets = {le: cum for le, cum in base["buckets"]}
        out["histograms"].append(
            {
                **row,
                "count": row["count"] - base["count"],
                "sum": row["sum"] - base["sum"],
                "buckets": [
                    [le, cum - base_buckets.get(le, 0)]
                    for le, cum in row["buckets"]
                ],
            }
        )
    return out


def quantile_from_buckets(buckets: List[List[Any]], q: float) -> Optional[float]:
    """Estimate the q-quantile (0..1) from cumulative ``[le, count]``
    buckets by linear interpolation within the target bucket (the
    standard Prometheus ``histogram_quantile`` scheme).  Returns None on
    an empty histogram; clamps to the last finite bound when the target
    falls in the ``+Inf`` bucket."""
    if not buckets:
        return None
    total = buckets[-1][1]
    if total <= 0:
        return None
    rank = q * total
    prev_bound = 0.0
    prev_cum = 0
    last_finite: Optional[float] = None
    for le, cum in buckets:
        if le == "+Inf":
            return last_finite  # target beyond every finite bound
        bound = float(le)
        if cum >= rank and cum > prev_cum:
            frac = (rank - prev_cum) / (cum - prev_cum)
            return prev_bound + (bound - prev_bound) * min(1.0, max(0.0, frac))
        prev_bound, prev_cum, last_finite = bound, cum, bound
    return last_finite


# ----------------------------------------------------------------------
# exposition validation (tests + scripts/metrics_smoke.py)
# ----------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^{}]*\})?"
    r" (?P<value>NaN|[+-]?Inf|[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)$"
)
_LABEL_RE = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def validate_exposition(text: str) -> List[str]:
    """Check a Prometheus text-format scrape; returns a list of problems
    (empty = valid).  Checks: trailing newline, sample-line syntax, label
    syntax, ``# TYPE`` declared before a family's first sample,
    cumulative (monotone) histogram buckets, and ``_count`` equal to the
    ``+Inf`` bucket."""
    problems: List[str] = []
    if not text.endswith("\n"):
        problems.append("exposition must end with a newline")
    typed: Dict[str, str] = {}
    # (histogram base name, label key minus le) -> [(le, cum), ...]
    buckets: Dict[Tuple[str, Tuple[str, ...]], List[Tuple[float, float]]] = {}
    counts: Dict[Tuple[str, Tuple[str, ...]], float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            problems.append(f"line {lineno}: blank line")
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                kind = parts[3] if len(parts) > 3 else ""
                if kind not in ("counter", "gauge", "histogram", "summary",
                                "untyped"):
                    problems.append(
                        f"line {lineno}: unknown metric type {kind!r}"
                    )
                typed[parts[2]] = kind
            elif len(parts) >= 2 and parts[1] not in ("HELP", "TYPE"):
                problems.append(f"line {lineno}: unknown comment {parts[1]!r}")
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            problems.append(f"line {lineno}: malformed sample {line!r}")
            continue
        name = m.group("name")
        label_text = m.group("labels")
        labels: Dict[str, str] = {}
        if label_text:
            for item in _split_labels(label_text[1:-1]):
                if not _LABEL_RE.match(item):
                    problems.append(f"line {lineno}: malformed label {item!r}")
                else:
                    k, _, v = item.partition("=")
                    labels[k] = v[1:-1]
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                base = name[: -len(suffix)]
                break
        if base not in typed:
            problems.append(
                f"line {lineno}: sample for {name!r} before its # TYPE line"
            )
        if name.endswith("_bucket") and base != name:
            le = labels.get("le")
            if le is None:
                problems.append(f"line {lineno}: _bucket sample without le label")
            else:
                key = (
                    base,
                    tuple(sorted(f"{k}={v}" for k, v in labels.items() if k != "le")),
                )
                bound = float("inf") if le == "+Inf" else float(le)
                buckets.setdefault(key, []).append((bound, float(m.group("value"))))
        elif name.endswith("_count") and base != name:
            key = (base, tuple(sorted(f"{k}={v}" for k, v in labels.items())))
            counts[key] = float(m.group("value"))
    for key, rows in buckets.items():
        rows.sort(key=lambda r: r[0])
        cums = [cum for _, cum in rows]
        if cums != sorted(cums):
            problems.append(f"histogram {key[0]}{list(key[1])}: buckets not cumulative")
        if rows and rows[-1][0] != float("inf"):
            problems.append(f"histogram {key[0]}{list(key[1])}: missing +Inf bucket")
        total = counts.get(key)
        if total is not None and rows and rows[-1][1] != total:
            problems.append(
                f"histogram {key[0]}{list(key[1])}: _count {total} != +Inf "
                f"bucket {rows[-1][1]}"
            )
    return problems


def _split_labels(body: str) -> List[str]:
    """Split ``k1="v1",k2="v2"`` on commas outside quotes."""
    items: List[str] = []
    depth_quote = False
    cur: List[str] = []
    i = 0
    while i < len(body):
        c = body[i]
        if c == "\\" and depth_quote:
            cur.append(body[i : i + 2])
            i += 2
            continue
        if c == '"':
            depth_quote = not depth_quote
        if c == "," and not depth_quote:
            items.append("".join(cur))
            cur = []
        else:
            cur.append(c)
        i += 1
    if cur:
        items.append("".join(cur))
    return items


# ----------------------------------------------------------------------
# OTLP-flavored span export
# ----------------------------------------------------------------------


def _synth_ids(path: Tuple[str, ...], start_ns: int) -> Tuple[str, str]:
    """Synthetic (trace, span) hex ids for spans that carried no explicit
    trace context: trace id from the root span name, span id from the
    full path + start offset — stable for a given recording."""
    root = path[0] if path else "span"
    trace = hashlib.blake2b(root.encode(), digest_size=16).hexdigest()
    span = hashlib.blake2b(
        f"{';'.join(path)}:{start_ns}".encode(), digest_size=8
    ).hexdigest()
    return trace, span


def _attr_value(v: Any) -> Dict[str, Any]:
    if isinstance(v, bool):
        return {"boolValue": v}
    if isinstance(v, int):
        return {"intValue": v}
    if isinstance(v, float):
        return {"doubleValue": v}
    return {"stringValue": str(v)}


def write_otlp_jsonl(tracer: Any, path: str) -> int:
    """Write every finished span in the tracer's ring as one
    OTLP-flavored JSON object per line; returns the number of spans
    written.  Spans whose args carry ``trace_id`` / ``span_id`` (the
    request spans) keep that identity; ``parent_span_id`` maps to
    ``parentSpanId``.  Spans without explicit identity get synthetic ids
    and are linked to the tightest enclosing span one path level up."""
    from .obs import SpanRecord

    recs = [rec for rec in list(tracer.events) if isinstance(rec, SpanRecord)]
    rows = []
    for rec in recs:
        args = dict(rec.args)
        trace_id = args.pop("trace_id", None)
        span_id = args.pop("span_id", None)
        parent = args.pop("parent_span_id", "")
        if not trace_id or not span_id:
            s_trace, s_span = _synth_ids(rec.path, rec.start_ns)
            trace_id = trace_id or s_trace
            span_id = span_id or s_span
        rows.append([rec, args, str(trace_id), str(span_id), str(parent)])
    # Link spans that carried no explicit parent: the enclosing span is
    # the one whose path is ours minus the leaf and whose time interval
    # contains ours (tightest wins, for recursive same-path nests).
    for row in rows:
        rec, _, _, _, parent = row
        if parent or len(rec.path) < 2:
            continue
        lo, hi = rec.start_ns, rec.start_ns + rec.dur_ns
        best = None
        for cand in rows:
            crec = cand[0]
            if crec is rec or crec.path != rec.path[:-1]:
                continue
            if crec.start_ns <= lo and crec.start_ns + crec.dur_ns >= hi:
                if best is None or crec.dur_ns < best[0].dur_ns:
                    best = cand
        if best is not None:
            row[2] = best[2]  # inherit the parent's trace id
            row[4] = best[3]
    n = 0
    with open(path, "w") as f:
        for rec, args, trace_id, span_id, parent in rows:
            span = {
                "name": rec.name,
                "traceId": trace_id,
                "spanId": span_id,
                "parentSpanId": parent,
                "kind": "SPAN_KIND_INTERNAL",
                "startTimeUnixNano": rec.start_ns,
                "endTimeUnixNano": rec.start_ns + rec.dur_ns,
                "attributes": [
                    {"key": k, "value": _attr_value(v)}
                    for k, v in sorted(args.items())
                ],
            }
            f.write(json.dumps(span) + "\n")
            n += 1
    return n


# ----------------------------------------------------------------------
# `repro top` frame rendering
# ----------------------------------------------------------------------


def _find(rows: List[Dict[str, Any]], name: str, **labels: str) -> List[Dict[str, Any]]:
    want = set(labels.items())
    return [
        r for r in rows
        if r["name"] == name and want <= set(r["labels"].items())
    ]


def render_top(
    resp: Dict[str, Any],
    prev: Optional[Dict[str, Any]] = None,
    dt: Optional[float] = None,
) -> str:
    """One ``repro top`` frame from a ``metrics`` op response (and the
    previous response, for delta rates).  Renders service uptime,
    sessions, req/s, a per-op table (count / rate / p50 / p95), cache
    hit rate, and incremental revalidation counts."""
    snap = resp.get("metrics", {})
    window = snap if prev is None else diff_snapshots(
        prev.get("metrics", {}), snap
    )
    lines: List[str] = []
    uptime = resp.get("uptime_s", 0.0)
    sessions = resp.get("sessions", [])
    total_req = resp.get("requests", 0)
    window_req = sum(
        r["value"] for r in window.get("counters", [])
        if r["name"] == "serve_requests_total"
    )
    if dt and dt > 0:
        rate_txt = f"{window_req / dt:8.1f} req/s"
    else:
        rate_txt = "     (first sample)"
    lines.append(
        f"repro top — uptime {uptime:7.1f}s   sessions {len(sessions):3d}   "
        f"requests {total_req:8d}   {rate_txt}"
    )
    lines.append("")
    # per-op table from the serve_request_seconds histograms
    hists = [
        r for r in window.get("histograms", [])
        if r["name"] == "serve_request_seconds"
    ]
    lines.append(f"  {'op':<10} {'count':>8} {'rate':>9} {'p50':>9} {'p95':>9}")
    if not hists:
        lines.append("  (no requests in window)")
    for row in sorted(hists, key=lambda r: -r["count"]):
        op = row["labels"].get("op", "?")
        count = row["count"]
        rate = f"{count / dt:8.1f}" if dt and dt > 0 else "       -"
        p50 = quantile_from_buckets(row["buckets"], 0.50)
        p95 = quantile_from_buckets(row["buckets"], 0.95)
        lines.append(
            "  {:<10} {:>8} {:>9} {:>9} {:>9}".format(
                op,
                count,
                rate,
                _fmt_secs(p50),
                _fmt_secs(p95),
            )
        )
    # outcome split
    ok = sum(
        r["value"]
        for r in _find(window.get("counters", []), "serve_requests_total",
                       outcome="ok")
    )
    err = sum(
        r["value"]
        for r in _find(window.get("counters", []), "serve_requests_total",
                       outcome="error")
    )
    lines.append("")
    lines.append(f"  outcomes: ok {int(ok)}  error {int(err)}")
    # per-session cache + incremental gauges (levels: read from cur snapshot)
    gauges = snap.get("gauges", [])
    cache_lines = []
    for sess in sessions:
        hits = sum(r["value"] for r in _find(gauges, "repro_query_cache_hits",
                                             session=sess))
        misses = sum(r["value"] for r in _find(gauges, "repro_query_cache_misses",
                                               session=sess))
        reval = sum(
            r["value"]
            for r in _find(gauges, "repro_query_cache_revalidations",
                           session=sess)
        )
        reused = sum(
            r["value"]
            for r in _find(gauges, "repro_incr_check_classes",
                           session=sess, kind="reused")
        )
        recheck = sum(
            r["value"]
            for r in _find(gauges, "repro_incr_check_classes",
                           session=sess, kind="recomputed")
        )
        total = hits + misses
        hit_rate = f"{100.0 * hits / total:5.1f}%" if total else "    -"
        cache_lines.append(
            f"  {sess:<16} cache hit {hit_rate}  revalidated {int(reval):6d}  "
            f"classes reused {int(reused):4d} / rechecked {int(recheck):4d}"
        )
    if cache_lines:
        lines.append("")
        lines.append("  sessions:")
        lines.extend(cache_lines)
    dropped = snap.get("dropped_series", 0)
    if dropped:
        lines.append("")
        lines.append(f"  ! {dropped} metric series dropped (label overflow)")
    return "\n".join(lines)


def _fmt_secs(s: Optional[float]) -> str:
    if s is None:
        return "-"
    if s < 0.001:
        return f"{s * 1e6:.0f}µs"
    if s < 1.0:
        return f"{s * 1e3:.1f}ms"
    return f"{s:.2f}s"
