"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run FILE``      — compile and run a J&s program (``--entry Main.main``,
  ``--mode jns|java|jx|jx_cl``); ``--max-steps``/``--max-depth`` bound
  evaluation fuel and J&s call depth (runaway programs exit 1 with a
  ``JNS-RES-*`` diagnostic instead of crashing the host).
* ``check FILE``    — report *all* static diagnostics (the parser
  resynchronizes after errors); ``--json`` emits a machine-readable
  report, ``--strict`` enforces modular sharing constraints, ``--infer``
  first infers missing constraints (Section 2.5 future work) and
  reports them.
* ``explain FILE --query Q`` — render the proof tree of a semantic
  judgment over the program's class table (``subtype T1 T2``,
  ``shares T1 T2``, ``masks P.C``, ``mem T``, ``fclass P.C f``), citing
  the paper rules (SH-CLS, S-EXACT, prefixExact_k, …); failing
  judgments additionally show the refutation (the failing premise
  chain).  See :mod:`repro.lang.provenance`.
* ``fmt FILE``      — parse and pretty-print the program.
* ``report WHAT``   — regenerate an evaluation artifact: ``table1``
  (jolden), ``table2`` (tree traversal), or ``corona`` (Section 7.4).
* ``corona``        — the chaos harness: sharded async CorONA traffic
  with seeded fault injection and live family evolution
  (``--nodes N --shards K --faults PLAN --seed S``); exits non-zero on
  any per-request oracle violation.

``run`` and ``check`` share the observability flags (see
:mod:`repro.obs`): ``--profile`` prints the unified phase-timing +
semantic-event + cache report, ``--trace-out FILE`` writes a
Chrome-trace JSON for ``chrome://tracing`` / Perfetto (a ``.jsonl``
extension streams events as JSON Lines instead), ``--stats-json``
emits machine-readable cache counters to stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import obs
from .api import cache_stats, compile_program
from .diagnostics import DiagnosticSink, render
from .lang.classtable import ClassTable, JnsError
from .lang.infer import infer_constraints, install_constraints
from .lang.resolve import resolve_program
from .lang.typecheck import check_program
from .source.parser import parse_program
from .source.unparse import unparse


def _read(path: str) -> str:
    """Read a source file; unreadable paths exit with a clean error
    instead of a traceback (the SystemExit carries the exit code)."""
    try:
        with open(path) as f:
            return f.read()
    except OSError as exc:
        print(f"error: cannot read {path}: {exc.strerror}", file=sys.stderr)
        raise SystemExit(1)


def _tracing_requested(args) -> bool:
    return bool(
        getattr(args, "profile", False)
        or getattr(args, "trace_out", None)
        or getattr(args, "flame", None)
        or getattr(args, "otlp_out", None)
    )


def _begin_tracing(args) -> None:
    """Enable the tracer for ``run``/``check``; a ``--trace-out`` path
    with a ``.jsonl`` extension opens the streaming JSONL sink up front
    so events bypass the bounded ring."""
    obs.enable()
    trace_out = getattr(args, "trace_out", None)
    if trace_out and trace_out.endswith(".jsonl"):
        obs.TRACER.open_stream(trace_out)


def _emit_observability(args, stats) -> None:
    """Shared tail of ``run``/``check``: the ``--profile`` unified report
    and ``--trace-out`` Chrome trace go to stderr/file, ``--stats-json``
    prints the machine-readable cache counters (the same schema as
    ``report.cache_stats.to_dict()``) to stdout for CI to diff."""
    if getattr(args, "stats", False) and stats is not None:
        print(stats.format(), file=sys.stderr)
    if getattr(args, "profile", False):
        print(obs.format_report(cache_stats=stats), file=sys.stderr)
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        if trace_out.endswith(".jsonl"):
            obs.TRACER.close_stream()
            print(
                f"streamed trace events to {trace_out} "
                "(one Chrome-trace event object per line)",
                file=sys.stderr,
            )
        else:
            obs.TRACER.write_chrome_trace(trace_out)
            print(
                f"wrote Chrome trace to {trace_out} "
                "(load in chrome://tracing or https://ui.perfetto.dev)",
                file=sys.stderr,
            )
    flame = getattr(args, "flame", None)
    if flame:
        obs.TRACER.write_collapsed(flame)
        print(
            f"wrote collapsed-stack flamegraph to {flame} "
            "(fold with flamegraph.pl or load in https://speedscope.app)",
            file=sys.stderr,
        )
    otlp_out = getattr(args, "otlp_out", None)
    if otlp_out:
        from . import telemetry

        n = telemetry.write_otlp_jsonl(obs.TRACER, otlp_out)
        print(f"wrote {n} OTLP-flavored spans to {otlp_out}", file=sys.stderr)
    if getattr(args, "stats_json", False) and stats is not None:
        print(json.dumps(stats.to_dict(), sort_keys=True))


#: one-shot latch for the --no-specialize deprecation warning
_no_specialize_warned = False


def _resolve_backend(args) -> str:
    """Merge the unified ``--backend`` selector with the deprecated
    ``--no-specialize`` alias (warns once per process, maps to
    ``--backend compiled``).  Default: ``codegen``."""
    global _no_specialize_warned
    backend = getattr(args, "backend", None)
    if getattr(args, "no_specialize", False):
        if not _no_specialize_warned:
            print(
                "warning: --no-specialize is deprecated; use --backend compiled",
                file=sys.stderr,
            )
            _no_specialize_warned = True
        if backend is None:
            backend = "compiled"
    return backend or "codegen"


def cmd_run(args) -> int:
    source = _read(args.file)
    if _tracing_requested(args):
        _begin_tracing(args)
    interp = None
    try:
        try:
            program = compile_program(source, check=not args.no_check)
        except JnsError as exc:
            print(render(exc.to_diagnostic(), source), file=sys.stderr)
            return 1
        interp = program.interp(
            mode=args.mode,
            echo=True,
            backend=_resolve_backend(args),
            max_steps=args.max_steps,
            max_depth=args.max_depth,
            line_profile=getattr(args, "line_profile", False),
        )
        if getattr(args, "line_profile", False):
            from .profiler import PROFILER

            PROFILER.start()
        try:
            result = interp.run(args.entry)
        except JnsError as exc:
            print(f"runtime error: {exc}", file=sys.stderr)
            for note in exc.notes:
                print(f"  note: {note}", file=sys.stderr)
            print(f"[{exc.code}]", file=sys.stderr)
            return 1
        if result is not None:
            print(f"=> {result}")
        return 0
    finally:
        # Observability output is emitted even when the program failed —
        # a profile of the failing run is exactly what one wants then.
        if getattr(args, "line_profile", False) and interp is not None:
            from .profiler import PROFILER, merge_reports

            PROFILER.stop()
            report = merge_reports(
                source, args.file, PROFILER.snapshot(), None,
                backend_det=interp.backend,
            )
            print(
                report.render_text(color=sys.stderr.isatty()),
                file=sys.stderr,
                end="",
            )
        if _tracing_requested(args):
            obs.disable()
        stats = interp.cache_stats() if interp is not None else cache_stats()
        _emit_observability(args, stats)


def cmd_profile(args) -> int:
    """Source-level line profiler: deterministic event counts on one
    backend merged with wall-clock samples from the codegen tier,
    rendered as an annotated-source heatmap (or HTML/JSON/flame)."""
    from . import profiler as prof

    if args.file.startswith("jolden:"):
        from .programs import jolden

        name = args.file.split(":", 1)[1]
        mod = jolden.BY_NAME.get(name)
        if mod is None:
            print(
                f"error: unknown jolden driver {name!r} "
                f"(choices: {', '.join(sorted(jolden.BY_NAME))})",
                file=sys.stderr,
            )
            return 2
        source = mod.SOURCE
        entry = args.entry or "Main.run"
        entry_args = tuple(args.args) if args.args else tuple(mod.DEFAULT_ARGS)
    else:
        source = _read(args.file)
        entry = args.entry or "Main.main"
        entry_args = tuple(args.args or ())
    try:
        report = prof.profile_source(
            source,
            file=args.file,
            entry=entry,
            args=entry_args,
            mode=args.mode,
            det_backend=args.det_backend,
            sample=not args.no_sample,
            interval=args.interval / 1000.0,
            min_samples=args.min_samples,
        )
    except JnsError as exc:
        print(render(exc.to_diagnostic(), source), file=sys.stderr)
        return 1
    if args.flame:
        folds = "".join(
            ";".join(k) + f" {n}\n" for k, n in sorted(report.folds.items())
        )
        with open(args.flame, "w") as fh:
            fh.write(folds)
        print(
            f"wrote {len(report.folds)} jns-frame folds to {args.flame}",
            file=sys.stderr,
        )
    if args.html:
        with open(args.html, "w") as fh:
            fh.write(report.render_html())
        print(f"wrote HTML report to {args.html}", file=sys.stderr)
    if args.json:
        print(json.dumps(report.to_dict(), sort_keys=True))
    else:
        print(
            report.render_text(
                context=args.context, color=sys.stdout.isatty()
            ),
            end="",
        )
    return 0


def cmd_bench_diff(args) -> int:
    """Compare the two latest BENCH_history.jsonl entries; exit 1 when a
    directed metric regressed past the threshold."""
    from .benchtrack import bench_diff

    status, lines = bench_diff(args.history, threshold=args.threshold)
    for line in lines:
        print(line)
    return status


def cmd_check(args) -> int:
    source = _read(args.file)
    if _tracing_requested(args):
        _begin_tracing(args)
    sink = DiagnosticSink(file=args.file)
    table = None
    stats = None
    try:
        try:
            unit = parse_program(source, file=args.file, sink=sink)
            table = ClassTable(unit)
            resolve_program(table, sink=sink)
        except JnsError as exc:
            # Table construction (duplicate class, cyclic extends) aborts the
            # later stages wholesale; everything else accumulates in the sink.
            sink.add_exc(exc)
            table = None
        inferred_lines = []
        if table is not None:
            if args.infer:
                try:
                    inferred = infer_constraints(table)
                    installed = install_constraints(table, inferred)
                    for c in inferred:
                        inferred_lines.append(f"inferred  {c}")
                    inferred_lines.append(f"installed {installed} constraint clause(s)")
                except JnsError as exc:
                    sink.add_exc(exc)
            report = check_program(
                table, strict_sharing=args.strict, explain=args.explain
            )
            for diag in report.warnings + report.errors:
                sink.add(diag)
            stats = report.cache_stats
        if args.json:
            print(sink.to_json())
            return 1 if sink.has_errors else 0
        for line in inferred_lines:
            print(line)
        if len(sink):
            print(sink.render(source))
        errors = sink.errors
        print("ok" if not errors else f"{len(errors)} error(s)")
        return 1 if errors else 0
    finally:
        if _tracing_requested(args):
            obs.disable()
        _emit_observability(args, stats if stats is not None else cache_stats())


def cmd_fmt(args) -> int:
    try:
        unit = parse_program(_read(args.file))
    except JnsError as exc:
        print(exc, file=sys.stderr)
        return 1
    print(unparse(unit))
    return 0


def cmd_report(args) -> int:
    if args.what == "table1":
        from .programs.jolden.report import main as table1

        sys.argv = ["report"]
        table1()
    elif args.what == "table2":
        from .programs import trees

        trees.main()
    elif args.what == "corona":
        from .programs import corona

        corona.main()
    else:
        print(f"unknown report {args.what!r}", file=sys.stderr)
        return 1
    return 0


def cmd_explain(args) -> int:
    """``repro explain FILE --query Q``: run one semantic judgment over
    the program's class table with the derivation recorder on and render
    the proof tree.  Only parsing + name resolution are required, so
    programs that fail the type check can still be explained — that is
    the main use case (asking *why* the checker rejected a judgment).
    The evaluation itself lives in :mod:`repro.lang.explain`, shared
    with the check service's ``explain`` op; ``--html`` writes the same
    payload as a standalone collapsible-tree document."""
    from .lang.explain import ExplainError, render_html, run_explain

    source = _read(args.file)
    try:
        result = run_explain(source, args.file, args.query)
    except ExplainError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return exc.exit_code
    except JnsError as exc:
        print(render(exc.to_diagnostic(), source), file=sys.stderr)
        return 1

    html_out = getattr(args, "html", None)
    if html_out:
        try:
            with open(html_out, "w") as f:
                f.write(render_html(result))
        except OSError as exc:
            print(
                f"error: cannot write {html_out}: {exc.strerror}",
                file=sys.stderr,
            )
            return 1
        print(f"wrote derivation tree to {html_out}", file=sys.stderr)
        if not getattr(args, "json", False):
            return 0
    if getattr(args, "json", False):
        print(json.dumps(result.payload, indent=2))
        return 0
    print(result.format_text())
    return 0


def cmd_corona(args) -> int:
    """``repro corona``: run the chaos-hardened CorONA harness (sharded
    async traffic + seeded fault injection + live evolution) and print
    the report.  The report is byte-identical for a given seed/plan when
    ``--json`` is used without ``--wall``."""
    from .chaos import FaultPlan
    from .programs.corona import ChaosCoronaDriver, EvolutionJournal

    try:
        plan = FaultPlan.parse(args.faults)
    except (ValueError, KeyError, OSError) as exc:
        print(f"error: bad fault plan: {exc}", file=sys.stderr)
        return 2
    if _tracing_requested(args):
        _begin_tracing(args)
    journal = None
    if args.journal:
        import os

        journal = (
            EvolutionJournal.load(args.journal)
            if os.path.exists(args.journal)
            else EvolutionJournal(path=args.journal)
        )
    try:
        driver = ChaosCoronaDriver(
            nodes=args.nodes,
            shards=args.shards,
            objects=args.objects,
            requests=args.requests,
            seed=args.seed,
            plan=plan,
            journal=journal,
        )
        report = driver.run()
    finally:
        if _tracing_requested(args):
            obs.disable()
        _emit_observability(args, None)
    if args.json:
        print(report.to_json(include_wall=args.wall))
    else:
        c = report.counters
        print(
            f"corona chaos: {report.params['nodes']} nodes / "
            f"{report.params['shards']} shards, {report.params['requests']} requests, "
            f"seed {report.params['seed']}"
        )
        print(
            f"  completed {report.wall['requests_completed']} "
            f"({report.wall['rps']} req/s wall), virtual time "
            f"{report.virtual_ms:.1f} ms"
        )
        print(
            f"  faults injected {c.get('chaos.injected', 0)} "
            f"(crash {c.get('chaos.injected.crash', 0)}, "
            f"drop {c.get('chaos.injected.drop', 0)}, "
            f"delay {c.get('chaos.injected.delay', 0)}, "
            f"fuel {c.get('chaos.injected.fuel', 0)}); "
            f"restarts {c.get('chaos.restart', 0)}, "
            f"journal-recovered transitions {c.get('chaos.recovered', 0)}"
        )
        print(
            f"  retries {c.get('retry.attempt', 0)} "
            f"(exhausted {c.get('retry.exhausted', 0)}), "
            f"stale serves {c.get('degraded.stale_serve', 0)}, "
            f"failures {len(report.failures)}"
        )
        pause = report.histograms.get("evolution.pause_virtual_ms")
        if pause:
            print(
                f"  evolution pause (virtual): p50 {pause['p50']:.1f} ms, "
                f"p95 {pause['p95']:.1f} ms over {pause['count']} transitions"
            )
        print(f"  families: " + ", ".join(
            f"shard{s['index']}={s['family']}(epoch {s['epoch']})"
            for s in report.shards
        ))
        print(f"  oracle violations: {len(report.oracle_violations)}")
        for v in report.oracle_violations[:10]:
            print(f"    {v}")
    return 1 if report.oracle_violations else 0


def cmd_top(args) -> int:
    """``repro top`` — a live ops console for a running ``repro serve``:
    polls the ``metrics`` op and redraws req/s, per-op p50/p95 latency,
    cache hit rate, and incremental revalidation counts in place."""
    import time as _time

    from . import telemetry
    from .serve import ServeClient

    try:
        client = ServeClient(args.host, args.port, timeout=5.0)
    except OSError as exc:
        print(f"error: cannot connect to {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    prev = None
    prev_t: Optional[float] = None
    frames = 0
    try:
        while True:
            try:
                resp = client.request("metrics")
            except (OSError, ConnectionError) as exc:
                print(f"error: lost server: {exc}", file=sys.stderr)
                return 1
            if not resp.get("ok"):
                print(f"error: {resp.get('error')}", file=sys.stderr)
                return 1
            now = _time.monotonic()
            dt = None if prev_t is None else now - prev_t
            frame = telemetry.render_top(resp, prev, dt)
            if not args.no_clear:
                print("\x1b[2J\x1b[H", end="")
            print(frame, flush=True)
            prev, prev_t = resp, now
            frames += 1
            if args.iterations is not None and frames >= args.iterations:
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()


def cmd_graph(args) -> int:
    from .lang.graph import family_graph

    try:
        unit = parse_program(_read(args.file))
        table = ClassTable(unit)
        resolve_program(table)
        graph = family_graph(table, include_implicit=not args.explicit_only)
    except JnsError as exc:
        print(exc, file=sys.stderr)
        return 1
    print(graph.to_dot() if args.dot else graph.to_text())
    return 0


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by ``run`` and ``check``."""
    parser.add_argument(
        "--profile",
        action="store_true",
        help="trace the pipeline and print the unified phase-timing + "
        "semantic-event + cache report to stderr",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="write a Chrome-trace JSON (chrome://tracing / Perfetto) of "
        "the traced pipeline to FILE; the in-memory event ring is bounded "
        "(oldest events are dropped past 16384), so for long runs give "
        "FILE a .jsonl extension to stream every event as JSON Lines "
        "instead of going through the ring",
    )
    parser.add_argument(
        "--stats-json",
        action="store_true",
        help="print query-cache counters as machine-readable JSON to stdout "
        "(same schema as report.cache_stats.to_dict())",
    )
    parser.add_argument(
        "--flame",
        metavar="OUT",
        default=None,
        help="write the span tree as collapsed-stack lines ('a;b;c USEC', "
        "self-time weighted) — the input format of flamegraph.pl and "
        "speedscope",
    )
    parser.add_argument(
        "--otlp-out",
        metavar="FILE",
        default=None,
        help="write finished spans as OTLP-flavored JSON Lines (traceId/"
        "spanId/attributes per span) alongside the Chrome-trace formats",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="compile and run a J&s program")
    p_run.add_argument("file")
    p_run.add_argument("--entry", default="Main.main")
    p_run.add_argument("--mode", default="jns", choices=("java", "jx", "jx_cl", "jns"))
    p_run.add_argument("--no-check", action="store_true")
    p_run.add_argument(
        "--backend",
        default=None,
        choices=("walker", "compiled", "specialized", "codegen"),
        help="execution backend: 'codegen' (default) emits real Python "
        "per specialized method body; 'specialized' is the register-"
        "frame escape hatch; 'compiled' closure trees; 'walker' the "
        "tree interpreter",
    )
    p_run.add_argument(
        "--no-specialize",
        action="store_true",
        help="deprecated alias for --backend compiled (warns once)",
    )
    p_run.add_argument(
        "--max-steps",
        type=int,
        default=None,
        metavar="N",
        help="evaluation fuel: abort with JNS-RES-001 after N expression steps",
    )
    p_run.add_argument(
        "--max-depth",
        type=int,
        default=None,
        metavar="N",
        help="J&s call-depth limit (default 4000); exceeding it raises JNS-RES-002",
    )
    p_run.add_argument(
        "--stats",
        action="store_true",
        help="print query-cache hit/miss counters to stderr after the run",
    )
    p_run.add_argument(
        "--line-profile",
        action="store_true",
        help="deterministic per-jns-line profile of the run (statement "
        "counts + dispatch/view/mask event columns), rendered as an "
        "annotated-source heatmap on stderr",
    )
    _add_obs_flags(p_run)
    p_run.set_defaults(func=cmd_run)

    p_profile = sub.add_parser(
        "profile",
        help="source-level line profiler: deterministic event counts "
        "merged with wall-clock samples from the codegen tier, rendered "
        "as an annotated-source heatmap (FILE or jolden:NAME)",
    )
    p_profile.add_argument(
        "file", help="a .jns source file, or jolden:NAME for a built-in driver"
    )
    p_profile.add_argument(
        "--entry",
        default=None,
        help="entry method (default Main.main; jolden: Main.run)",
    )
    p_profile.add_argument(
        "--args",
        type=int,
        nargs="*",
        default=None,
        metavar="N",
        help="integer arguments for the entry method "
        "(jolden drivers default to their DEFAULT_ARGS)",
    )
    p_profile.add_argument(
        "--mode", default="jns", choices=("java", "jx", "jx_cl", "jns")
    )
    p_profile.add_argument(
        "--det-backend",
        default="specialized",
        choices=("walker", "compiled", "specialized", "codegen"),
        help="backend for the deterministic event pass (default "
        "%(default)s; the wall-clock pass always samples codegen)",
    )
    p_profile.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="MS",
        help="sampling interval in milliseconds (default %(default)s)",
    )
    p_profile.add_argument(
        "--min-samples",
        type=int,
        default=80,
        metavar="N",
        help="repeat the entry until N wall-clock samples landed "
        "(default %(default)s; 0 = single run)",
    )
    p_profile.add_argument(
        "--no-sample",
        action="store_true",
        help="skip the codegen sampling pass (deterministic counts only)",
    )
    p_profile.add_argument(
        "--context",
        type=int,
        default=0,
        metavar="N",
        help="only show N source lines around attributed lines "
        "(default: whole file)",
    )
    p_profile.add_argument(
        "--html", default=None, metavar="OUT",
        help="also write a self-contained HTML report",
    )
    p_profile.add_argument(
        "--flame", default=None, metavar="OUT",
        help="also write collapsed folds keyed by jns frames "
        "(P.C.m:line) for flamegraph.pl / speedscope",
    )
    p_profile.add_argument(
        "--json", action="store_true",
        help="emit the merged per-line table as JSON instead of the heatmap",
    )
    p_profile.set_defaults(func=cmd_profile)

    p_bdiff = sub.add_parser(
        "bench-diff",
        help="compare the two latest BENCH_history.jsonl entries; exits "
        "nonzero when a directed metric regressed past the threshold",
    )
    p_bdiff.add_argument(
        "--history",
        default="BENCH_history.jsonl",
        help="history file written by scripts/bench_history.py "
        "(default %(default)s)",
    )
    p_bdiff.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        metavar="FRAC",
        help="relative regression threshold (default %(default)s = 25%%)",
    )
    p_bdiff.set_defaults(func=cmd_bench_diff)

    p_check = sub.add_parser("check", help="type-check a J&s program")
    p_check.add_argument("file")
    p_check.add_argument("--strict", action="store_true")
    p_check.add_argument("--infer", action="store_true")
    p_check.add_argument(
        "--json",
        action="store_true",
        help="emit diagnostics as machine-readable JSON",
    )
    p_check.add_argument(
        "--explain",
        action="store_true",
        help="record derivations while checking and attach refutation "
        "trees (why the judgment failed) to sharing diagnostics; "
        "meant for --json consumers",
    )
    p_check.add_argument(
        "--stats",
        action="store_true",
        help="print query-cache hit/miss counters to stderr after checking",
    )
    _add_obs_flags(p_check)
    p_check.set_defaults(func=cmd_check)

    p_explain = sub.add_parser(
        "explain",
        help="render the proof tree of a semantic judgment (subtype, "
        "shares, masks) over the program's class table",
    )
    p_explain.add_argument("file")
    p_explain.add_argument(
        "--query",
        required=True,
        metavar="Q",
        help="the judgment to explain: 'subtype T1 T2', 'shares T1 T2', "
        "'masks P.C', 'mem T', or 'fclass P.C f' (types use surface "
        "syntax, e.g. pair!.Exp)",
    )
    p_explain.add_argument(
        "--json",
        action="store_true",
        help="emit the derivation trees as machine-readable JSON",
    )
    p_explain.add_argument(
        "--html",
        metavar="OUT",
        help="write the derivation trees as a standalone HTML document "
        "with collapsible proof-tree nodes",
    )
    p_explain.set_defaults(func=cmd_explain)

    p_fmt = sub.add_parser("fmt", help="pretty-print a J&s program")
    p_fmt.add_argument("file")
    p_fmt.set_defaults(func=cmd_fmt)

    p_report = sub.add_parser("report", help="regenerate an evaluation artifact")
    p_report.add_argument("what", choices=("table1", "table2", "corona"))
    p_report.set_defaults(func=cmd_report)

    p_corona = sub.add_parser(
        "corona",
        help="run the chaos-hardened CorONA harness: sharded async "
        "traffic, seeded fault injection, live family evolution",
    )
    p_corona.add_argument("--nodes", type=int, default=256, metavar="N")
    p_corona.add_argument("--shards", type=int, default=4, metavar="K")
    p_corona.add_argument("--objects", type=int, default=96, metavar="M")
    p_corona.add_argument("--requests", type=int, default=600, metavar="R")
    p_corona.add_argument("--seed", type=int, default=11, metavar="S")
    p_corona.add_argument(
        "--faults",
        default="",
        metavar="PLAN",
        help="fault plan: JSON file path, JSON object string, or compact "
        "DSL 'crash:SHARD@REQ+DOWNMS,drop:RATE,delay:RATE@MS,fuel:REQ' "
        "(empty = no faults)",
    )
    p_corona.add_argument(
        "--journal",
        default=None,
        metavar="FILE",
        help="persist the evolution journal to FILE (JSONL); if FILE "
        "exists the run resumes from it, completing any pending "
        "transitions (crash-recoverable evolution)",
    )
    p_corona.add_argument(
        "--json", action="store_true", help="emit the full report as JSON"
    )
    p_corona.add_argument(
        "--wall",
        action="store_true",
        help="include wall-clock throughput/pause figures in --json output "
        "(excluded by default so reports replay byte-identically)",
    )
    _add_obs_flags(p_corona)
    p_corona.set_defaults(func=cmd_corona)

    p_graph = sub.add_parser(
        "graph", help="print the family graph (inheritance + sharing edges)"
    )
    p_graph.add_argument("file")
    p_graph.add_argument("--dot", action="store_true", help="Graphviz output")
    p_graph.add_argument(
        "--explicit-only", action="store_true", help="omit implicit classes"
    )
    p_graph.set_defaults(func=cmd_graph)

    p_repl = sub.add_parser("repl", help="interactive J&s session")
    p_repl.set_defaults(func=lambda args: __import__("repro.repl", fromlist=["main"]).main())

    p_serve = sub.add_parser(
        "serve",
        help="long-lived incremental check service (JSON Lines over a "
        "local TCP socket; see repro.serve for the wire protocol)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default %(default)s)"
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port; 0 picks an ephemeral one, announced on the "
        "JSON ready line (default %(default)s)",
    )
    p_serve.add_argument(
        "--idle-timeout",
        type=float,
        default=300.0,
        metavar="S",
        help="evict sessions idle longer than S seconds (default %(default)s)",
    )
    p_serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="P",
        help="also serve GET /metrics (Prometheus text format) over HTTP "
        "on this port (0 picks an ephemeral one, announced as "
        "metrics_port on the ready line); omitted = no HTTP endpoint",
    )
    p_serve.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="seed for the deterministic per-request trace-id stream "
        "(default %(default)s)",
    )
    p_serve.set_defaults(
        func=lambda args: __import__("repro.serve", fromlist=["main"]).main(args)
    )

    p_top = sub.add_parser(
        "top",
        help="live ops console for a running 'repro serve': polls the "
        "metrics op and renders req/s, per-op p50/p95 latency, cache "
        "hit rate, and incremental revalidation counts in place",
    )
    p_top.add_argument(
        "--host", default="127.0.0.1", help="server host (default %(default)s)"
    )
    p_top.add_argument(
        "--port", type=int, required=True, help="server port (from the ready line)"
    )
    p_top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="seconds between polls (default %(default)s)",
    )
    p_top.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="stop after N frames (default: run until Ctrl-C)",
    )
    p_top.add_argument(
        "--no-clear",
        action="store_true",
        help="append frames instead of clearing the screen (for logs/tests)",
    )
    p_top.set_defaults(func=cmd_top)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
