"""Legacy setup shim so `pip install -e .` works offline (no wheel/PEP 660
machinery available in this environment); configuration lives in
pyproject.toml."""

from setuptools import setup

setup()
