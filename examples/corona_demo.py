"""CorONA live evolution (Section 7.4).

Boots a simulated DHT-based feed aggregator, runs a fetch workload,
then evolves the *running* ring — first to passive caching (PC-Pastry
style), then to active replication (Beehive style) — using view changes
on the live host-node objects.  No node or feed object is recreated.

Run:  python examples/corona_demo.py
"""

from repro.programs.corona import CoronaSystem, evolution_loc


def main() -> None:
    system = CoronaSystem(size=16, objects=64)
    print(f"ring of {system.size} nodes, {system.objects} published feeds")

    plain = system.run_phase("corona", fetches=300)
    print(f"plain corona    : avg hops {plain.avg_hops:5.2f}")

    system.evolve_to_pc()
    print("-> evolved live to pccorona (passive caching)")
    cold = system.run_phase("pccorona", fetches=300, seed=19)
    warm = system.run_phase("pccorona", fetches=300, seed=29)
    print(f"pc, cold caches : avg hops {cold.avg_hops:5.2f}")
    print(f"pc, warm caches : avg hops {warm.avg_hops:5.2f}")

    replicated = system.evolve_to_bee(threshold=5)
    print(f"-> evolved live to beecorona ({replicated} feeds replicated)")
    bee = system.run_phase("beecorona", fetches=300, seed=39)
    print(f"bee replication : avg hops {bee.avg_hops:5.2f}")

    assert system.nodes_preserved()
    print("all host-node objects preserved across both evolutions")
    loc = evolution_loc()
    print(f"evolution code: {loc['evolution']} of {loc['total']} lines "
          f"({100 * loc['evolution'] / loc['total']:.1f}%)")


if __name__ == "__main__":
    main()
