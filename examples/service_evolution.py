"""Dynamic object evolution (Section 2.4, Figure 4).

A running network service is upgraded with logging *without stopping
it*: a derived package overrides the dispatcher's behavior, and a single
view change on the live dispatcher object switches the running system to
the new family.  All state (handled-packet counters) survives; all
objects keep their identity.

Run:  python examples/service_evolution.py
"""

from repro import compile_program

SOURCE = """
class service {
  class Packet {
    int kind;
    Packet(int kind) { this.kind = kind; }
  }
  class SomeService {
    int handled;
    void handle(Packet p) { handled = handled + 1; }
  }
  class Dispatcher {
    SomeService s;
    Dispatcher() { this.s = new SomeService(); }
    String dispatch(Packet p) {
      if (p.kind == 0) { s.handle(p); return "ok"; }
      return "dropped";
    }
  }
}

class logService extends service {
  class Packet shares service.Packet { }
  class SomeService shares service.SomeService { }
  class Logger {
    int count;
    void log(String what) { count = count + 1; Sys.print("[log] " + what); }
  }
  class Dispatcher shares service.Dispatcher\\logger {
    Logger logger;
    String dispatch(Packet p) {
      logger.log("dispatch kind=" + p.kind);
      if (p.kind == 0) { s.handle(p); return "ok+logged"; }
      return "dropped+logged";
    }
  }
}

class Server {
  service.Dispatcher disp;
  Server() { this.disp = new service.Dispatcher(); }
  String tick(int kind) { return disp.dispatch(new service.Packet(kind)); }
  int handledCount() { return disp.s.handled; }

  // the paper's two-line upgrade (Section 2.4)
  void evolve() sharing service!.Dispatcher = logService!.Dispatcher\\logger {
    service!.Dispatcher d = (service!.Dispatcher)disp;       // cast
    logService!.Dispatcher\\logger nd =
        (view logService!.Dispatcher\\logger)d;              // view change
    nd.logger = new logService.Logger();                     // unmask
    disp = nd;
  }
}
"""


def main() -> None:
    program = compile_program(SOURCE)
    interp = program.interp(echo=True)
    server = interp.new_instance(("Server",), ())

    print("--- before evolution ---")
    for kind in (0, 0, 1):
        print("tick:", interp.call_method(server, "tick", [kind]))

    print("--- evolving the running server ---")
    interp.call_method(server, "evolve", [])

    print("--- after evolution ---")
    for kind in (0, 1):
        print("tick:", interp.call_method(server, "tick", [kind]))

    print("handled packets across the upgrade:",
          interp.call_method(server, "handledCount", []))


if __name__ == "__main__":
    main()
