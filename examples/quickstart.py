"""Quickstart: class sharing in five minutes.

Builds the paper's running example (Figures 1-3): an expression family
``AST``, a GUI family ``TreeDisplay``, and a composition ``ASTDisplay``
that *shares* the expression classes — so expression trees built by code
that has never heard of GUIs can be displayed in place, through a single
view change on the root.

Run:  python examples/quickstart.py
"""

from repro import compile_program

SOURCE = """
class AST {
  class Exp { int eval() { return 0; } }
  class Value extends Exp {
    int v;
    Value(int v) { this.v = v; }
    int eval() { return v; }
  }
  class Binary extends Exp {
    Exp l; Exp r;
    Binary(Exp l, Exp r) { this.l = l; this.r = r; }
    int eval() { return l.eval() + r.eval(); }
  }
}

class TreeDisplay {
  class Node { void display() { Sys.print("?"); } }
  class Composite extends Node { }
  class Leaf extends Node { }
}

// One family, two capabilities: ASTDisplay inherits *both* families and
// shares the expression classes with AST, so existing AST objects are
// also ASTDisplay objects.
class ASTDisplay extends AST & TreeDisplay adapts AST {
  class Exp extends Node { }
  class Value extends Exp & Leaf {
    void display() { Sys.print("value " + v); }
  }
  class Binary extends Exp & Composite {
    void display() {
      l.display();          // the children adapt implicitly
      Sys.print("+");
      r.display();
    }
  }
  void show(AST!.Exp e) sharing AST!.Exp = Exp {
    Exp adapted = (view Exp)e;   // one explicit view change
    adapted.display();
  }
}

class Main {
  void main() {
    // plain AST code: (1 + 2) + 39
    AST!.Exp tree = new AST.Binary(
        new AST.Binary(new AST.Value(1), new AST.Value(2)),
        new AST.Value(39));
    Sys.print("eval = " + tree.eval());

    // adapt the whole tree in place and display it
    ASTDisplay gui = new ASTDisplay();
    gui.show(tree);

    // the original reference is untouched: still pure AST behavior
    Sys.print("eval again = " + tree.eval());
  }
}
"""


def main() -> None:
    program = compile_program(SOURCE)
    interp = program.interp(mode="jns", echo=True)
    interp.run("Main.main")


if __name__ == "__main__":
    main()
