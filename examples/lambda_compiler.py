"""The lambda compiler (Section 7.3, Figure 20).

Four families — base, sum, pair, and their composition sumpair — where
the composition contains *no translation code*, only sharing.  A term
mixing sums and pairs is translated to the plain lambda calculus
in place: unchanged nodes keep their identity, only the new node kinds
are rewritten; then the result is beta-normalized to check correctness.

Run:  python examples/lambda_compiler.py
"""

from repro.programs.lambdac import LambdaCompiler


def main() -> None:
    lc = LambdaCompiler()
    F = "sumpair"

    # case (inl a) of l => fst (pair (b, c)) | r => d
    term = lc.case(
        F,
        lc.inl(F, lc.var(F, "a")),
        "l",
        lc.fst(F, lc.pair(F, lc.var(F, "b"), lc.var(F, "c"))),
        "r",
        lc.var(F, "d"),
    )
    print("source family :", ".".join(term.view.path))

    translated = lc.translate(F, term)
    print("translated    :", lc.show(translated))
    print("normal form   :", lc.show(lc.normalize(translated)))

    # in-place translation: a pure-lambda term is *reused*, not copied
    pure = lc.abs(F, "z", lc.app(F, lc.var(F, "z"), lc.var(F, "z")))
    out = lc.translate(F, pure)
    print(
        "in-place reuse:",
        "same object" if out.inst is pure.inst else "copied",
        f"({pure.view!r} -> {out.view!r})",
    )


if __name__ == "__main__":
    main()
