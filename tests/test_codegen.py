"""Tests for the ``jns -> Python`` codegen backend (ISSUE 9).

Covers the acceptance surface beyond the four-way differential:

- resource-guard parity with the other backends (cumulative fuel trips
  mid-emitted-body as ``JNS-RES-001``, ``reset_budget`` recovery,
  call-depth trips as ``JNS-RES-002`` with identical stack labels,
  reentrancy refusal) mirroring ``TestResourceErrorRecovery``;
- ``EditNotice`` eviction: a body-only graft through
  :class:`~repro.lang.incremental.IncrementalChecker` must evict cached
  emitted closures (no stale compiled bodies);
- emitted-source shape: slot indices baked in, devirtualized direct
  calls, mask guards — asserted on the retained ``sources`` text;
- the ``codegen.*`` / ``dispatch.codegen_hit`` obs counters;
- the satellite counters: ``view_change.elided`` (static per-site view
  elision, register and codegen backends) and
  ``specialize.sites_devirtualized`` for receiver-monomorphic names.
"""

import sys

import pytest

from repro import JnsError, clear_caches, compile_program, obs
from repro.errors import JnsResourceError

LOOPY = (
    "class A { int spin(int n) { int i = 0; "
    "while (i < n) { i = i + 1; } return i; } "
    "int cheap() { return 7; } }"
)

MASKED = """
class F0 {
  class A {
    int x = 5;
    int get() { return x; }
  }
}
class F1 extends F0 {
  class A shares F0.A {
    int y;
    int get() { return x + y; }
  }
}
class Main {
  int main() {
    F0!.A a = new F0.A();
    F1!.A\\y v = (view F1!.A\\y)a;
    v.y = 37;
    return a.get() + v.get();
  }
}
"""


@pytest.fixture(autouse=True)
def _restored():
    yield
    obs.disable()
    obs.TRACER.reset()
    clear_caches()


def _interp(src, **kw):
    kw.setdefault("backend", "codegen")
    return compile_program(src).interp(mode="jns", **kw)


class TestResourceParity:
    """The emitted bodies must honor the same budgets, error codes, and
    stack labels as every other backend."""

    def test_fuel_trip_mid_emitted_body_then_reset(self):
        interp = _interp(LOOPY, max_steps=2000)
        ref = interp.new_instance(("A",), ())
        assert interp.call_method(ref, "cheap", []) == 7
        with pytest.raises(JnsResourceError) as exc_info:
            interp.call_method(ref, "spin", [10**6])
        assert exc_info.value.code == "JNS-RES-001"
        # cumulative budget: the per-call entry tick keeps tripping even
        # a cheap emitted body until the budget is re-armed
        with pytest.raises(JnsResourceError):
            interp.call_method(ref, "cheap", [])
        interp.reset_budget()
        assert interp._steps == 0
        assert interp._res_stack is None
        assert interp.call_stack == []
        assert interp.call_method(ref, "cheap", []) == 7
        assert interp.call_method(ref, "spin", [50]) == 50

    def test_depth_trip_recovers_without_reset(self):
        limit_before = sys.getrecursionlimit()
        src = "class A { int m() { return m(); } int cheap() { return 3; } }"
        interp = _interp(src, max_depth=80)
        ref = interp.new_instance(("A",), ())
        for _ in range(2):
            with pytest.raises(JnsResourceError) as exc_info:
                interp.call_method(ref, "m", [])
            assert exc_info.value.code == "JNS-RES-002"
            assert interp._depth == 0
            assert sys.getrecursionlimit() == limit_before
            assert interp.call_method(ref, "cheap", []) == 3

    def test_depth_trip_stack_labels_match_walker(self):
        src = "class A { int m() { return m(); } }"
        program = compile_program(src)
        stacks = {}
        for backend in ("walker", "codegen"):
            interp = program.interp(mode="jns", backend=backend, max_depth=40)
            ref = interp.new_instance(("A",), ())
            with pytest.raises(JnsResourceError) as exc_info:
                interp.call_method(ref, "m", [])
            stacks[backend] = exc_info.value.jns_stack
        assert stacks["codegen"] == stacks["walker"]
        assert stacks["codegen"][-1] == "A.m"

    def test_reset_budget_refuses_reentrant_use(self):
        interp = _interp(LOOPY, max_steps=2000)
        interp._depth = 3
        try:
            with pytest.raises(RuntimeError):
                interp.reset_budget()
        finally:
            interp._depth = 0


class TestEviction:
    def test_body_graft_evicts_emitted_closures(self):
        """A body-only edit through the incremental checker must drop the
        codegen compiler wholesale — the re-run sees the new body, never
        a stale emitted closure."""
        from repro.lang.incremental import IncrementalChecker
        from repro.runtime.interp import Interp

        v1 = "class A { int m() { return 1; } }"
        v2 = "class A { int m() { return 2; } }"
        inc = IncrementalChecker(v1)
        assert not inc.check().has_errors
        interp = Interp(inc.table, mode="jns", backend="codegen")
        ref = interp.new_instance(("A",), ())
        assert interp.call_method(ref, "m", []) == 1
        assert interp._cg is not None and interp._cg.bodies_emitted >= 1
        stats = inc.apply_edit(v2)
        assert stats["strategy"] != "scratch"  # a graft, not a rebuild
        assert interp._cg is None  # closures evicted with the compiler
        assert interp.call_method(ref, "m", []) == 2

    def test_rerun_after_edit_reemits(self):
        from repro.lang.incremental import IncrementalChecker
        from repro.runtime.interp import Interp

        v1 = "class A { int m() { return 10; } int k() { return m() + 1; } }"
        v2 = "class A { int m() { return 20; } int k() { return m() + 1; } }"
        inc = IncrementalChecker(v1)
        interp = Interp(inc.table, mode="jns", backend="codegen")
        ref = interp.new_instance(("A",), ())
        assert interp.call_method(ref, "k", []) == 11
        inc.apply_edit(v2)
        # the devirtualized/this-call cell for m() must not survive
        assert interp.call_method(ref, "k", []) == 21


class TestEmission:
    def test_slot_indices_and_mask_guard_in_source(self):
        interp = _interp(MASKED)
        ref = interp.new_instance(("Main",), ())
        assert interp.call_method(ref, "main", []) == 47  # 5 + (5 + 37)
        sources = interp._cg.sources
        shared_get = sources["F1.A.get"]
        # Layout slots are baked in as literal indexed accesses, and the
        # mask guard is straight-line code, not a closure call.
        assert ".inst.slots[" in shared_get
        assert "u_this.view.masks" in shared_get
        base_get = sources["F0.A.get"]
        assert ".inst.slots[" in base_get

    def test_counters_and_codegen_hits(self):
        obs.enable()
        interp = _interp(MASKED)
        ref = interp.new_instance(("Main",), ())
        interp.call_method(ref, "main", [])
        counters = obs.TRACER.counters
        assert counters.get("codegen.bodies_emitted", 0) >= 2
        assert counters.get("codegen.sites_inlined", 0) >= 2
        assert counters.get("dispatch.codegen_hit", 0) >= 1
        assert interp._cg.bodies_emitted == counters["codegen.bodies_emitted"]
        assert interp._cg.sites_inlined == counters["codegen.sites_inlined"]

    def test_backend_attribute_resolution(self):
        program = compile_program(LOOPY)
        assert program.interp(backend="codegen").backend == "codegen"
        assert program.interp(backend="specialized").backend == "specialized"
        assert program.interp(backend="compiled").backend == "compiled"
        assert program.interp(backend="walker").backend == "walker"
        # jx mode has no run-time precomputation: codegen degrades
        assert program.interp(mode="jx", backend="codegen").backend == "compiled"
        with pytest.raises(ValueError):
            program.interp(backend="bytecode")

    def test_codegen_matches_walker_on_error_programs(self):
        src = (
            "class A { int m() { int[] xs = new int[2]; return xs[5]; } }"
        )
        program = compile_program(src, check=False)
        outcomes = {}
        for backend in ("walker", "codegen"):
            interp = program.interp(mode="jns", backend=backend)
            ref = interp.new_instance(("A",), ())
            with pytest.raises(JnsError) as exc_info:
                interp.call_method(ref, "m", [])
            outcomes[backend] = str(exc_info.value)
        assert outcomes["codegen"] == outcomes["walker"]


VIEW_NOOP = """
class F0 {
  class A {
    int x = 3;
    int get() { return x; }
  }
}
class F1 extends F0 {
  class A shares F0.A { }
}
class Main {
  int main() {
    int s = 0;
    for (int i = 0; i < 5; i++) {
      F0!.A a = new F0.A();
      s = s + ((view F0!.A)a).get();
    }
    return s;
  }
}
"""


class TestSatelliteCounters:
    @pytest.mark.parametrize("backend", ["specialized", "codegen"])
    def test_static_view_change_elided(self, backend):
        """An explicit view change whose target is non-dependent and
        provably a no-op for the source view skips the runtime ``view``
        call in both compiled backends (satellite: per-site view elision
        for call receivers)."""
        obs.enable()
        interp = _interp(VIEW_NOOP, backend=backend)
        ref = interp.new_instance(("Main",), ())
        assert interp.call_method(ref, "main", []) == 15
        counters = obs.TRACER.counters
        assert counters.get("view_change.elided", 0) >= 5
        # the elided sites never reached the adapt machinery
        assert counters.get("view_change.noop", 0) == 0

    def test_receiver_monomorphic_devirtualization(self):
        """`get` is polymorphic globally (B redefines it) yet monomorphic
        for the receiver's static type A — the site devirtualizes via the
        conformance-set relaxation (satellite: per-receiver-class
        monomorphic names)."""
        src = """
class A { int get() { return 1; } }
class B { int get() { return 2; } }
class Main {
  int main() {
    A a = new A();
    B b = new B();
    return a.get() * 10 + b.get();
  }
}
"""
        program = compile_program(src)
        for backend in ("specialized", "codegen"):
            clear_caches()
            interp = program.interp(mode="jns", backend=backend)
            ref = interp.new_instance(("Main",), ())
            assert interp.call_method(ref, "main", []) == 12
            assert interp.spec.sites_devirtualized >= 2, backend

    def test_monomorphic_target_query(self):
        from repro.lang.types import ClassType

        src = """
class A { int get() { return 1; } }
class A2 extends A { }
class B { int get() { return 2; } }
"""
        table = compile_program(src).table
        assert table.sealed_method_target("get") is None
        paths = table.conforming_paths(ClassType(("A",)))
        target = table.monomorphic_method_target("get", paths)
        assert target is not None
        owner, decl, valid = target
        assert owner == ("A",)
        assert valid == frozenset({("A",), ("A2",)})
        mixed = table.conforming_paths(ClassType(("B",))) | paths
        assert table.monomorphic_method_target("get", frozenset(mixed)) is None
