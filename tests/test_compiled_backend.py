"""Closure-compilation backend tests: semantics must match the tree
walker exactly (the two strategies share all view/dispatch machinery)."""

import pytest

from repro import JnsRuntimeError, UninitializedFieldError, compile_program

from conftest import FIG123_SOURCE, FIG5_SOURCE, run_main


def both(src: str, method: str = "main", cls: str = "Main", mode: str = "jns"):
    program = compile_program(src)
    results = []
    outputs = []
    for compiled in (False, True):
        interp = program.interp(mode=mode, compiled=compiled)
        ref = interp.new_instance((cls,), ())
        results.append(interp.call_method(ref, method, []))
        outputs.append(interp.output)
    assert results[0] == results[1]
    assert outputs[0] == outputs[1]
    return results[0]


class TestAgreement:
    def test_arithmetic_and_control(self):
        assert both(
            """class Main {
              int main() {
                int s = 0;
                for (int i = 1; i <= 10; i++) {
                  if (i % 3 == 0) { continue; }
                  s += i * i;
                  if (s > 200) { break; }
                }
                return s - (-7) / 2;
              }
            }"""
        ) == both(
            """class Main {
              int main() {
                int s = 0;
                for (int i = 1; i <= 10; i++) {
                  if (i % 3 == 0) { continue; }
                  s += i * i;
                  if (s > 200) { break; }
                }
                return s - (-7) / 2;
              }
            }"""
        )

    def test_figures_example(self):
        src = FIG123_SOURCE
        program = compile_program(src)
        for compiled in (False, True):
            interp = program.interp(compiled=compiled)
            main = interp.new_instance(("Main",), ())
            assert interp.call_method(main, "showSample", []) == "(v1+v2)"

    def test_strings_and_sys(self):
        both(
            """class Main {
              String main() {
                String s = "";
                s += 1;
                s += true;
                s = s + Sys.str(Sys.min(3, 4)) + Sys.substring("hello", 0, 2);
                Sys.print(s);
                return s;
              }
            }"""
        )

    def test_masked_fields_and_views(self):
        src = FIG5_SOURCE + """
        class Main {
          int main() sharing A1!.B = A2!.B\\f {
            A1!.B b1 = new A1.B();
            A2!.B\\f b2 = (view A2!.B\\f)b1;
            b2.f = 41;
            return b2.f + b1.b0 + 1;
          }
        }
        """
        assert both(src) == 42

    def test_runtime_mask_guard_preserved(self):
        src = FIG5_SOURCE + """
        class Main {
          A2!.B\\f go() sharing A1!.B = A2!.B\\f {
            return (view A2!.B\\f)(new A1.B());
          }
        }
        """
        program = compile_program(src)
        interp = program.interp(compiled=True)
        main = interp.new_instance(("Main",), ())
        b = interp.call_method(main, "go", [])
        with pytest.raises(UninitializedFieldError):
            interp.get_field(b, "f")

    def test_instanceof_and_casts(self):
        both(
            """class A { }
               class B extends A { int only() { return 5; } }
               class Main {
                 int main() {
                   A a = new B();
                   if (a instanceof B) { return ((B)a).only(); }
                   return 0;
                 }
               }"""
        )

    def test_compound_int_division_truncates(self):
        assert both(
            "class Main { int main() { int x = 7; x /= 2; return x; } }"
        ) == 3

    def test_ctor_and_initializers(self):
        both(
            """class Box {
                 int a = 2;
                 int b;
                 Box(int b) { this.b = b + a; }
               }
               class Main { int main() { return new Box(5).b; } }"""
        )

    def test_exceptions_identical(self):
        program = compile_program(
            "class Main { int main() { int[] a = new int[1]; return a[3]; } }"
        )
        for compiled in (False, True):
            interp = program.interp(compiled=compiled)
            ref = interp.new_instance(("Main",), ())
            with pytest.raises(JnsRuntimeError):
                interp.call_method(ref, "main", [])

    @pytest.mark.parametrize("mode", ("java", "jx_cl", "jns"))
    def test_modes_compose_with_compilation(self, mode):
        src = """
        class A { int m() { return 1; } int go() { return m() * 10; } }
        class B extends A { int m() { return 2; } }
        class Main { int main() { A a = new B(); return a.go(); } }
        """
        program = compile_program(src)
        interp = program.interp(mode=mode, compiled=True)
        ref = interp.new_instance(("Main",), ())
        assert interp.call_method(ref, "main", []) == 20


class TestJoldenAgreement:
    @pytest.mark.parametrize(
        "name", ["treeadd", "bisort", "mst", "perimeter", "power"]
    )
    def test_compiled_matches_walker(self, name):
        from repro.programs.jolden import BY_NAME

        module = BY_NAME[name]
        program = compile_program(module.SOURCE)
        values = []
        for compiled in (False, True):
            interp = program.interp(mode="jns", compiled=compiled)
            ref = interp.new_instance(("Main",), ())
            values.append(
                interp.call_method(ref, "run", list(module.DEFAULT_ARGS))
            )
        assert values[0] == values[1]


class TestCaching:
    def test_bodies_compiled_once(self):
        program = compile_program(
            "class A { int m() { return 1; } } "
            "class Main { int main() { A a = new A(); int s = 0; "
            "for (int i = 0; i < 50; i++) { s += a.m(); } return s; } }"
        )
        interp = program.interp(compiled=True)
        ref = interp.new_instance(("Main",), ())
        interp.call_method(ref, "main", [])
        # one compiled body per executed method (main + m)
        assert len(interp._body_cache) == 2
