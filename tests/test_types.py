"""Unit tests for resolved type representations (repro.lang.types)."""

import pytest
from hypothesis import given, strategies as st

from repro.lang import types as T
from repro.lang.types import ClassType, View, exact_class


class TestClassType:
    def test_repr_plain(self):
        assert repr(ClassType(("A", "B"))) == "A.B"

    def test_repr_exact_positions(self):
        assert repr(ClassType(("A", "B"), frozenset({1}))) == "A!.B"
        assert repr(ClassType(("A", "B"), frozenset({2}))) == "A.B!"

    def test_root(self):
        assert repr(ClassType(())) == "o"

    def test_is_exact(self):
        assert exact_class(("A",)).is_exact
        assert not ClassType(("A",)).is_exact
        assert not ClassType(("A", "B"), frozenset({1})).is_exact

    def test_member_preserves_exact_prefix(self):
        t = exact_class(("A",)).member("B")
        assert t.path == ("A", "B")
        assert t.exact == frozenset({1})

    def test_drop_exact(self):
        assert exact_class(("A",)).drop_exact() == ClassType(("A",))


class TestMasks:
    def test_with_masks(self):
        t = ClassType(("A",)).with_masks(frozenset({"f"}))
        assert t.masks == frozenset({"f"})
        assert t.pure() == ClassType(("A",))

    def test_mask_merging(self):
        t = ClassType(("A",)).with_masks(frozenset({"f"}))
        t2 = t.with_masks(frozenset({"g"}))
        assert t2.masks == frozenset({"f", "g"})

    def test_empty_masks_identity(self):
        t = ClassType(("A",))
        assert t.with_masks(frozenset()) is t

    def test_masked_helper(self):
        t = T.masked(ClassType(("A",)), "f", "g")
        assert t.masks == frozenset({"f", "g"})

    def test_repr_sorted(self):
        t = T.masked(ClassType(("A",)), "g", "f")
        assert repr(t) == "A\\f\\g"

    def test_member_of_masked_rejected(self):
        with pytest.raises(ValueError):
            T.make_member(T.masked(ClassType(("A",)), "f"), "B")


class TestMakers:
    def test_make_exact_on_class(self):
        t = T.make_exact(ClassType(("A", "B")))
        assert isinstance(t, ClassType) and t.is_exact

    def test_make_exact_on_dep_is_noop(self):
        d = T.DepType(("this",))
        assert T.make_exact(d) is d

    def test_make_exact_under_masks(self):
        t = T.make_exact(T.masked(ClassType(("A",)), "f"))
        assert t.masks == frozenset({"f"})
        assert t.pure().is_exact

    def test_make_member_class(self):
        assert T.make_member(ClassType(("A",)), "B") == ClassType(("A", "B"))

    def test_make_member_prefix(self):
        p = T.PrefixType(("AST",), T.DepType(("this",)))
        m = T.make_member(p, "Exp")
        assert isinstance(m, T.NestedType)

    def test_make_isect_flattens(self):
        t = T.make_isect(
            (T.make_isect((ClassType(("A",)), ClassType(("B",)))), ClassType(("C",)))
        )
        assert isinstance(t, T.IsectType)
        assert len(t.parts) == 3

    def test_make_isect_single_collapses(self):
        assert T.make_isect((ClassType(("A",)), ClassType(("A",)))) == ClassType(("A",))


class TestExactness:
    def test_prefix_exact_k_of_exact_class(self):
        t = exact_class(("A", "B"))
        assert T.prefix_exact_k(t, 0)
        assert T.prefix_exact_k(t, 1)  # monotone outward

    def test_prefix_exact_k_inner_position(self):
        t = ClassType(("A", "B", "C"), frozenset({2}))  # A.B!.C
        assert not T.prefix_exact_k(t, 0)
        assert T.prefix_exact_k(t, 1)
        assert T.prefix_exact_k(t, 2)

    def test_dep_type_exact(self):
        assert T.is_exact(T.DepType(("this",)))

    def test_nested_through_prefix(self):
        # AST[this.class].Exp — not exact itself, family-level exact
        t = T.NestedType(T.PrefixType(("AST",), T.DepType(("this",))), "Exp")
        assert not T.is_exact(t)
        assert T.prefix_exact_k(t, 1)

    def test_isect_exact_if_any(self):
        t = T.IsectType((ClassType(("A",)), exact_class(("B",))))
        assert T.is_exact(t)

    def test_plain_class_never_exact(self):
        assert not T.is_exact(ClassType(("A", "B", "C")))


class TestPaths:
    def test_paths_of_dep(self):
        assert T.paths_in(T.DepType(("x", "f"))) == frozenset({("x", "f")})

    def test_paths_through_structure(self):
        t = T.NestedType(T.PrefixType(("A",), T.DepType(("this",))), "C")
        assert T.paths_in(t) == frozenset({("this",)})

    def test_paths_of_class_empty(self):
        assert T.paths_in(ClassType(("A",))) == frozenset()

    def test_depends_on_this_only(self):
        t1 = T.PrefixType(("A",), T.DepType(("this", "f")))
        t2 = T.PrefixType(("A",), T.DepType(("x",)))
        assert T.depends_on_this_only(t1)
        assert not T.depends_on_this_only(t2)

    def test_is_reference_type(self):
        assert T.is_reference_type(ClassType(("A",)))
        assert T.is_reference_type(T.DepType(("this",)))
        assert not T.is_reference_type(T.INT)
        assert not T.is_reference_type(T.ArrayType(T.INT))


class TestView:
    def test_view_as_type(self):
        v = View(("A", "B"), frozenset({"f"}))
        t = v.as_type()
        assert t.masks == frozenset({"f"})
        assert t.pure().is_exact

    def test_without_masks(self):
        v = View(("A",), frozenset({"f"}))
        assert v.without_masks().masks == frozenset()

    def test_view_repr(self):
        assert repr(View(("A", "B"), frozenset({"f"}))) == "A.B!\\f"

    def test_view_hashable_equal(self):
        assert View(("A",)) == View(("A",))
        assert hash(View(("A",))) == hash(View(("A",)))


# -- property-based tests ----------------------------------------------------

names = st.sampled_from(["A", "B", "C", "D"])
paths = st.lists(names, min_size=1, max_size=3).map(tuple)


@st.composite
def class_types(draw):
    path = draw(paths)
    positions = draw(
        st.sets(st.integers(min_value=1, max_value=len(path)), max_size=2)
    )
    return ClassType(path, frozenset(positions))


@given(class_types())
def test_prefix_exact_monotone(t):
    """If prefixExact_k then prefixExact_{k+1} (Figure 11)."""
    for k in range(0, len(t.path) + 1):
        if T.prefix_exact_k(t, k):
            assert T.prefix_exact_k(t, k + 1)


@given(class_types(), st.sets(st.sampled_from(["f", "g", "h"]), max_size=3))
def test_mask_roundtrip(t, masks):
    masked = t.with_masks(frozenset(masks))
    assert masked.pure() == t
    assert masked.masks == frozenset(masks)


@given(class_types())
def test_make_exact_idempotent_exactness(t):
    e = T.make_exact(t)
    assert T.is_exact(e)
    assert T.make_exact(e).pure() == e.pure()


@given(class_types())
def test_exactness_never_changes_path(t):
    assert T.make_exact(t).path == t.path
