"""Sharing-judgment tests: SH-CLS, required masks, the directional
refinement of Section 3.3."""

import pytest

from repro import compile_program
from repro.lang import types as T
from repro.lang.sharing import SharingChecker
from repro.lang.subtype import Env
from repro.lang.types import ClassType

from conftest import FIG123_SOURCE, FIG5_SOURCE

PAIR_SOURCE = """
abstract class base {
  abstract class Exp { }
  class Var extends Exp { String x; Var(String x) { this.x = x; } }
  class Abs extends Exp {
    String x; Exp e;
    Abs(String x, Exp e) { this.x = x; this.e = e; }
  }
}
abstract class pair extends base {
  abstract class Exp shares base.Exp { }
  class Var extends Exp shares base.Var { }
  class Abs extends Exp shares base.Abs\\e { }
  class Pair extends Exp {
    Exp fst; Exp snd;
    Pair(Exp fst, Exp snd) { this.fst = fst; this.snd = snd; }
  }
}
"""


def C(*parts, exact=()):
    return ClassType(tuple(parts), frozenset(exact))


@pytest.fixture(scope="module")
def pair_checker():
    table = compile_program(PAIR_SOURCE).table
    return table, SharingChecker(table)


@pytest.fixture(scope="module")
def fig5_checker():
    table = compile_program(FIG5_SOURCE).table
    return table, SharingChecker(table)


class TestRequiredMasks:
    def test_new_field_requires_mask(self, fig5_checker):
        table, checker = fig5_checker
        masks = checker.required_masks(("A1", "B"), ("A2", "B"))
        assert masks == frozenset({"f"})

    def test_no_mask_back_to_base(self, fig5_checker):
        table, checker = fig5_checker
        assert checker.required_masks(("A2", "B"), ("A1", "B")) == frozenset()

    def test_duplicated_field_requires_mask_both_ways(self, fig5_checker):
        table, checker = fig5_checker
        assert checker.required_masks(("A1", "C"), ("A2", "C")) == frozenset({"g"})
        assert checker.required_masks(("A2", "C"), ("A1", "C")) == frozenset({"g"})

    def test_directional_refinement_of_section_3_3(self, pair_checker):
        """base.Abs! ~> pair.Abs! needs no mask on e (every base Exp can be
        viewed in pair), but pair.Abs! ~> base.Abs! must mask e (a Pair has
        no base view)."""
        table, checker = pair_checker
        assert checker.required_masks(("base", "Abs"), ("pair", "Abs")) == frozenset()
        assert checker.required_masks(("pair", "Abs"), ("base", "Abs")) == frozenset(
            {"e"}
        )

    def test_lenient_ignores_new_fields(self, fig5_checker):
        table, checker = fig5_checker
        assert checker.required_masks(("A1", "B"), ("A2", "B"), lenient=True) == (
            frozenset()
        )
        # duplicated fields stay masked even leniently
        assert checker.required_masks(("A1", "C"), ("A2", "C"), lenient=True) == (
            frozenset({"g"})
        )


class TestTypeShares:
    def test_fully_shared_families(self):
        table = compile_program(FIG123_SOURCE).table
        checker = SharingChecker(table)
        assert checker.type_shares(
            C("AST", "Exp", exact=(1,)), C("ASTDisplay", "Exp", exact=(1,)), frozenset()
        )
        assert checker.type_shares(
            C("ASTDisplay", "Exp", exact=(1,)), C("AST", "Exp", exact=(1,)), frozenset()
        )

    def test_unshared_subclass_breaks_direction(self, pair_checker):
        table, checker = pair_checker
        # pair!.Exp has subclass Pair with no shared base counterpart
        assert not checker.type_shares(
            C("pair", "Exp", exact=(1,)), C("base", "Exp", exact=(1,)), frozenset()
        )

    def test_other_direction_holds(self, pair_checker):
        table, checker = pair_checker
        assert checker.type_shares(
            C("base", "Exp", exact=(1,)), C("pair", "Exp", exact=(1,)), frozenset()
        )

    def test_masks_enable_sharing(self, pair_checker):
        table, checker = pair_checker
        assert checker.type_shares(
            C("pair", "Abs", exact=(1,)),
            C("base", "Abs", exact=(1,)),
            frozenset({"e"}),
        )

    def test_primitives_share_reflexively(self, pair_checker):
        table, checker = pair_checker
        assert checker.type_shares(T.INT, T.INT, frozenset())
        assert not checker.type_shares(T.INT, T.DOUBLE, frozenset())


class TestSharingJudgment:
    def test_subtype_is_a_view_noop(self):
        table = compile_program(FIG123_SOURCE).table
        checker = SharingChecker(table)
        env = Env(table, ("ASTDisplay",))
        env.vars["this"] = C("ASTDisplay")
        holds, how = checker.sharing_judgment(
            env, C("AST", "Value", exact=(2,)), C("AST", "Exp")
        )
        assert holds and how == "subtype"

    def test_constraint_in_scope(self):
        table = compile_program(FIG123_SOURCE).table
        checker = SharingChecker(table)
        env = Env(table, ("ASTDisplay",))
        env.vars["this"] = C("ASTDisplay")
        exp = T.NestedType(
            T.PrefixType(("ASTDisplay",), T.DepType(("this",))), "Exp"
        )
        env.constraints = [(C("AST", "Exp", exact=(1,)), exp)]
        holds, how = checker.sharing_judgment(env, C("AST", "Exp", exact=(1,)), exp)
        assert holds and how == "constraint"

    def test_global_closed_world(self):
        table = compile_program(FIG123_SOURCE).table
        checker = SharingChecker(table)
        env = Env(table, ("ASTDisplay",))
        env.vars["this"] = C("ASTDisplay")
        holds, how = checker.sharing_judgment(
            env,
            C("AST", "Exp", exact=(1,)),
            C("ASTDisplay", "Exp", exact=(1,)),
        )
        assert holds and how == "global"

    def test_strict_mode_rejects_global(self):
        table = compile_program(FIG123_SOURCE).table
        checker = SharingChecker(table)
        env = Env(table, ("ASTDisplay",))
        env.vars["this"] = C("ASTDisplay")
        holds, how = checker.sharing_judgment(
            env,
            C("AST", "Exp", exact=(1,)),
            C("ASTDisplay", "Exp", exact=(1,)),
            allow_global=False,
        )
        assert not holds

    def test_no_judgment_for_unrelated(self):
        table = compile_program(FIG123_SOURCE).table
        checker = SharingChecker(table)
        env = Env(table, ("Main",))
        env.vars["this"] = C("Main")
        holds, _ = checker.sharing_judgment(
            env, C("AST", "Exp", exact=(1,)), C("TreeDisplay", "Node", exact=(1,))
        )
        assert not holds
