"""Small-step machine tests: each reduction rule of Figure 17."""

import pytest

from repro import compile_program
from repro.calculus import (
    Config,
    ECall,
    EField,
    ELet,
    ENew,
    ESeq,
    ESet,
    EValue,
    EVar,
    EView,
    Machine,
    StuckError,
    free_vars,
    rename_var,
)
from repro.lang import types as T
from repro.lang.types import ClassType, View

SOURCE = """
class A {
  class Leaf { }
  class C {
    Leaf child = new Leaf();
    Leaf get() { return child; }
    C self() { return this; }
  }
}
class B extends A {
  class Leaf shares A.Leaf { }
  class C shares A.C {
    Leaf get2() { return child; }
  }
}
"""


@pytest.fixture(scope="module")
def machine():
    table = compile_program(SOURCE).table
    return Machine(table)


def run_to_value(machine, expr, max_steps=1000):
    cfg = Config(expr=expr)
    value = machine.run(cfg, max_steps)
    return value, cfg


A_C = ClassType(("A", "C"))
A_C_EXACT = ClassType(("A", "C"), frozenset({1}))
B_C_EXACT = ClassType(("B", "C"), frozenset({1}))


class TestRules:
    def test_r_alloc_creates_initialized_object(self, machine):
        value, cfg = run_to_value(machine, ENew(A_C))
        assert value.view.path == ("A", "C")
        assert value.view.masks == frozenset()  # initializer removed it
        owner = machine.table.fclass(("A", "C"), "child")
        assert (value.loc, owner, "child") in cfg.heap

    def test_r_var_reads_stack(self, machine):
        cfg = Config(expr=EVar("x"))
        leaf = EValue(99, View(("A", "Leaf")))
        cfg.stack["x"] = leaf
        cfg.refs.append(leaf)
        assert machine.run(cfg) == leaf

    def test_r_var_unbound_is_stuck(self, machine):
        with pytest.raises(StuckError):
            machine.run(Config(expr=EVar("nope")))

    def test_r_let_binds_fresh_variable(self, machine):
        expr = ELet(A_C_EXACT, "x", ENew(A_C), EVar("x"))
        value, cfg = run_to_value(machine, expr)
        assert value.view.path == ("A", "C")

    def test_r_get_returns_field(self, machine):
        expr = EField(ENew(A_C), "child")
        value, cfg = run_to_value(machine, expr)
        assert value.view.path == ("A", "Leaf")

    def test_r_get_applies_implicit_view_change(self, machine):
        # reading child through the B view yields a B.Leaf view
        expr = EField(EView(B_C_EXACT, ENew(A_C)), "child")
        value, cfg = run_to_value(machine, expr)
        assert value.view.path == ("B", "Leaf")

    def test_r_set_updates_heap(self, machine):
        expr = ELet(
            A_C_EXACT,
            "x",
            ENew(A_C),
            ESeq(ESet(EVar("x"), "child", ENew(ClassType(("A", "Leaf")))), EVar("x")),
        )
        value, cfg = run_to_value(machine, expr)
        owner = machine.table.fclass(("A", "C"), "child")
        stored = cfg.heap[(value.loc, owner, "child")]
        assert stored.view.path == ("A", "Leaf")

    def test_r_call_dispatches_on_view(self, machine):
        base = ECall(ENew(A_C), "get", ())
        value, _ = run_to_value(machine, base)
        assert value.view.path == ("A", "Leaf")

    def test_r_call_after_view_change_uses_derived_method(self, machine):
        expr = ECall(EView(B_C_EXACT, ENew(A_C)), "get2", ())
        value, _ = run_to_value(machine, expr)
        assert value.view.path == ("B", "Leaf")

    def test_missing_method_in_base_view_is_stuck(self, machine):
        with pytest.raises(StuckError):
            run_to_value(machine, ECall(ENew(A_C), "get2", ()))

    def test_r_seq_discards_first(self, machine):
        expr = ESeq(ENew(A_C), ENew(ClassType(("A", "Leaf"))))
        value, _ = run_to_value(machine, expr)
        assert value.view.path == ("A", "Leaf")

    def test_r_view_preserves_location(self, machine):
        expr = ELet(
            A_C_EXACT,
            "x",
            ENew(A_C),
            ESeq(EView(B_C_EXACT, EVar("x")), EVar("x")),
        )
        value, cfg = run_to_value(machine, expr)
        views = {
            ref.view.path for ref in cfg.refs if ref.loc == value.loc
        }
        assert ("A", "C") in views and ("B", "C") in views

    def test_view_to_unshared_is_stuck(self, machine):
        table = compile_program(
            "class A { class C { } } class B extends A { class C { } }"
        ).table
        m = Machine(table)
        with pytest.raises(StuckError):
            run_to_value(m, EView(ClassType(("B", "C"), frozenset({1})), ENew(ClassType(("A", "C")))))

    def test_reference_set_grows(self, machine):
        _, cfg = run_to_value(machine, ENew(A_C))
        assert len(cfg.refs) >= 1

    def test_self_returns_same_location(self, machine):
        expr = ECall(ENew(A_C), "self", ())
        value, cfg = run_to_value(machine, expr)
        assert value.view.path == ("A", "C")


class TestSyntaxHelpers:
    def test_rename_var(self):
        e = ECall(EVar("x"), "m", (EVar("y"),))
        renamed = rename_var(e, "x", "z")
        assert free_vars(renamed) == ["z", "y"]

    def test_rename_respects_let_shadowing(self):
        e = ELet(A_C, "x", EVar("x"), EVar("x"))
        renamed = rename_var(e, "x", "z")
        assert isinstance(renamed.init, EVar) and renamed.init.name == "z"
        assert isinstance(renamed.body, EVar) and renamed.body.name == "x"

    def test_rename_types_in_new(self):
        dep = T.NestedType(T.PrefixType(("A",), T.DepType(("x",))), "C")
        renamed = rename_var(ENew(dep), "x", "y")
        assert T.paths_in(renamed.type) == frozenset({("y",)})

    def test_free_vars_nested(self):
        e = ESeq(EVar("a"), ELet(A_C, "b", EVar("c"), EVar("b")))
        assert free_vars(e) == ["a", "c"]
