"""Class-table tests: implicit classes, further binding, prefix types,
member lookup, fclass, sharing groups, adapts."""

import pytest

from repro import compile_program
from repro.lang import types as T
from repro.lang.classtable import JnsError, ResolveError
from repro.lang.types import ClassType, View

from conftest import FIG123_SOURCE, FIG5_SOURCE


@pytest.fixture(scope="module")
def t123():
    return compile_program(FIG123_SOURCE).table


@pytest.fixture(scope="module")
def t5():
    return compile_program(FIG5_SOURCE).table


class TestExistence:
    def test_explicit_class_exists(self, t123):
        assert t123.class_exists(("AST", "Binary"))

    def test_implicit_class_exists(self, t123):
        # GUI classes are implicit members of ASTDisplay (Section 2.1)
        assert t123.class_exists(("ASTDisplay", "Node"))
        assert t123.class_exists(("ASTDisplay", "Leaf"))
        assert not t123.is_explicit(("ASTDisplay", "Node"))

    def test_nonexistent(self, t123):
        assert not t123.class_exists(("AST", "Nope"))
        assert not t123.class_exists(("Nope",))

    def test_root_exists(self, t123):
        assert t123.class_exists(())

    def test_member_names_include_inherited(self, t123):
        names = set(t123.member_names(("ASTDisplay",)))
        assert {"Exp", "Value", "Binary", "Node", "Composite", "Leaf"} <= names

    def test_all_class_paths_include_implicit(self, t123):
        paths = set(t123.all_class_paths())
        assert ("ASTDisplay", "Composite") in paths

    def test_duplicate_class_rejected(self):
        with pytest.raises(ResolveError):
            compile_program("class A { } class A { }")


class TestInheritance:
    def test_declared_superclass(self, t123):
        assert t123.inherits(("AST", "Binary"), ("AST", "Exp"))

    def test_further_binding(self, t123):
        assert t123.inherits(("ASTDisplay", "Binary"), ("AST", "Binary"))

    def test_late_bound_superclass(self, t123):
        # ASTDisplay.Binary extends ASTDisplay.Exp, not AST.Exp (Section 2.1)
        parents = t123.parents(("ASTDisplay", "Binary"))
        assert ("ASTDisplay", "Exp") in parents
        assert ("ASTDisplay", "Composite") in parents
        assert ("AST", "Binary") in parents

    def test_implicit_class_parents(self, t123):
        # implicit ASTDisplay.Composite further binds TreeDisplay.Composite
        parents = t123.parents(("ASTDisplay", "Composite"))
        assert ("TreeDisplay", "Composite") in parents
        assert ("ASTDisplay", "Node") in parents

    def test_ancestors_reflexive(self, t123):
        assert t123.ancestors(("AST",))[0] == ("AST",)

    def test_family_inheritance(self, t123):
        assert t123.inherits(("ASTDisplay",), ("AST",))
        assert t123.inherits(("ASTDisplay",), ("TreeDisplay",))

    def test_transitive(self, t123):
        assert t123.inherits(("ASTDisplay", "Value"), ("TreeDisplay", "Node"))

    def test_not_inherits_sibling(self, t123):
        assert not t123.inherits(("AST", "Value"), ("AST", "Binary"))

    def test_cyclic_inheritance_detected(self):
        with pytest.raises((ResolveError, JnsError)):
            compile_program("class A extends B { } class B extends A { }")

    def test_longer_cycle_detected(self):
        with pytest.raises((ResolveError, JnsError)):
            compile_program(
                "class A extends B { } class B extends C { } class C extends A { }"
            )


class TestPrefix:
    def test_prefix_of_nested(self, t123):
        assert t123.prefix_of(("AST",), ("AST", "Binary")) == ("AST",)

    def test_prefix_of_derived(self, t123):
        # prefix(AST, ASTDisplay.Binary) = ASTDisplay (Section 2.1)
        assert t123.prefix_of(("AST",), ("ASTDisplay", "Binary")) == ("ASTDisplay",)

    def test_prefix_of_family_itself(self, t123):
        assert t123.prefix_of(("AST",), ("ASTDisplay",)) == ("ASTDisplay",)

    def test_prefix_via_other_parent(self, t123):
        assert t123.prefix_of(("TreeDisplay",), ("ASTDisplay", "Value")) == (
            "ASTDisplay",
        )

    def test_prefix_missing(self, t123):
        with pytest.raises(ResolveError):
            t123.prefix_of(("TreeDisplay",), ("AST", "Binary"))


class TestTypeEvaluation:
    def test_eval_late_bound_name(self, t123):
        # `Exp` inside AST evaluated for an ASTDisplay.Binary view
        t = T.NestedType(T.PrefixType(("AST",), T.DepType(("this",))), "Exp")
        out = t123.eval_type(t, lambda p: View(("ASTDisplay", "Binary")))
        assert out == ClassType(("ASTDisplay", "Exp"), frozenset({1}))

    def test_eval_same_family(self, t123):
        t = T.NestedType(T.PrefixType(("AST",), T.DepType(("this",))), "Exp")
        out = t123.eval_type(t, lambda p: View(("AST", "Value")))
        assert out == ClassType(("AST", "Exp"), frozenset({1}))

    def test_eval_static(self, t123):
        t = T.NestedType(T.PrefixType(("AST",), T.DepType(("this",))), "Value")
        out = t123.eval_type_static(t, this=("ASTDisplay", "Binary"))
        assert out.path == ("ASTDisplay", "Value")

    def test_eval_masked(self, t123):
        t = T.masked(ClassType(("AST", "Binary")), "l")
        out = t123.eval_type(t, lambda p: View(("AST",)))
        assert out.masks == frozenset({"l"})

    def test_eval_unknown_member(self, t123):
        t = T.NestedType(T.PrefixType(("AST",), T.DepType(("this",))), "Missing")
        with pytest.raises(ResolveError):
            t123.eval_type(t, lambda p: View(("AST",)))


class TestMemberLookup:
    def test_find_field(self, t123):
        owner, decl = t123.find_field(("ASTDisplay", "Binary"), "l")
        assert owner == ("AST", "Binary")
        assert decl.name == "l"

    def test_find_field_missing(self, t123):
        assert t123.find_field(("AST", "Exp"), "nope") is None

    def test_find_method_own(self, t123):
        owner, decl = t123.find_method(("AST", "Value"), "eval")
        assert owner == ("AST", "Value")

    def test_find_method_inherited(self, t123):
        owner, decl = t123.find_method(("ASTDisplay", "Leaf"), "display")
        assert owner == ("TreeDisplay", "Node")

    def test_override_beats_base(self, t123):
        owner, decl = t123.find_method(("ASTDisplay", "Value"), "display")
        assert owner == ("ASTDisplay", "Value")

    def test_family_update_propagates_to_implicit(self):
        # B.D overrides m; implicit B.C (extends D in A) must see B.D's m
        src = """
        class A {
          class D { int m() { return 1; } }
          class C extends D { }
        }
        class B extends A {
          class D { int m() { return 2; } }
        }
        class Main { int main() { return new B.C().m(); } }
        """
        program = compile_program(src)
        owner, _ = program.table.find_method(("B", "C"), "m")
        assert owner == ("B", "D")
        interp = program.interp()
        ref = interp.new_instance(("Main",), ())
        assert interp.call_method(ref, "main", []) == 2

    def test_find_ctor_by_arity(self, t123):
        found = t123.find_ctor(("AST", "Binary"), 2)
        assert found is not None
        assert t123.find_ctor(("AST", "Binary"), 3) is None

    def test_ctor_inherited_into_derived_family(self, t123):
        found = t123.find_ctor(("ASTDisplay", "Binary"), 2)
        assert found is not None

    def test_all_fields_no_duplicates(self, t123):
        fields = t123.all_fields(("ASTDisplay", "Binary"))
        names = [d.name for _, d in fields]
        assert len(names) == len(set(names))


class TestSharing:
    def test_shared_with_declared(self, t123):
        assert t123.shared_with(("AST", "Exp"), ("ASTDisplay", "Exp"))

    def test_sharing_symmetric(self, t123):
        assert t123.shared_with(("ASTDisplay", "Value"), ("AST", "Value"))

    def test_not_shared_without_declaration(self, t123):
        assert not t123.shared_with(("AST", "Exp"), ("TreeDisplay", "Node"))

    def test_subclasses_not_automatically_shared(self):
        src = """
        class A { class C { } class Sub extends C { } }
        class B extends A { class C shares A.C { } }
        """
        table = compile_program(src).table
        assert table.shared_with(("A", "C"), ("B", "C"))
        assert not table.shared_with(("A", "Sub"), ("B", "Sub"))

    def test_sharing_group(self, t123):
        group = set(t123.sharing_group(("AST", "Exp")))
        assert group == {("AST", "Exp"), ("ASTDisplay", "Exp")}

    def test_share_target(self, t123):
        assert t123.share_target(("ASTDisplay", "Exp")) == ("AST", "Exp")
        assert t123.share_target(("AST", "Exp")) == ("AST", "Exp")

    def test_share_masks_declared(self, t5):
        assert t5.share_masks(("A2", "C")) == frozenset({"g"})

    def test_adapts_creates_sharing(self):
        src = """
        class A { class C { } class D { } }
        class B extends A adapts A { }
        """
        table = compile_program(src).table
        assert table.shared_with(("B", "C"), ("A", "C"))
        assert table.shared_with(("B", "D"), ("A", "D"))

    def test_transitive_sharing_through_base(self):
        src = """
        class A { class C { } }
        class B1 extends A { class C shares A.C { } }
        class B2 extends A { class C shares A.C { } }
        """
        table = compile_program(src).table
        assert table.shared_with(("B1", "C"), ("B2", "C"))


class TestFclass:
    def test_unshared_class_is_its_own_fclass(self, t5):
        assert t5.fclass(("A1", "B"), "b0") == ("A1", "B")

    def test_shared_field_uses_base_copy(self, t5):
        assert t5.fclass(("A2", "B"), "b0") == ("A1", "B")

    def test_new_field_uses_own_copy(self, t5):
        assert t5.fclass(("A2", "B"), "f") == ("A2", "B")

    def test_masked_field_is_duplicated(self, t5):
        # g is masked in the shares clause: each family has its own copy
        assert t5.fclass(("A2", "C"), "g") == ("A2", "C")
        assert t5.fclass(("A1", "C"), "g") == ("A1", "C")

    def test_fig123_children_shared(self, t123):
        assert t123.fclass(("ASTDisplay", "Binary"), "l") == ("AST", "Binary")


class TestViewOf:
    def test_view_of_shared(self, t123):
        v = t123.view_of(View(("AST", "Value")), ClassType(("ASTDisplay", "Exp"), frozenset({1})))
        assert v.path == ("ASTDisplay", "Value")

    def test_view_of_noop_conforming(self, t123):
        v = t123.view_of(View(("AST", "Value")), ClassType(("AST", "Exp")))
        assert v.path == ("AST", "Value")

    def test_view_of_sets_masks(self, t5):
        v = t5.view_of(
            View(("A1", "B")),
            T.masked(ClassType(("A2", "B"), frozenset({2})), "f"),
        )
        assert v.path == ("A2", "B")
        assert v.masks == frozenset({"f"})

    def test_view_of_unshared_fails(self, t123):
        with pytest.raises(JnsError):
            t123.view_of(
                View(("AST", "Value")), ClassType(("TreeDisplay", "Leaf"), frozenset({2}))
            )
