"""Edit-differential oracle: incremental re-checking must be
*indistinguishable* from checking from scratch (ISSUE 7 acceptance).

Every sequence of edits applied through ``IncrementalChecker.apply_edit``
must yield byte-identical diagnostics to ``check_source`` on the final
text — including programs the edits break (parse errors, resolve
errors, type errors) and then repair.  A seeded generator walks random
edit chains over a corpus of family programs; each step compares the
full diagnostic list field-by-field.
"""

from __future__ import annotations

import random

import pytest

from repro.api import check_source
from repro.lang.incremental import IncrementalChecker
from repro.programs.corona.source import SOURCE as CORONA

FAMILY = """\
class AST {
  class Exp {
    int eval() { return 0; }
  }
  class Value extends Exp {
    int v;
    int eval() { return v; }
  }
}
class Display extends AST shares AST {
  class Exp {
    String show() { return "?"; }
  }
}
"""

SIMPLE = """\
class app {
  class A {
    int x;
    int get() { return x; }
    int dbl() { return get() + get(); }
  }
  class B extends A {
    int trip() { return get() + dbl(); }
  }
}
"""

#: (pattern, replacement) pools; some introduce errors on purpose.
EDITS = [
    ("return x;", "return x + 1;"),
    ("return x + 1;", "return x;"),
    ("get() + get()", "get() * 2"),
    ("get() * 2", "get() + get()"),
    ("int get()", "String get()"),  # type error downstream
    ("String get()", "int get()"),
    ("return v;", "return v + 0;"),
    ("return 0;", "return 1;"),
    ("return 1;", "return 0;"),
    ('return "?";', 'return "!";'),
    ("int eval()", "int eval( )"),
    ("return x;", "return nosuch;"),  # resolve error
    ("return nosuch;", "return x;"),
    ("int trip()", "int trip(int pad)"),
    ("int trip(int pad)", "int trip()"),
    ("class B extends A {", "class B {"),  # structural
    ("class B {", "class B extends A {"),
    ("int dbl() {", "int dbl() { int t = 1;"),  # parse error (brace)
]


def _diag_key(diags):
    return [
        (d.code, d.severity, d.message, repr(d.span), d.where, tuple(d.notes))
        for d in diags
    ]


def _assert_identical(inc, source, context):
    got = _diag_key(inc.check().diagnostics)
    want = _diag_key(check_source(source, file="t.jns").diagnostics)
    assert got == want, f"diverged after {context}: {got} != {want}"


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("base", [SIMPLE, FAMILY], ids=["simple", "family"])
def test_random_edit_chain_matches_scratch(base, seed):
    rng = random.Random(seed)
    inc = IncrementalChecker(base, file="t.jns")
    _assert_identical(inc, base, "initial build")
    source = base
    for step in range(12):
        old, new = rng.choice(EDITS)
        if old not in source:
            continue
        source = source.replace(old, new, 1)
        stats = inc.apply_edit(source)
        _assert_identical(
            inc, source, f"step {step} {old!r}->{new!r} ({stats['strategy']})"
        )


def test_incremental_strategy_actually_used():
    """Guard against the differential passing because everything falls
    back to scratch: body edits on the corpus must go incremental."""
    inc = IncrementalChecker(SIMPLE, file="t.jns")
    inc.check()
    stats = inc.apply_edit(SIMPLE.replace("return x;", "return x + 1;"))
    assert stats["strategy"] == "incremental"


def test_corona_single_edit_differential():
    """The benchmark scenario itself: one body edit inside the CorONA
    tower re-checks incrementally and matches scratch byte-for-byte."""
    inc = IncrementalChecker(CORONA, file="corona.jns")
    _assert_identical(inc, CORONA, "initial")
    edited = CORONA.replace("count = count + 1;", "count = count + 1 + 0;")
    assert edited != CORONA
    stats = inc.apply_edit(edited)
    assert stats["strategy"] == "incremental"
    assert stats["dirty"] == ["corona.Store"]
    _assert_identical(inc, edited, "corona body edit")


def test_strict_sharing_differential():
    inc = IncrementalChecker(FAMILY, file="t.jns", strict_sharing=True)
    got = _diag_key(inc.check().diagnostics)
    want = _diag_key(
        check_source(FAMILY, file="t.jns", strict_sharing=True).diagnostics
    )
    assert got == want
    edited = FAMILY.replace('return "?";', 'return "!";')
    inc.apply_edit(edited)
    got = _diag_key(inc.check().diagnostics)
    want = _diag_key(
        check_source(edited, file="t.jns", strict_sharing=True).diagnostics
    )
    assert got == want


def test_explain_payload_identical_after_edit_chain():
    """The acceptance also covers explain trees: a derivation requested
    through a long-lived session after edits must be byte-identical to
    one computed against the final text from scratch."""
    import json

    from repro.lang.explain import run_explain
    from repro.serve import CheckService

    svc = CheckService()
    svc.handle({"op": "open", "session": "s", "source": SIMPLE})
    source = SIMPLE
    for i in range(1, 4):
        source = source.replace("return x;", f"return x + {i};").replace(
            f"return x + {i - 1};", "return x;"
        )
        svc.handle({"op": "edit", "session": "s", "source": source})
    resp = svc.handle(
        {"op": "explain", "session": "s", "query": "subtype app.B app.A"}
    )
    assert resp["ok"]
    scratch = run_explain(source, "t.jns", "subtype app.B app.A")
    assert json.dumps(resp["explain"], sort_keys=True) == json.dumps(
        scratch.payload, sort_keys=True
    )
