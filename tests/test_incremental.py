"""The fine-grained incremental checker (ISSUE 7 tentpole).

Covers the chunker (two-level class regions with context fragments),
the three-signature edit classifier (struct / api / body), the
scratch-fallback taxonomy, the incremental accounting, and — most
importantly — that a body-only graft is visible to *existing* runtime
consumers (interpreters built before the edit), since the splice keeps
the resolved declaration objects that live caches retained.
"""

from __future__ import annotations

import pytest

from repro.lang.incremental import (
    CTX,
    NESTED,
    TOP,
    IncrementalChecker,
    class_sigs,
    split_chunks,
)
from repro.runtime.interp import Interp
from repro.source.parser import parse_program

BASE = """\
class app {
  class A {
    int x;
    int get() { return x; }
  }
  class B extends A {
    int twice() { return get() + get(); }
  }
}
"""

FLAT = """\
class Lib {
  int helper() { return 7; }
}
class Use extends Lib {
  int call() { return helper(); }
}
"""


# ----------------------------------------------------------------------
# chunking
# ----------------------------------------------------------------------


def test_split_chunks_nested():
    chunks = split_chunks(BASE)
    assert chunks is not None
    kinds = [c.kind for c in chunks]
    assert kinds == [CTX, NESTED, NESTED, CTX]
    # reassembly is exact
    assert "".join(c.text for c in chunks) == BASE
    assert [c.start_line for c in chunks] == [1, 2, 6, 9]


def test_split_chunks_flat():
    chunks = split_chunks(FLAT)
    assert chunks is not None
    assert [c.kind for c in chunks] == [TOP, TOP]
    assert "".join(c.text for c in chunks) == FLAT


def test_split_chunks_no_classes():
    assert split_chunks("// just a comment\n") is None


# ----------------------------------------------------------------------
# signatures
# ----------------------------------------------------------------------


def _decl(src, name="A"):
    unit = parse_program(src)
    for d in unit.classes[0].members:
        if getattr(d, "name", None) == name:
            return d
    raise AssertionError(name)


def test_sig_body_only_change():
    a = _decl(BASE)
    b = _decl(BASE.replace("return x;", "return x + 1;"))
    sa, sb = class_sigs(a), class_sigs(b)
    assert sa.struct == sb.struct
    assert sa.api == sb.api
    assert sa.body != sb.body


def test_sig_api_change():
    a = _decl(BASE)
    b = _decl(BASE.replace("int get()", "String get()"))
    sa, sb = class_sigs(a), class_sigs(b)
    assert sa.struct == sb.struct
    assert sa.api != sb.api


def test_sig_struct_change():
    a = _decl(BASE)
    b = _decl(BASE.replace("int x;", "int x;\n    int y;"))
    assert class_sigs(a).struct != class_sigs(b).struct


def test_sig_position_shift_is_body_level_only():
    # A pure line shift below a class must not disturb *it*; positions
    # live in the api/body signatures of the shifted class itself.
    a = _decl(BASE, "B")
    b = _decl("\n" + BASE, "B")
    assert class_sigs(a).struct == class_sigs(b).struct
    assert class_sigs(a).api != class_sigs(b).api  # pos moved


# ----------------------------------------------------------------------
# edit strategies
# ----------------------------------------------------------------------


def _edited(src, old, new):
    inc = IncrementalChecker(src, file="t.jns")
    inc.check()
    stats = inc.apply_edit(src.replace(old, new))
    return inc, stats


@pytest.mark.parametrize(
    "old,new,dirty",
    [
        ("return x;", "return x + 1;", ["app.A"]),
        ("int get()", "String get()", ["app.A"]),
        ("return get() + get();", "return get();", ["app.B"]),
    ],
)
def test_incremental_edit_dirty_set(old, new, dirty):
    _, stats = _edited(BASE, old, new)
    assert stats["strategy"] == "incremental"
    assert stats["dirty"] == dirty


@pytest.mark.parametrize(
    "old,new,reason",
    [
        ("int x;", "int x;\n    int y;", "structural"),  # field added
        ("class B extends A {", "class C {}\n  class B extends A {",
         "reshape"),  # class count changed
        ("return x;", "return x", "parse-error"),
        ("class app {", "abstract class app {", "wrapper-edit"),
    ],
)
def test_scratch_fallback_reasons(old, new, reason):
    _, stats = _edited(BASE, old, new)
    assert stats["strategy"] == "scratch"
    assert stats["reason"] == reason


def test_noop_edit():
    inc = IncrementalChecker(BASE, file="t.jns")
    inc.check()
    stats = inc.apply_edit(BASE)
    assert stats["strategy"] == "noop"


def test_edit_after_parse_error_rebuilds():
    bad = BASE.replace("return x;", "return x")
    inc = IncrementalChecker(bad, file="t.jns")
    assert inc.check().has_errors
    stats = inc.apply_edit(BASE)
    assert stats["strategy"] == "scratch"
    assert not inc.check().has_errors


def test_class_rename_falls_back():
    _, stats = _edited(
        BASE.replace("extends A", ""), "class A {", "class AA {"
    )
    assert stats["strategy"] == "scratch"
    assert stats["reason"] == "classset"


# ----------------------------------------------------------------------
# accounting
# ----------------------------------------------------------------------


def test_accounting_reuse_and_recompute():
    inc = IncrementalChecker(BASE, file="t.jns")
    inc.check()
    inc.apply_edit(BASE.replace("return x;", "return x + 1;"))
    inc.check()
    acct = inc.last_stats["check"]
    # A touches only itself; B green-revalidates (A's interface is
    # unchanged), nothing is served blind from cache on the first
    # post-edit check.
    assert acct["recomputed"] == 1
    assert acct["revalidated"] >= 1
    # A second check with no edit reuses everything.
    inc.check()
    acct = inc.last_stats["check"]
    assert acct["recomputed"] == 0
    assert acct["revalidated"] == 0
    assert acct["reused"] >= 2


def test_stats_monotonic_across_edits():
    """CacheStats totals must keep absorbing across incremental edits —
    an invalidation never makes the observed hit totals go backwards."""
    inc = IncrementalChecker(BASE, file="t.jns")
    inc.check()
    seen = []
    src = BASE
    for i in range(3):
        src = src.replace("+ get()", f"+ get() + {i}")
        inc.apply_edit(src)
        inc.check()
        stats = inc.table.queries.stats()
        seen.append((stats.hits, stats.misses))
    for (h0, m0), (h1, m1) in zip(seen, seen[1:]):
        assert h1 >= h0 and m1 >= m0


# ----------------------------------------------------------------------
# runtime visibility of grafted bodies
# ----------------------------------------------------------------------

RUNTIME = """\
class app {
  class Greeter {
    String greet() { return "hello"; }
  }
  class Main {
    String run() {
      Greeter g = new Greeter();
      return g.greet();
    }
  }
}
"""


def _run(interp):
    obj = interp.new_instance(("app", "Main"), [])
    return interp.call_method(obj, "run", [])


def test_body_graft_reaches_existing_interpreter():
    inc = IncrementalChecker(RUNTIME, file="t.jns")
    assert not inc.check().has_errors
    live = Interp(inc.table)
    assert _run(live) == "hello"
    stats = inc.apply_edit(RUNTIME.replace('"hello"', '"howdy"'))
    assert stats["strategy"] == "incremental"
    assert not inc.check().has_errors
    # Both a fresh interpreter and the one built before the edit must
    # observe the new body: the splice grafts it into the retained
    # (cached) member objects and retires their compiled bodies.
    assert _run(Interp(inc.table)) == "howdy"
    assert _run(live) == "howdy"


def test_api_edit_reaches_existing_interpreter():
    inc = IncrementalChecker(RUNTIME, file="t.jns")
    assert not inc.check().has_errors
    live = Interp(inc.table)
    assert _run(live) == "hello"
    edited = RUNTIME.replace("String greet()", "String yo()").replace(
        "g.greet()", "g.yo()"
    )
    stats = inc.apply_edit(edited)
    assert stats["strategy"] == "incremental"
    assert sorted(stats["dirty"]) == ["app.Greeter", "app.Main"]
    assert not inc.check().has_errors
    assert _run(live) == "hello"  # body of Main changed too; new name works


def test_subclass_rtclass_evicted_on_superclass_edit():
    inc = IncrementalChecker(BASE, file="t.jns")
    assert not inc.check().has_errors
    live = Interp(inc.table)
    obj = live.new_instance(("app", "B"), [])
    assert live.call_method(obj, "twice", []) == 0
    # change A.get's body; B inherits it, so B's synthesized runtime
    # class must be evicted even though only A is dirty
    stats = inc.apply_edit(BASE.replace("return x;", "return x + 21;"))
    assert stats["dirty"] == ["app.A"]
    assert not inc.check().has_errors
    obj2 = live.new_instance(("app", "B"), [])
    assert live.call_method(obj2, "twice", []) == 42
