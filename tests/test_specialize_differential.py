"""Four-way differential for the AOT specialization pass and the
codegen tier above it: for randomized programs, the tree-walking
interpreter, the closure compiler, the specialized backend (slotted
layouts, register frames, devirtualization), and the codegen backend
(emitted + ``compile()``d Python per specialized method body) must agree
on every observable — run result, printed output, and runtime error
codes — in every mode. Diagnostics come from the static pipeline, which
neither pass touches, and are asserted stable as a guard against
accidental coupling.

Tier-2: ``HYPOTHESIS_PROFILE=fuzz pytest -m fuzz`` raises the example
budget; the default profile keeps this cheap enough for tier-1.
"""

import pytest
from hypothesis import given, strategies as st

from repro import JnsError, check_source, clear_caches, compile_program

from conftest import FIG123_SOURCE, FIG5_SOURCE


@pytest.fixture(autouse=True)
def _caches_restored():
    yield
    clear_caches()


@st.composite
def probe_programs(draw):
    """Two-family programs with randomized sharing structure, masked and
    duplicated fields, sealed and overridden methods — the shapes the
    specializer treats differently (shared slot vs per-copy slot, devirt
    vs inline cache, view-change elision vs adaptation)."""
    x0 = draw(st.integers(0, 40))
    bonus = draw(st.integers(1, 9))
    loops = draw(st.integers(1, 4))
    use_b = draw(st.booleans())        # subclass B in the base family
    share_b = use_b and draw(st.booleans())
    override_get = draw(st.booleans())  # unseals get() when drawn
    new_field = draw(st.booleans())    # derived A introduces y (needs mask)
    do_view = draw(st.booleans())      # Main performs a view change
    write_y = new_field and draw(st.booleans())  # unmask then read back
    call_tag = draw(st.booleans())     # tag() stays sealed: devirt target

    b_base = "class B extends A { int get() { return x + 100; } }" if use_b else ""
    b_derived = "class B shares F0.B { }" if share_b else ""
    derived_get = f"int get() {{ return x + {bonus}; }}" if override_get else ""
    y_decl = "int y;" if new_field else ""
    mask = "\\y" if new_field else ""

    view_block = ""
    if do_view:
        y_use = "v.y = i; s = s + v.y;" if write_y else ""
        view_block = f"F1!.A{mask} v = (view F1!.A{mask})a; s = s + v.get(); {y_use}"
    tag_block = "s = s + a.tag();" if call_tag else ""

    src = f"""
class F0 {{
  class A {{
    int x = {x0};
    int get() {{ return x; }}
    int tag() {{ return 7; }}
  }}
  {b_base}
}}
class F1 extends F0 {{
  class A shares F0.A {{
    {y_decl}
    {derived_get}
  }}
  {b_derived}
}}
class Main {{
  int main() {{
    int s = 0;
    for (int i = 0; i < {loops}; i++) {{
      F0!.A a = new F0.A();
      s = s + a.get();
      {tag_block}
      {view_block}
    }}
    return s;
  }}
}}
"""
    return src


BACKENDS = (
    ("walker", {}),
    ("compiled", {"compiled": True}),
    ("specialized", {"specialized": True}),
    ("codegen", {"backend": "codegen"}),
)


def _observe(src, backend_kw):
    """Diagnostics, compile verdict, and run result + output per mode for
    one backend configuration."""
    sink = check_source(src)
    outcomes = {
        "diagnostics": tuple((d.code, d.severity, d.message) for d in sink)
    }
    try:
        program = compile_program(src)
        outcomes["check"] = "ok"
    except JnsError as exc:
        outcomes["check"] = (exc.code, str(exc))
        return outcomes
    for mode in ("jns", "jx_cl", "java"):
        interp = program.interp(mode=mode, **backend_kw)
        try:
            result = interp.run("Main.main")
            outcomes[mode] = (result, tuple(interp.output))
        except JnsError as exc:
            outcomes[mode] = ("error", exc.code)
    return outcomes


@pytest.mark.fuzz
@given(probe_programs())
def test_specialization_does_not_change_observables(src):
    clear_caches()
    observed = {
        label: _observe(src, kw) for label, kw in BACKENDS
    }
    assert observed["walker"] == observed["compiled"]
    assert observed["walker"] == observed["specialized"]
    assert observed["walker"] == observed["codegen"]


@pytest.mark.fuzz
@given(probe_programs())
def test_unspecialized_escape_hatch_restores_baseline(src):
    """Running specialized first must not poison the program for a later
    unspecialized run (mirrors `repro run --no-specialize`)."""
    clear_caches()
    try:
        program = compile_program(src)
    except JnsError:
        return
    def run(**kw):
        interp = program.interp(mode="jns", **kw)
        try:
            return interp.run("Main.main"), tuple(interp.output)
        except JnsError as exc:
            return ("error", exc.code)
    baseline = run()
    specialized = run(specialized=True)
    codegen = run(backend="codegen")
    after = run()
    assert specialized == baseline
    assert codegen == baseline
    assert after == baseline


def test_fixture_corpus_four_way_agreement():
    """Deterministic tier-1 anchor: the paper's figure programs agree
    across all four backends without relying on hypothesis."""
    for src, entry in (
        (FIG123_SOURCE, "Main.evalSample"),
        (FIG123_SOURCE, "Main.showSample"),
        (FIG5_SOURCE + "class Main { int main() { return new A1.D().tag() + new A2.E().tag(); } }",
         "Main.main"),
    ):
        program = compile_program(src)
        results = []
        for _, kw in BACKENDS:
            interp = program.interp(mode="jns", **kw)
            results.append((interp.run(entry), tuple(interp.output)))
        assert results[0] == results[1] == results[2] == results[3]
