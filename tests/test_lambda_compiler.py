"""Lambda compiler tests (Section 7.3, Figures 6, 7, 20)."""

import pytest

from repro.programs.lambdac import SOURCE, LambdaCompiler, program


@pytest.fixture(scope="module")
def lc():
    return LambdaCompiler()


class TestStructure:
    """The family structure of Figure 20."""

    def test_family_inheritance_edges(self):
        table = program().table
        assert table.inherits(("sum",), ("base",))
        assert table.inherits(("pair",), ("base",))
        assert table.inherits(("sumpair",), ("sum",))
        assert table.inherits(("sumpair",), ("pair",))

    def test_sharing_edges(self):
        table = program().table
        for fam in ("lam", "sum", "pair", "sumpair"):
            for cls in ("Exp", "Var", "Abs", "App"):
                assert table.shared_with((fam, cls), ("base", cls)), (fam, cls)

    def test_transitive_sharing_between_derived_families(self):
        table = program().table
        assert table.shared_with(("sum", "Abs"), ("pair", "Abs"))
        assert table.shared_with(("sumpair", "Var"), ("sum", "Var"))

    def test_new_node_classes_not_shared(self):
        table = program().table
        assert table.sharing_group(("pair", "Pair")) == (("pair", "Pair"),)
        assert ("sum", "Case") not in table.sharing_group(("base", "Exp"))

    def test_sumpair_has_no_translation_code(self):
        """'The code of sumpair just sets up the sharing relationships,
        without a single line of translation code.'"""
        info = program().table.explicit[("sumpair",)]
        assert info.decl.members == []

    def test_sumpair_inherits_all_node_kinds(self):
        table = program().table
        names = set(table.member_names(("sumpair",)))
        assert {"Var", "Abs", "App", "Pair", "Fst", "Snd", "Inl", "Inr", "Case"} <= names


class TestPairTranslation:
    def test_pair_and_fst(self, lc):
        term = lc.fst("pair", lc.pair("pair", lc.var("pair", "a"), lc.var("pair", "b")))
        out = lc.normalize(lc.translate("pair", term))
        assert lc.show(out) == "a"

    def test_snd(self, lc):
        term = lc.snd("pair", lc.pair("pair", lc.var("pair", "a"), lc.var("pair", "b")))
        assert lc.show(lc.normalize(lc.translate("pair", term))) == "b"

    def test_nested_pairs(self, lc):
        inner = lc.pair("pair", lc.var("pair", "a"), lc.var("pair", "b"))
        term = lc.fst("pair", lc.fst("pair", lc.pair("pair", inner, lc.var("pair", "c"))))
        assert lc.show(lc.normalize(lc.translate("pair", term))) == "a"

    def test_translation_eliminates_pair_nodes(self, lc):
        term = lc.pair("pair", lc.var("pair", "a"), lc.var("pair", "b"))
        out = lc.translate("pair", term)
        # result lives entirely in the base family
        assert out.view.path[0] == "base"


class TestSumTranslation:
    def test_case_inl(self, lc):
        term = lc.case(
            "sum",
            lc.inl("sum", lc.var("sum", "v")),
            "x", lc.var("sum", "x"),
            "y", lc.var("sum", "other"),
        )
        assert lc.show(lc.normalize(lc.translate("sum", term))) == "v"

    def test_case_inr(self, lc):
        term = lc.case(
            "sum",
            lc.inr("sum", lc.var("sum", "v")),
            "x", lc.var("sum", "no"),
            "y", lc.var("sum", "y"),
        )
        assert lc.show(lc.normalize(lc.translate("sum", term))) == "v"


class TestComposedCompiler:
    """sums AND pairs at once, through sumpair (zero new code)."""

    def test_mixed_term(self, lc):
        F = "sumpair"
        term = lc.case(
            F,
            lc.inl(F, lc.var(F, "a")),
            "l", lc.fst(F, lc.pair(F, lc.var(F, "b"), lc.var(F, "c"))),
            "r", lc.var(F, "d"),
        )
        out = lc.normalize(lc.translate(F, term))
        assert lc.show(out) == "b"

    def test_pair_of_sums(self, lc):
        F = "sumpair"
        term = lc.snd(
            F,
            lc.pair(
                F,
                lc.var(F, "x"),
                lc.case(
                    F,
                    lc.inr(F, lc.var(F, "w")),
                    "p", lc.var(F, "no"),
                    "q", lc.var(F, "q"),
                ),
            ),
        )
        assert lc.show(lc.normalize(lc.translate(F, term))) == "w"


class TestInPlaceTranslation:
    """Figure 7: unchanged nodes are reused via masked view changes."""

    def test_pure_lambda_term_reused_in_place(self, lc):
        F = "sumpair"
        term = lc.abs(F, "z", lc.app(F, lc.var(F, "z"), lc.var(F, "z")))
        out = lc.translate(F, term)
        assert out.inst is term.inst  # same object, new view
        assert out.view.path == ("base", "Abs")
        assert term.view.path == ("sumpair", "Abs")

    def test_var_leaf_reused(self, lc):
        F = "pair"
        v = lc.var(F, "q")
        out = lc.translate(F, v)
        assert out.inst is v.inst

    def test_node_with_translated_child_still_reused(self, lc):
        # reconstructAbs reuses `old` when the child translated in place
        F = "pair"
        term = lc.abs(F, "x", lc.var(F, "x"))
        out = lc.translate(F, term)
        assert out.inst is term.inst

    def test_node_above_pair_is_rebuilt(self, lc):
        # a Pair child must be translated away, so the Abs is reconstructed
        F = "pair"
        term = lc.abs(F, "x", lc.pair(F, lc.var(F, "x"), lc.var(F, "x")))
        out = lc.translate(F, term)
        assert out.inst is not term.inst

    def test_mask_removed_after_assignment(self, lc):
        # after reconstructAbs the duplicate field e of the base view is
        # initialized, so it is readable through the base family
        F = "pair"
        term = lc.abs(F, "x", lc.var(F, "x"))
        out = lc.translate(F, term)
        body = lc.interp.get_field(out, "e")
        assert body.view.path == ("base", "Var")


class TestNormalizer:
    def test_identity_application(self, lc):
        F = "base"
        ident = lc.abs(F, "x", lc.var(F, "x"))
        term = lc.app(F, ident, lc.var(F, "y"))
        assert lc.show(lc.normalize(term)) == "y"

    def test_shadowing_respected(self, lc):
        F = "base"
        # (\x.\x.x) a  ->  \x.x
        inner = lc.abs(F, "x", lc.var(F, "x"))
        term = lc.app(F, lc.abs(F, "x", inner), lc.var(F, "a"))
        assert lc.show(lc.normalize(term)) == "(\\x.x)"

    def test_fuel_limits_divergence(self, lc):
        F = "base"
        # omega = (\x.x x)(\x.x x) must not hang
        dup = lc.abs(F, "x", lc.app(F, lc.var(F, "x"), lc.var(F, "x")))
        omega = lc.app(F, dup, dup)
        result = lc.normalize(omega, fuel=20)
        assert result is not None
