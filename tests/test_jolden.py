"""Correctness tests for the jolden benchmark ports (Table 1 workloads).

Each benchmark is validated semantically (not just "it runs"): sortedness
for bisort, valid tours for tsp, analytic perimeter bounds, MST costs
against a Python reimplementation, and cross-mode agreement."""

import math

import pytest

from repro.programs.jolden import ALL, BY_NAME, bh, bisort, em3d, health, mst
from repro.programs.jolden import perimeter, power, treeadd, tsp, voronoi


class TestTreeadd:
    def test_result_counts_nodes(self):
        assert treeadd.run("java", depth=10, iters=1) == 2 ** 10 - 1

    def test_all_modes_agree(self):
        results = {m: treeadd.run(m, depth=8, iters=1) for m in ("java", "jx", "jx_cl", "jns")}
        assert len(set(results.values())) == 1


class TestBisort:
    def test_sorts_and_preserves_checksum(self):
        # the program itself asserts sortedness and checksum via Sys.fail
        assert bisort.run("java", depth=6, seed=7) > 0

    def test_different_seeds_different_sums(self):
        assert bisort.run("java", depth=6, seed=7) != bisort.run(
            "java", depth=6, seed=8
        )

    def test_jns_agrees(self):
        assert bisort.run("jns", depth=6, seed=7) == bisort.run("java", depth=6, seed=7)


class TestEm3d:
    def test_deterministic(self):
        a = em3d.run("java", 32, 3, 4, 5)
        b = em3d.run("java", 32, 3, 4, 5)
        assert a == b

    def test_zero_iterations_is_initial_sum(self):
        total = em3d.run("java", 16, 2, 0, 5)
        assert 0.0 < total < 32.0  # 32 nodes with values in [0,1)

    def test_modes_agree(self):
        assert em3d.run("jns", 16, 2, 3, 5) == em3d.run("jx_cl", 16, 2, 3, 5)


class TestHealth:
    def test_simulation_treats_patients(self):
        result = health.run("java", 2, 30, 9)
        treated, waiting = divmod(result, 1000)
        assert treated > 0

    def test_deterministic(self):
        assert health.run("java", 2, 20, 9) == health.run("java", 2, 20, 9)

    def test_modes_agree(self):
        assert health.run("jns", 2, 15, 9) == health.run("java", 2, 15, 9)


class TestMst:
    @staticmethod
    def python_mst(n, seed):
        def weight(i, j):
            v = (i * 31 + j * 17 + seed) % 2048
            return abs(v) + 1

        in_tree = [False] * n
        dist = [10 ** 6] * n
        dist[0] = 0
        cost = 0
        for _ in range(n):
            best = min(
                (i for i in range(n) if not in_tree[i]), key=lambda i: dist[i]
            )
            in_tree[best] = True
            cost += dist[best]
            for j in range(n):
                if not in_tree[j]:
                    w = weight(min(best, j), max(best, j))
                    dist[j] = min(dist[j], w)
        return cost

    def test_against_python_reference(self):
        assert mst.run("java", 24, 5) == self.python_mst(24, 5)

    def test_modes_agree(self):
        assert mst.run("jns", 20, 3) == mst.run("java", 20, 3)


class TestPerimeter:
    def test_value_is_plausible_for_disk(self):
        # a taxicab circle of radius 3n/8 has perimeter 8r = 3n
        for size in (16, 32):
            p = perimeter.run("java", size)
            assert 2 * size <= p <= 4 * size

    def test_grows_linearly(self):
        p16 = perimeter.run("java", 16)
        p32 = perimeter.run("java", 32)
        assert 1.5 <= p32 / p16 <= 2.5

    def test_modes_agree(self):
        assert perimeter.run("jns", 16) == perimeter.run("java", 16)


class TestPower:
    def test_positive_and_deterministic(self):
        total = power.run("java", 2, 2, 3, 4)
        assert total > 0
        assert total == power.run("java", 2, 2, 3, 4)

    def test_demand_scales_with_size(self):
        small = power.run("java", 1, 2, 2, 3)
        large = power.run("java", 2, 2, 2, 3)
        assert large > small

    def test_modes_agree(self):
        assert power.run("jns", 2, 2, 2, 3) == power.run("java", 2, 2, 2, 3)


class TestTsp:
    def test_tour_visits_all_cities(self):
        # Sys.fail inside the program enforces tour size == n
        length = tsp.run("java", 15, 3)
        assert length > 0

    def test_tour_not_absurdly_long(self):
        # a reasonable heuristic tour over n uniform points in the unit
        # square stays well below the n * sqrt(2) worst case
        n = 15
        length = tsp.run("java", n, 3)
        assert length < n * math.sqrt(2) / 2

    def test_modes_agree(self):
        assert tsp.run("jns", 11, 3) == tsp.run("java", 11, 3)


class TestBh:
    def test_bodies_stay_finite(self):
        checksum = bh.run("java", 12, 2, 3)
        assert math.isfinite(checksum)

    def test_zero_steps_is_initial_positions(self):
        checksum = bh.run("java", 12, 0, 3)
        assert 0.0 < checksum < 24.0

    def test_gravity_attracts(self):
        # after steps the checksum changes deterministically
        a = bh.run("java", 12, 2, 3)
        b = bh.run("java", 12, 2, 3)
        assert a == b
        assert a != bh.run("java", 12, 0, 3)

    def test_modes_agree(self):
        assert bh.run("jns", 10, 2, 3) == bh.run("java", 10, 2, 3)


class TestVoronoi:
    def test_edge_count_bounds(self):
        # the Gabriel graph is connected (>= n-1 edges) and planar (< 3n)
        n = 20
        result = voronoi.run("java", n, 4)
        count = int(result // 1000)
        assert n - 1 <= count <= 3 * n

    def test_modes_agree(self):
        assert voronoi.run("jns", 16, 4) == voronoi.run("java", 16, 4)


class TestSuite:
    def test_registry_complete(self):
        assert len(ALL) == 10
        assert set(BY_NAME) == {
            "bh", "bisort", "em3d", "health", "mst",
            "perimeter", "power", "treeadd", "tsp", "voronoi",
        }

    @pytest.mark.parametrize("module", ALL, ids=[m.NAME for m in ALL])
    def test_default_run_all_four_modes_agree(self, module):
        results = {m: module.run(m) for m in ("java", "jx", "jx_cl", "jns")}
        assert len(set(map(repr, results.values()))) == 1
