"""Differential cache-correctness: every observable of the pipeline —
checker verdict, the full diagnostic list, and interpreter results/output
across execution modes — must be identical with the query caches enabled
and with them globally disabled (ISSUE 2 satellite).

Tier-2: ``HYPOTHESIS_PROFILE=fuzz pytest -m fuzz`` raises the example
budget; the default profile keeps this cheap enough for tier-1.
"""

import pytest
from hypothesis import given, strategies as st

from repro import (
    JnsError,
    check_source,
    clear_caches,
    compile_program,
    set_caches_enabled,
)


@pytest.fixture(autouse=True)
def _caches_restored():
    yield
    set_caches_enabled(True)
    clear_caches()


@st.composite
def probe_programs(draw):
    """Two-family programs with randomized sharing structure, including a
    slice of *invalid* ones (unshared subclass + view change; bad mask)
    so the diagnostic output is differentially covered too."""
    x0 = draw(st.integers(0, 40))
    bonus = draw(st.integers(1, 9))
    loops = draw(st.integers(1, 3))
    use_b = draw(st.booleans())        # subclass B in the base family
    share_b = use_b and draw(st.booleans())
    override_get = draw(st.booleans())
    new_field = draw(st.booleans())    # derived A introduces y (needs mask)
    do_view = draw(st.booleans())      # Main performs a view change
    forget_mask = new_field and draw(st.booleans())  # inject a type error

    b_base = "class B extends A { int get() { return x + 100; } }" if use_b else ""
    b_derived = "class B shares F0.B { }" if share_b else ""
    derived_get = f"int get() {{ return x + {bonus}; }}" if override_get else ""
    y_decl = "int y;" if new_field else ""
    mask = "" if (not new_field or forget_mask) else "\\y"

    view_block = ""
    if do_view:
        view_block = f"F1!.A{mask} v = (view F1!.A{mask})a; s = s + v.get();"

    src = f"""
class F0 {{
  class A {{
    int x = {x0};
    int get() {{ return x; }}
  }}
  {b_base}
}}
class F1 extends F0 {{
  class A shares F0.A {{
    {y_decl}
    {derived_get}
  }}
  {b_derived}
}}
class Main {{
  int main() {{
    int s = 0;
    for (int i = 0; i < {loops}; i++) {{
      F0!.A a = new F0.A();
      s = s + a.get();
      {view_block}
    }}
    return s;
  }}
}}
"""
    return src


def _observe(src):
    """Everything a user can see from one source: diagnostics from the
    accumulate-everything checker, the strict compile verdict, and the
    run result + printed output in the tree-walking and compiled
    backends of each relevant mode."""
    sink = check_source(src)
    diagnostics = tuple(
        (d.code, d.severity, d.message) for d in sink
    )
    outcomes = {"diagnostics": diagnostics}
    try:
        program = compile_program(src)
        outcomes["check"] = "ok"
    except JnsError as exc:
        outcomes["check"] = (exc.code, str(exc))
        return outcomes
    for mode in ("jns", "jx_cl", "java"):
        for compiled in (False, True):
            interp = program.interp(mode=mode, compiled=compiled)
            try:
                result = interp.run("Main.main")
                outcomes[(mode, compiled)] = (result, tuple(interp.output))
            except JnsError as exc:
                outcomes[(mode, compiled)] = ("error", exc.code)
    return outcomes


@pytest.mark.fuzz
@given(probe_programs())
def test_caches_do_not_change_observables(src):
    clear_caches()
    set_caches_enabled(False)
    cold = _observe(src)
    set_caches_enabled(True)
    clear_caches()
    warm_first = _observe(src)   # populates every cache
    warm_second = _observe(src)  # served largely from caches
    assert cold == warm_first
    assert cold == warm_second


@pytest.mark.fuzz
@given(probe_programs())
def test_invalidate_matches_fresh_table(src):
    """A table that is invalidated mid-life answers like a fresh one."""
    set_caches_enabled(True)
    try:
        program = compile_program(src)
    except JnsError:
        return
    interp = program.interp()
    before = interp.run("Main.main")
    program.table.invalidate()
    fresh = compile_program(src)
    assert fresh.table.ancestors(("Main",)) == program.table.ancestors(("Main",))
    interp2 = program.interp()
    assert interp2.run("Main.main") == before
