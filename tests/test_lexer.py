"""Lexer unit tests."""

import pytest

from repro.source.lexer import LexError, tokenize
from repro.source.tokens import (
    DOUBLE_LIT,
    EOF,
    IDENT,
    INT_LIT,
    KEYWORD,
    PUNCT,
    STRING_LIT,
)


def kinds(src):
    return [t.kind for t in tokenize(src)[:-1]]


def values(src):
    return [t.value for t in tokenize(src)[:-1]]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == EOF

    def test_identifier(self):
        toks = tokenize("fooBar_12")
        assert toks[0].kind == IDENT
        assert toks[0].value == "fooBar_12"

    def test_keyword_recognized(self):
        assert kinds("class") == [KEYWORD]

    def test_keyword_prefix_is_identifier(self):
        toks = tokenize("classy")
        assert toks[0].kind == IDENT

    def test_all_keywords(self):
        for word in ("view", "shares", "adapts", "sharing", "instanceof", "final"):
            assert tokenize(word)[0].kind == KEYWORD

    def test_int_literal(self):
        tok = tokenize("42")[0]
        assert tok.kind == INT_LIT
        assert tok.value == "42"

    def test_double_literal(self):
        tok = tokenize("3.25")[0]
        assert tok.kind == DOUBLE_LIT

    def test_double_with_exponent(self):
        assert tokenize("1e9")[0].kind == DOUBLE_LIT
        assert tokenize("2.5e-3")[0].kind == DOUBLE_LIT

    def test_int_followed_by_dot_method(self):
        # "1.e" is not a double continuation in our grammar: digit required
        toks = tokenize("x.f")
        assert [t.value for t in toks[:-1]] == ["x", ".", "f"]

    def test_string_literal(self):
        tok = tokenize('"hello world"')[0]
        assert tok.kind == STRING_LIT
        assert tok.value == "hello world"

    def test_string_escapes(self):
        assert tokenize(r'"a\nb\tc\\d\"e"')[0].value == 'a\nb\tc\\d"e'

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_newline_in_string_rejected(self):
        with pytest.raises(LexError):
            tokenize('"line\nbreak"')


class TestPunctuation:
    def test_multichar_greedy(self):
        assert values("== != <= >= && ||") == ["==", "!=", "<=", ">=", "&&", "||"]

    def test_single_chars(self):
        assert values("{}()[];,.") == list("{}()[];,.")

    def test_backslash_for_masks(self):
        assert values("T\\f") == ["T", "\\", "f"]

    def test_exactness_bang(self):
        assert values("A!.B") == ["A", "!", ".", "B"]

    def test_increment(self):
        assert values("i++") == ["i", "++"]

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("§")


class TestCommentsAndPositions:
    def test_line_comment(self):
        assert values("a // comment\n b") == ["a", "b"]

    def test_block_comment(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_line_numbers(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)

    def test_positions_after_comment(self):
        toks = tokenize("/* c */ x")
        assert toks[0].line == 1
        assert toks[0].col == 9

    def test_token_helpers(self):
        tok = tokenize("class")[0]
        assert tok.is_keyword("class")
        assert not tok.is_keyword("view")
        assert not tok.is_punct("{")
