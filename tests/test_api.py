"""Public API tests (repro.api)."""

import pytest

from repro import (
    JnsError,
    Program,
    ResolveError,
    TypeError_,
    compile_program,
    run_program,
)

HELLO = """
class Main {
  int main() { Sys.print("hello"); return 7; }
}
"""


class TestCompile:
    def test_compile_returns_program(self):
        program = compile_program(HELLO)
        assert isinstance(program, Program)
        assert program.report is not None and program.report.ok

    def test_compile_without_check(self):
        program = compile_program(HELLO, check=False)
        assert program.report is None

    def test_syntax_error_raises(self):
        with pytest.raises(Exception):
            compile_program("class { }")

    def test_type_error_raises(self):
        with pytest.raises(TypeError_):
            compile_program('class A { int m() { return "x"; } }')

    def test_unknown_name_raises(self):
        with pytest.raises(JnsError):
            compile_program("class A extends Nothing { }")

    def test_check_false_skips_type_errors(self):
        program = compile_program('class A { int m() { return "x"; } }', check=False)
        assert program.report is None


class TestRun:
    def test_run_program(self):
        result, output = run_program(HELLO)
        assert result == 7
        assert output == ["hello"]

    def test_run_program_mode(self):
        result, _ = run_program(HELLO, mode="java")
        assert result == 7

    def test_custom_entry(self):
        src = "class App { int go() { return 3; } }"
        result, _ = run_program(src, entry="App.go")
        assert result == 3

    def test_missing_entry_class(self):
        with pytest.raises(ResolveError):
            run_program(HELLO, entry="Nope.main")

    def test_fresh_interp_per_call(self):
        program = compile_program(HELLO)
        i1, i2 = program.interp(), program.interp()
        assert i1 is not i2
        i1.run("Main.main")
        assert i1.output == ["hello"]
        assert i2.output == []

    def test_nested_entry_class(self):
        src = "class Outer { class Inner { int go() { return 5; } } }"
        result, _ = run_program(src, entry="Outer.Inner.go")
        assert result == 5
